# Empty compiler generated dependencies file for bench_retraining.
# This may be replaced when dependencies are built.
