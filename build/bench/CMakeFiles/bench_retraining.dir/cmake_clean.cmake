file(REMOVE_RECURSE
  "CMakeFiles/bench_retraining.dir/bench_retraining.cpp.o"
  "CMakeFiles/bench_retraining.dir/bench_retraining.cpp.o.d"
  "bench_retraining"
  "bench_retraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
