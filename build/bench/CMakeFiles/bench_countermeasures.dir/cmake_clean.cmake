file(REMOVE_RECURSE
  "CMakeFiles/bench_countermeasures.dir/bench_countermeasures.cpp.o"
  "CMakeFiles/bench_countermeasures.dir/bench_countermeasures.cpp.o.d"
  "bench_countermeasures"
  "bench_countermeasures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_countermeasures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
