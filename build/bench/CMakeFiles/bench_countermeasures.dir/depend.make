# Empty dependencies file for bench_countermeasures.
# This may be replaced when dependencies are built.
