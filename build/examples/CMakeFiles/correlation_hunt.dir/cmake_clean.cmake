file(REMOVE_RECURSE
  "CMakeFiles/correlation_hunt.dir/correlation_hunt.cpp.o"
  "CMakeFiles/correlation_hunt.dir/correlation_hunt.cpp.o.d"
  "correlation_hunt"
  "correlation_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
