# Empty dependencies file for correlation_hunt.
# This may be replaced when dependencies are built.
