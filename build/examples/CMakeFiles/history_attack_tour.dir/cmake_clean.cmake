file(REMOVE_RECURSE
  "CMakeFiles/history_attack_tour.dir/history_attack_tour.cpp.o"
  "CMakeFiles/history_attack_tour.dir/history_attack_tour.cpp.o.d"
  "history_attack_tour"
  "history_attack_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_attack_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
