# Empty compiler generated dependencies file for history_attack_tour.
# This may be replaced when dependencies are built.
