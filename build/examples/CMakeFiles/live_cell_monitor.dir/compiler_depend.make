# Empty compiler generated dependencies file for live_cell_monitor.
# This may be replaced when dependencies are built.
