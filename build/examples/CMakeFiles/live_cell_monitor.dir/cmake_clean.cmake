file(REMOVE_RECURSE
  "CMakeFiles/live_cell_monitor.dir/live_cell_monitor.cpp.o"
  "CMakeFiles/live_cell_monitor.dir/live_cell_monitor.cpp.o.d"
  "live_cell_monitor"
  "live_cell_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_cell_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
