
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/dataset.cpp" "src/features/CMakeFiles/ltefp_features.dir/dataset.cpp.o" "gcc" "src/features/CMakeFiles/ltefp_features.dir/dataset.cpp.o.d"
  "/root/repo/src/features/window.cpp" "src/features/CMakeFiles/ltefp_features.dir/window.cpp.o" "gcc" "src/features/CMakeFiles/ltefp_features.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sniffer/CMakeFiles/ltefp_sniffer.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/ltefp_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ltefp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
