file(REMOVE_RECURSE
  "libltefp_features.a"
)
