file(REMOVE_RECURSE
  "CMakeFiles/ltefp_features.dir/dataset.cpp.o"
  "CMakeFiles/ltefp_features.dir/dataset.cpp.o.d"
  "CMakeFiles/ltefp_features.dir/window.cpp.o"
  "CMakeFiles/ltefp_features.dir/window.cpp.o.d"
  "libltefp_features.a"
  "libltefp_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
