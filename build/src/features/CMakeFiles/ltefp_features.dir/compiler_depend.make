# Empty compiler generated dependencies file for ltefp_features.
# This may be replaced when dependencies are built.
