file(REMOVE_RECURSE
  "CMakeFiles/ltefp_common.dir/csv.cpp.o"
  "CMakeFiles/ltefp_common.dir/csv.cpp.o.d"
  "CMakeFiles/ltefp_common.dir/log.cpp.o"
  "CMakeFiles/ltefp_common.dir/log.cpp.o.d"
  "CMakeFiles/ltefp_common.dir/rng.cpp.o"
  "CMakeFiles/ltefp_common.dir/rng.cpp.o.d"
  "CMakeFiles/ltefp_common.dir/sim_time.cpp.o"
  "CMakeFiles/ltefp_common.dir/sim_time.cpp.o.d"
  "CMakeFiles/ltefp_common.dir/stats.cpp.o"
  "CMakeFiles/ltefp_common.dir/stats.cpp.o.d"
  "CMakeFiles/ltefp_common.dir/table.cpp.o"
  "CMakeFiles/ltefp_common.dir/table.cpp.o.d"
  "libltefp_common.a"
  "libltefp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
