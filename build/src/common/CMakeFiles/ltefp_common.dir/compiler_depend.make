# Empty compiler generated dependencies file for ltefp_common.
# This may be replaced when dependencies are built.
