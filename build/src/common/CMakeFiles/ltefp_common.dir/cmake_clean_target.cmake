file(REMOVE_RECURSE
  "libltefp_common.a"
)
