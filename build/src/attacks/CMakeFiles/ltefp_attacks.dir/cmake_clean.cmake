file(REMOVE_RECURSE
  "CMakeFiles/ltefp_attacks.dir/collect.cpp.o"
  "CMakeFiles/ltefp_attacks.dir/collect.cpp.o.d"
  "CMakeFiles/ltefp_attacks.dir/correlation.cpp.o"
  "CMakeFiles/ltefp_attacks.dir/correlation.cpp.o.d"
  "CMakeFiles/ltefp_attacks.dir/cost.cpp.o"
  "CMakeFiles/ltefp_attacks.dir/cost.cpp.o.d"
  "CMakeFiles/ltefp_attacks.dir/history.cpp.o"
  "CMakeFiles/ltefp_attacks.dir/history.cpp.o.d"
  "CMakeFiles/ltefp_attacks.dir/pipeline.cpp.o"
  "CMakeFiles/ltefp_attacks.dir/pipeline.cpp.o.d"
  "CMakeFiles/ltefp_attacks.dir/retrain.cpp.o"
  "CMakeFiles/ltefp_attacks.dir/retrain.cpp.o.d"
  "libltefp_attacks.a"
  "libltefp_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
