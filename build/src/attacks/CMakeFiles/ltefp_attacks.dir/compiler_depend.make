# Empty compiler generated dependencies file for ltefp_attacks.
# This may be replaced when dependencies are built.
