file(REMOVE_RECURSE
  "libltefp_attacks.a"
)
