
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cnn.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/cnn.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/cnn.cpp.o.d"
  "/root/repo/src/ml/crossval.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/crossval.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/crossval.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/hierarchical.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/hierarchical.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/hierarchical.cpp.o.d"
  "/root/repo/src/ml/importance.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/importance.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/importance.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/logreg.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/logreg.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/logreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/ltefp_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/ltefp_ml.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/ltefp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ltefp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sniffer/CMakeFiles/ltefp_sniffer.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/ltefp_lte.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
