# Empty compiler generated dependencies file for ltefp_ml.
# This may be replaced when dependencies are built.
