file(REMOVE_RECURSE
  "libltefp_ml.a"
)
