file(REMOVE_RECURSE
  "CMakeFiles/ltefp_ml.dir/classifier.cpp.o"
  "CMakeFiles/ltefp_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/cnn.cpp.o"
  "CMakeFiles/ltefp_ml.dir/cnn.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/crossval.cpp.o"
  "CMakeFiles/ltefp_ml.dir/crossval.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/ltefp_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/hierarchical.cpp.o"
  "CMakeFiles/ltefp_ml.dir/hierarchical.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/importance.cpp.o"
  "CMakeFiles/ltefp_ml.dir/importance.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/knn.cpp.o"
  "CMakeFiles/ltefp_ml.dir/knn.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/logreg.cpp.o"
  "CMakeFiles/ltefp_ml.dir/logreg.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/metrics.cpp.o"
  "CMakeFiles/ltefp_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/random_forest.cpp.o"
  "CMakeFiles/ltefp_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/ltefp_ml.dir/serialize.cpp.o"
  "CMakeFiles/ltefp_ml.dir/serialize.cpp.o.d"
  "libltefp_ml.a"
  "libltefp_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
