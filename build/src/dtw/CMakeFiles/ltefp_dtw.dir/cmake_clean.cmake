file(REMOVE_RECURSE
  "CMakeFiles/ltefp_dtw.dir/dtw.cpp.o"
  "CMakeFiles/ltefp_dtw.dir/dtw.cpp.o.d"
  "libltefp_dtw.a"
  "libltefp_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
