# Empty compiler generated dependencies file for ltefp_dtw.
# This may be replaced when dependencies are built.
