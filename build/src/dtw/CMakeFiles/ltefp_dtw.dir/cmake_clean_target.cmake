file(REMOVE_RECURSE
  "libltefp_dtw.a"
)
