file(REMOVE_RECURSE
  "libltefp_sniffer.a"
)
