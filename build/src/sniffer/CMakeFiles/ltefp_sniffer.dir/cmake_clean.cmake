file(REMOVE_RECURSE
  "CMakeFiles/ltefp_sniffer.dir/identity_map.cpp.o"
  "CMakeFiles/ltefp_sniffer.dir/identity_map.cpp.o.d"
  "CMakeFiles/ltefp_sniffer.dir/sniffer.cpp.o"
  "CMakeFiles/ltefp_sniffer.dir/sniffer.cpp.o.d"
  "CMakeFiles/ltefp_sniffer.dir/trace.cpp.o"
  "CMakeFiles/ltefp_sniffer.dir/trace.cpp.o.d"
  "libltefp_sniffer.a"
  "libltefp_sniffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
