
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sniffer/identity_map.cpp" "src/sniffer/CMakeFiles/ltefp_sniffer.dir/identity_map.cpp.o" "gcc" "src/sniffer/CMakeFiles/ltefp_sniffer.dir/identity_map.cpp.o.d"
  "/root/repo/src/sniffer/sniffer.cpp" "src/sniffer/CMakeFiles/ltefp_sniffer.dir/sniffer.cpp.o" "gcc" "src/sniffer/CMakeFiles/ltefp_sniffer.dir/sniffer.cpp.o.d"
  "/root/repo/src/sniffer/trace.cpp" "src/sniffer/CMakeFiles/ltefp_sniffer.dir/trace.cpp.o" "gcc" "src/sniffer/CMakeFiles/ltefp_sniffer.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lte/CMakeFiles/ltefp_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ltefp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
