# Empty compiler generated dependencies file for ltefp_sniffer.
# This may be replaced when dependencies are built.
