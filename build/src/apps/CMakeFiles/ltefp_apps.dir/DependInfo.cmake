
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_id.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/app_id.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/app_id.cpp.o.d"
  "/root/repo/src/apps/background.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/background.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/background.cpp.o.d"
  "/root/repo/src/apps/conversation.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/conversation.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/conversation.cpp.o.d"
  "/root/repo/src/apps/drift.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/drift.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/drift.cpp.o.d"
  "/root/repo/src/apps/factory.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/factory.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/factory.cpp.o.d"
  "/root/repo/src/apps/messaging.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/messaging.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/messaging.cpp.o.d"
  "/root/repo/src/apps/params.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/params.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/params.cpp.o.d"
  "/root/repo/src/apps/streaming.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/streaming.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/streaming.cpp.o.d"
  "/root/repo/src/apps/voip.cpp" "src/apps/CMakeFiles/ltefp_apps.dir/voip.cpp.o" "gcc" "src/apps/CMakeFiles/ltefp_apps.dir/voip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lte/CMakeFiles/ltefp_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ltefp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
