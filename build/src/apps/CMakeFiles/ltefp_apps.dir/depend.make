# Empty dependencies file for ltefp_apps.
# This may be replaced when dependencies are built.
