file(REMOVE_RECURSE
  "CMakeFiles/ltefp_apps.dir/app_id.cpp.o"
  "CMakeFiles/ltefp_apps.dir/app_id.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/background.cpp.o"
  "CMakeFiles/ltefp_apps.dir/background.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/conversation.cpp.o"
  "CMakeFiles/ltefp_apps.dir/conversation.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/drift.cpp.o"
  "CMakeFiles/ltefp_apps.dir/drift.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/factory.cpp.o"
  "CMakeFiles/ltefp_apps.dir/factory.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/messaging.cpp.o"
  "CMakeFiles/ltefp_apps.dir/messaging.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/params.cpp.o"
  "CMakeFiles/ltefp_apps.dir/params.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/streaming.cpp.o"
  "CMakeFiles/ltefp_apps.dir/streaming.cpp.o.d"
  "CMakeFiles/ltefp_apps.dir/voip.cpp.o"
  "CMakeFiles/ltefp_apps.dir/voip.cpp.o.d"
  "libltefp_apps.a"
  "libltefp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
