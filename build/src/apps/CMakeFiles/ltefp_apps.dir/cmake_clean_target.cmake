file(REMOVE_RECURSE
  "libltefp_apps.a"
)
