# Empty compiler generated dependencies file for ltefp_lte.
# This may be replaced when dependencies are built.
