
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/channel.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/channel.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/channel.cpp.o.d"
  "/root/repo/src/lte/countermeasures.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/countermeasures.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/countermeasures.cpp.o.d"
  "/root/repo/src/lte/crc.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/crc.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/crc.cpp.o.d"
  "/root/repo/src/lte/dci.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/dci.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/dci.cpp.o.d"
  "/root/repo/src/lte/enb.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/enb.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/enb.cpp.o.d"
  "/root/repo/src/lte/epc.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/epc.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/epc.cpp.o.d"
  "/root/repo/src/lte/network.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/network.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/network.cpp.o.d"
  "/root/repo/src/lte/operator_profile.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/operator_profile.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/operator_profile.cpp.o.d"
  "/root/repo/src/lte/rnti.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/rnti.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/rnti.cpp.o.d"
  "/root/repo/src/lte/scheduler.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/scheduler.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/scheduler.cpp.o.d"
  "/root/repo/src/lte/tbs.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/tbs.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/tbs.cpp.o.d"
  "/root/repo/src/lte/types.cpp" "src/lte/CMakeFiles/ltefp_lte.dir/types.cpp.o" "gcc" "src/lte/CMakeFiles/ltefp_lte.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ltefp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
