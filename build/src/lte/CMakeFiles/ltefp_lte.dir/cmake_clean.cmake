file(REMOVE_RECURSE
  "CMakeFiles/ltefp_lte.dir/channel.cpp.o"
  "CMakeFiles/ltefp_lte.dir/channel.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/countermeasures.cpp.o"
  "CMakeFiles/ltefp_lte.dir/countermeasures.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/crc.cpp.o"
  "CMakeFiles/ltefp_lte.dir/crc.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/dci.cpp.o"
  "CMakeFiles/ltefp_lte.dir/dci.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/enb.cpp.o"
  "CMakeFiles/ltefp_lte.dir/enb.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/epc.cpp.o"
  "CMakeFiles/ltefp_lte.dir/epc.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/network.cpp.o"
  "CMakeFiles/ltefp_lte.dir/network.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/operator_profile.cpp.o"
  "CMakeFiles/ltefp_lte.dir/operator_profile.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/rnti.cpp.o"
  "CMakeFiles/ltefp_lte.dir/rnti.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/scheduler.cpp.o"
  "CMakeFiles/ltefp_lte.dir/scheduler.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/tbs.cpp.o"
  "CMakeFiles/ltefp_lte.dir/tbs.cpp.o.d"
  "CMakeFiles/ltefp_lte.dir/types.cpp.o"
  "CMakeFiles/ltefp_lte.dir/types.cpp.o.d"
  "libltefp_lte.a"
  "libltefp_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
