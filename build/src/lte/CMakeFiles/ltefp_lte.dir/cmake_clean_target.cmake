file(REMOVE_RECURSE
  "libltefp_lte.a"
)
