# Empty dependencies file for ltefp.
# This may be replaced when dependencies are built.
