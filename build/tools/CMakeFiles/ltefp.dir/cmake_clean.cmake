file(REMOVE_RECURSE
  "CMakeFiles/ltefp.dir/ltefp_cli.cpp.o"
  "CMakeFiles/ltefp.dir/ltefp_cli.cpp.o.d"
  "ltefp"
  "ltefp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltefp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
