# Empty compiler generated dependencies file for ltefp.
# This may be replaced when dependencies are built.
