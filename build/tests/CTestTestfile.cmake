# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_csv_table[1]_include.cmake")
include("/root/repo/build/tests/test_crc[1]_include.cmake")
include("/root/repo/build/tests/test_tbs[1]_include.cmake")
include("/root/repo/build/tests/test_dci[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_rnti_epc[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_enb[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_identity_map[1]_include.cmake")
include("/root/repo/build/tests/test_sniffer[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_ml_classifiers[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_crossval_hierarchical[1]_include.cmake")
include("/root/repo/build/tests/test_dtw[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_attacks[1]_include.cmake")
include("/root/repo/build/tests/test_countermeasures[1]_include.cmake")
include("/root/repo/build/tests/test_importance_retrain[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_operator_profile[1]_include.cmake")
include("/root/repo/build/tests/test_harq[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_invariants[1]_include.cmake")
