file(REMOVE_RECURSE
  "CMakeFiles/test_tbs.dir/test_tbs.cpp.o"
  "CMakeFiles/test_tbs.dir/test_tbs.cpp.o.d"
  "test_tbs"
  "test_tbs.pdb"
  "test_tbs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
