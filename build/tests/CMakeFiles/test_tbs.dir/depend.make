# Empty dependencies file for test_tbs.
# This may be replaced when dependencies are built.
