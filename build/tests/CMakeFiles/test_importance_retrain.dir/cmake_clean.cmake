file(REMOVE_RECURSE
  "CMakeFiles/test_importance_retrain.dir/test_importance_retrain.cpp.o"
  "CMakeFiles/test_importance_retrain.dir/test_importance_retrain.cpp.o.d"
  "test_importance_retrain"
  "test_importance_retrain.pdb"
  "test_importance_retrain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_importance_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
