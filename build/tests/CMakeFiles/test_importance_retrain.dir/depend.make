# Empty dependencies file for test_importance_retrain.
# This may be replaced when dependencies are built.
