file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_invariants.dir/test_e2e_invariants.cpp.o"
  "CMakeFiles/test_e2e_invariants.dir/test_e2e_invariants.cpp.o.d"
  "test_e2e_invariants"
  "test_e2e_invariants.pdb"
  "test_e2e_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
