# Empty compiler generated dependencies file for test_identity_map.
# This may be replaced when dependencies are built.
