file(REMOVE_RECURSE
  "CMakeFiles/test_identity_map.dir/test_identity_map.cpp.o"
  "CMakeFiles/test_identity_map.dir/test_identity_map.cpp.o.d"
  "test_identity_map"
  "test_identity_map.pdb"
  "test_identity_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_identity_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
