file(REMOVE_RECURSE
  "CMakeFiles/test_dci.dir/test_dci.cpp.o"
  "CMakeFiles/test_dci.dir/test_dci.cpp.o.d"
  "test_dci"
  "test_dci.pdb"
  "test_dci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
