# Empty dependencies file for test_dci.
# This may be replaced when dependencies are built.
