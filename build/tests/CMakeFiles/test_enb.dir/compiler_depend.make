# Empty compiler generated dependencies file for test_enb.
# This may be replaced when dependencies are built.
