file(REMOVE_RECURSE
  "CMakeFiles/test_enb.dir/test_enb.cpp.o"
  "CMakeFiles/test_enb.dir/test_enb.cpp.o.d"
  "test_enb"
  "test_enb.pdb"
  "test_enb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
