file(REMOVE_RECURSE
  "CMakeFiles/test_operator_profile.dir/test_operator_profile.cpp.o"
  "CMakeFiles/test_operator_profile.dir/test_operator_profile.cpp.o.d"
  "test_operator_profile"
  "test_operator_profile.pdb"
  "test_operator_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operator_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
