# Empty compiler generated dependencies file for test_operator_profile.
# This may be replaced when dependencies are built.
