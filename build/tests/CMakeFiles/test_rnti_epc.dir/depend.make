# Empty dependencies file for test_rnti_epc.
# This may be replaced when dependencies are built.
