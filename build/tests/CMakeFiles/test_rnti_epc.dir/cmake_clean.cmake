file(REMOVE_RECURSE
  "CMakeFiles/test_rnti_epc.dir/test_rnti_epc.cpp.o"
  "CMakeFiles/test_rnti_epc.dir/test_rnti_epc.cpp.o.d"
  "test_rnti_epc"
  "test_rnti_epc.pdb"
  "test_rnti_epc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rnti_epc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
