
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sniffer.cpp" "tests/CMakeFiles/test_sniffer.dir/test_sniffer.cpp.o" "gcc" "tests/CMakeFiles/test_sniffer.dir/test_sniffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/ltefp_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ltefp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ltefp_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/ltefp_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sniffer/CMakeFiles/ltefp_sniffer.dir/DependInfo.cmake"
  "/root/repo/build/src/dtw/CMakeFiles/ltefp_dtw.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/ltefp_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ltefp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
