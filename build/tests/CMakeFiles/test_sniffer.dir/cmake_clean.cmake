file(REMOVE_RECURSE
  "CMakeFiles/test_sniffer.dir/test_sniffer.cpp.o"
  "CMakeFiles/test_sniffer.dir/test_sniffer.cpp.o.d"
  "test_sniffer"
  "test_sniffer.pdb"
  "test_sniffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
