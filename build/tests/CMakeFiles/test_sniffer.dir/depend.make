# Empty dependencies file for test_sniffer.
# This may be replaced when dependencies are built.
