# Empty dependencies file for test_crossval_hierarchical.
# This may be replaced when dependencies are built.
