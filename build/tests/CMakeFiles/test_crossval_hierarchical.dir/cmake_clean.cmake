file(REMOVE_RECURSE
  "CMakeFiles/test_crossval_hierarchical.dir/test_crossval_hierarchical.cpp.o"
  "CMakeFiles/test_crossval_hierarchical.dir/test_crossval_hierarchical.cpp.o.d"
  "test_crossval_hierarchical"
  "test_crossval_hierarchical.pdb"
  "test_crossval_hierarchical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossval_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
