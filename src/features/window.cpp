#include "features/window.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/stats.hpp"

namespace ltefp::features {
namespace {

/// Builds the feature vector for the frames of one window.
/// `prev_frame_time` is the time of the last frame before the window (or -1),
/// capturing cross-window gaps (long chat lulls, streaming burst spacing).
FeatureVector window_features(const sniffer::Trace& frames, TimeMs window_start,
                              TimeMs window_ms, TimeMs session_start, TimeMs prev_frame_time) {
  RunningStats size_all, size_dl, size_ul, inter;
  std::unordered_set<lte::Rnti> rntis;
  int dl_count = 0, ul_count = 0;
  long long dl_bytes = 0, ul_bytes = 0;
  std::unordered_set<TimeMs> active_ms;
  TimeMs prev = prev_frame_time;
  for (const auto& r : frames) {
    size_all.add(r.tb_bytes);
    if (r.direction == lte::Direction::kDownlink) {
      size_dl.add(r.tb_bytes);
      ++dl_count;
      dl_bytes += r.tb_bytes;
    } else {
      size_ul.add(r.tb_bytes);
      ++ul_count;
      ul_bytes += r.tb_bytes;
    }
    if (prev >= 0) inter.add(static_cast<double>(r.time - prev));
    prev = r.time;
    rntis.insert(r.rnti);
    active_ms.insert(r.time);
  }

  const double total_frames = static_cast<double>(frames.size());
  const double total_bytes = static_cast<double>(dl_bytes + ul_bytes);
  const double gap_before =
      prev_frame_time >= 0 ? static_cast<double>(window_start - prev_frame_time)
                           : static_cast<double>(window_start - session_start);

  FeatureVector f(kFeatureCount, 0.0);
  f[0] = total_frames;
  f[1] = total_bytes;
  f[2] = size_all.mean();
  f[3] = size_all.stddev();
  f[4] = frames.empty() ? 0.0 : size_all.min();
  f[5] = size_all.max();
  f[6] = frames.size() >= 2 ? inter.mean() : static_cast<double>(window_ms);
  f[7] = inter.stddev();
  f[8] = static_cast<double>(window_start - session_start) / 1000.0;  // cumulative time (s)
  f[9] = total_frames > 0 ? dl_count / total_frames : 0.0;
  f[10] = total_bytes > 0 ? static_cast<double>(dl_bytes) / total_bytes : 0.0;
  f[11] = static_cast<double>(dl_count);
  f[12] = static_cast<double>(ul_count);
  f[13] = static_cast<double>(active_ms.size()) / static_cast<double>(window_ms);
  f[14] = static_cast<double>(rntis.size());
  f[15] = std::min(gap_before, 60'000.0);  // bounded pre-window silence
  // Size histogram: fraction of frames per TBS band. Means/stddevs blur
  // multimodal windows (e.g. "one big message + one tiny ack"); the band
  // fractions preserve the mixture, which separates same-category apps.
  if (!frames.empty()) {
    int tiny = 0, small = 0, mid = 0, large = 0, huge = 0;
    std::vector<double> sizes;
    sizes.reserve(frames.size());
    for (const auto& r : frames) {
      sizes.push_back(static_cast<double>(r.tb_bytes));
      if (r.tb_bytes <= 50) {
        ++tiny;
      } else if (r.tb_bytes <= 150) {
        ++small;
      } else if (r.tb_bytes <= 400) {
        ++mid;
      } else if (r.tb_bytes <= 1000) {
        ++large;
      } else {
        ++huge;
      }
    }
    f[16] = tiny / total_frames;
    f[17] = small / total_frames;
    f[18] = mid / total_frames;
    f[19] = large / total_frames;
    f[20] = huge / total_frames;
    std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2, sizes.end());
    f[21] = sizes[sizes.size() / 2];  // median frame size
  }
  return f;
}

}  // namespace

std::vector<std::string> feature_names() {
  return {"frame_count",    "total_bytes",   "mean_size",     "std_size",
          "min_size",       "max_size",      "mean_interarrival", "std_interarrival",
          "cumulative_time", "dl_frame_frac", "dl_byte_frac",  "dl_count",
          "ul_count",       "active_ms_frac", "rnti_count",    "gap_before_ms",
          "size_frac_tiny", "size_frac_small", "size_frac_mid", "size_frac_large",
          "size_frac_huge", "median_size"};
}

std::vector<FeatureVector> extract_windows(const sniffer::Trace& trace, TimeMs session_start,
                                           const WindowConfig& config) {
  std::vector<FeatureVector> out;
  const sniffer::Trace filtered = filter_direction(trace, config.link);
  if (filtered.empty()) return out;

  const TimeMs window = config.window_ms;
  const TimeMs last_time = filtered.back().time;
  std::size_t idx = 0;
  TimeMs prev_frame_time = -1;
  for (TimeMs ws = session_start; ws <= last_time; ws += window) {
    sniffer::Trace frames;
    while (idx < filtered.size() && filtered[idx].time < ws + window) {
      if (filtered[idx].time >= ws) frames.push_back(filtered[idx]);
      ++idx;
    }
    if (!frames.empty() || config.include_empty) {
      out.push_back(window_features(frames, ws, window, session_start, prev_frame_time));
    }
    if (!frames.empty()) prev_frame_time = frames.back().time;
  }
  return out;
}

void append_windows(Dataset& dataset, const sniffer::Trace& trace, TimeMs session_start,
                    const WindowConfig& config, int label) {
  if (dataset.feature_names.empty()) dataset.feature_names = feature_names();
  for (auto& f : extract_windows(trace, session_start, config)) {
    dataset.add(std::move(f), label);
  }
}

}  // namespace ltefp::features
