// Labeled dataset container shared by feature extraction and the ML stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace ltefp::features {

class DatasetMatrix;  // features/matrix.hpp — columnar view of a Dataset

using FeatureVector = std::vector<double>;

struct Sample {
  FeatureVector features;
  int label = 0;
};

struct Dataset {
  std::vector<Sample> samples;
  std::vector<std::string> feature_names;
  std::vector<std::string> label_names;

  std::size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
  std::size_t feature_count() const {
    return samples.empty() ? feature_names.size() : samples.front().features.size();
  }
  int class_count() const { return static_cast<int>(label_names.size()); }

  void add(FeatureVector features, int label) {
    samples.push_back(Sample{std::move(features), label});
  }

  /// Per-class sample counts (index = label).
  std::vector<std::size_t> class_histogram() const;
};

/// Stratified split: each class contributes `train_fraction` of its samples
/// to the first (train) part. Order within parts is shuffled.
std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double train_fraction,
                                             Rng& rng);

/// Z-score standardisation fitted on one dataset, applied to any other.
class Standardizer {
 public:
  /// Fits mean/stddev per feature. Constant features get stddev 1.
  void fit(const Dataset& data);
  /// Fits on a row subset of a columnar matrix — same accumulation order
  /// as fitting the materialised subset, so the parameters are
  /// bit-identical.
  void fit_rows(const DatasetMatrix& data, std::span<const std::uint32_t> rows);
  FeatureVector transform(const FeatureVector& x) const;
  /// Allocation-free transform into caller-owned scratch. `x` and `out`
  /// may alias; both must match the fitted dimensionality.
  void transform(std::span<const double> x, std::span<double> out) const;
  void transform_in_place(Dataset& data) const;
  bool fitted() const { return !mean_.empty(); }

  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stddevs() const { return stddev_; }

  /// Rebuilds a fitted standardiser from persisted parameters.
  static Standardizer from_params(std::vector<double> means, std::vector<double> stddevs);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace ltefp::features
