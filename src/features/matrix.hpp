// Columnar (structure-of-arrays) view of a labeled dataset.
//
// The AoS `Dataset` (one FeatureVector per sample) is the collection-side
// container; every ML hot path wants the transpose: one contiguous array
// per feature plus a flat label array. `DatasetMatrix` is that transpose,
// built once per dataset and then shared — classifiers fit and predict on
// (matrix, row-index) views, so cross-validation folds and hierarchical
// stages never deep-copy feature storage again.
//
// Storage is immutable after construction and held behind a shared_ptr:
// `with_labels` makes a relabeled view (coarse groups, per-stage local
// labels) that shares the feature columns. The per-column argsort used by
// the presorted tree trainer is cached lazily in the shared store, so all
// trees of a forest (across threads) pay for it once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "features/dataset.hpp"

namespace ltefp::features {

class DatasetMatrix {
 public:
  DatasetMatrix() = default;

  /// Transposes `data` into column-major storage. Throws
  /// std::invalid_argument if samples disagree on dimensionality or the
  /// dataset exceeds the 32-bit row-index space.
  explicit DatasetMatrix(const Dataset& data);

  std::size_t rows() const { return labels_.size(); }
  std::size_t cols() const { return store_ ? store_->cols : 0; }
  bool empty() const { return labels_.empty(); }

  /// One feature's values over all rows, contiguous.
  std::span<const double> column(std::size_t f) const {
    return {store_->values.data() + f * rows(), rows()};
  }
  double at(std::size_t row, std::size_t f) const {
    return store_->values[f * rows() + row];
  }

  int label(std::size_t row) const { return labels_[row]; }
  std::span<const int> labels() const { return labels_; }

  const std::vector<std::string>& feature_names() const { return feature_names_; }
  const std::vector<std::string>& label_names() const { return label_names_; }
  int class_count() const { return static_cast<int>(label_names_.size()); }

  /// Same semantics as Dataset::class_histogram, over all rows.
  std::vector<std::size_t> class_histogram() const;
  /// Histogram over a row subset (a fold / group view).
  std::vector<std::size_t> class_histogram(std::span<const std::uint32_t> rows) const;

  /// Copies row `row` into `out` (size must be cols()).
  void gather_row(std::size_t row, std::span<double> out) const;
  FeatureVector row_vector(std::size_t row) const;

  /// Every row index in order — the "whole dataset" view.
  std::vector<std::uint32_t> all_rows() const;

  /// Materialises a row subset back into an AoS Dataset (compatibility
  /// path for classifiers without a columnar fit).
  Dataset materialize(std::span<const std::uint32_t> rows) const;

  /// A view sharing this matrix's feature columns (and argsort cache) with
  /// different labels — how the hierarchical classifier derives its coarse
  /// and per-group stage datasets without copying features. `labels` must
  /// have one entry per row.
  DatasetMatrix with_labels(std::vector<int> labels,
                            std::vector<std::string> label_names) const;

  /// Row indices of column `f` ordered by ascending value (ties by row).
  /// Computed on first use and cached in the shared store; thread-safe.
  std::span<const std::uint32_t> sorted_order(std::size_t f) const;

 private:
  struct ColumnStore {
    std::vector<double> values;  // column-major: values[f * rows + i]
    std::size_t rows = 0;
    std::size_t cols = 0;
    // Lazy per-column argsort, cols blocks of rows indices each.
    mutable std::vector<std::uint32_t> argsort;
    mutable std::once_flag argsort_once;
  };

  std::shared_ptr<const ColumnStore> store_;
  std::vector<int> labels_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> label_names_;
};

}  // namespace ltefp::features
