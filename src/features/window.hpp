// Sliding-window feature extraction (paper Sections V-VI).
//
// The classifier never sees whole sessions: to support "asynchronous
// sessions, where the machine learning algorithm has no knowledge about
// where the sessions in the trace begin and end", the trace is cut into
// fixed-size time windows (paper default: 100 ms) and the frames in each
// window are aggregated into one feature vector built from the Table II
// vectors — time (interarrival, cumulative), size (TBS), direction
// (UL/DL), and identity (RNTI churn).
#pragma once

#include <string>
#include <vector>

#include "features/dataset.hpp"
#include "lte/types.hpp"
#include "sniffer/trace.hpp"

namespace ltefp::features {

struct WindowConfig {
  TimeMs window_ms = 100;                              // paper's empirical choice
  lte::LinkFilter link = lte::LinkFilter::kBoth;       // Down+Up / Down / Up
  bool include_empty = false;                          // emit all-zero windows too
};

/// Names of the extracted features, in vector order.
std::vector<std::string> feature_names();
constexpr std::size_t kFeatureCount = 22;

/// Extracts one feature vector per (non-empty, by default) window.
/// `trace` must be time-ordered; `session_start` anchors window 0 and the
/// cumulative-time feature.
std::vector<FeatureVector> extract_windows(const sniffer::Trace& trace, TimeMs session_start,
                                           const WindowConfig& config);

/// Convenience: extract and append to `dataset` with the given label.
void append_windows(Dataset& dataset, const sniffer::Trace& trace, TimeMs session_start,
                    const WindowConfig& config, int label);

}  // namespace ltefp::features
