#include "features/matrix.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ltefp::features {

DatasetMatrix::DatasetMatrix(const Dataset& data) {
  const std::size_t n = data.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("DatasetMatrix: dataset exceeds 32-bit row space");
  }
  const std::size_t dims = data.feature_count();
  auto store = std::make_shared<ColumnStore>();
  store->rows = n;
  store->cols = dims;
  store->values.resize(dims * n);
  labels_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = data.samples[i];
    if (s.features.size() != dims) {
      throw std::invalid_argument("DatasetMatrix: inconsistent feature dimensions");
    }
    for (std::size_t f = 0; f < dims; ++f) {
      store->values[f * n + i] = s.features[f];
    }
    labels_[i] = s.label;
  }
  store_ = std::move(store);
  feature_names_ = data.feature_names;
  label_names_ = data.label_names;
}

std::vector<std::size_t> DatasetMatrix::class_histogram() const {
  std::vector<std::size_t> counts(label_names_.empty() ? 0 : label_names_.size(), 0);
  for (const int label : labels_) {
    if (label < 0) throw std::logic_error("DatasetMatrix: negative label");
    if (static_cast<std::size_t>(label) >= counts.size()) {
      counts.resize(static_cast<std::size_t>(label) + 1, 0);
    }
    ++counts[static_cast<std::size_t>(label)];
  }
  return counts;
}

std::vector<std::size_t> DatasetMatrix::class_histogram(
    std::span<const std::uint32_t> rows) const {
  std::vector<std::size_t> counts(label_names_.empty() ? 0 : label_names_.size(), 0);
  for (const std::uint32_t row : rows) {
    const int label = labels_[row];
    if (label < 0) throw std::logic_error("DatasetMatrix: negative label");
    if (static_cast<std::size_t>(label) >= counts.size()) {
      counts.resize(static_cast<std::size_t>(label) + 1, 0);
    }
    ++counts[static_cast<std::size_t>(label)];
  }
  return counts;
}

void DatasetMatrix::gather_row(std::size_t row, std::span<double> out) const {
  if (out.size() != cols()) throw std::invalid_argument("DatasetMatrix: gather size mismatch");
  const std::size_t n = rows();
  for (std::size_t f = 0; f < out.size(); ++f) {
    out[f] = store_->values[f * n + row];
  }
}

FeatureVector DatasetMatrix::row_vector(std::size_t row) const {
  FeatureVector out(cols());
  gather_row(row, out);
  return out;
}

std::vector<std::uint32_t> DatasetMatrix::all_rows() const {
  std::vector<std::uint32_t> out(rows());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<std::uint32_t>(i);
  return out;
}

Dataset DatasetMatrix::materialize(std::span<const std::uint32_t> rows) const {
  Dataset out;
  out.feature_names = feature_names_;
  out.label_names = label_names_;
  out.samples.reserve(rows.size());
  for (const std::uint32_t row : rows) {
    out.add(row_vector(row), labels_[row]);
  }
  return out;
}

DatasetMatrix DatasetMatrix::with_labels(std::vector<int> labels,
                                         std::vector<std::string> label_names) const {
  if (labels.size() != rows()) {
    throw std::invalid_argument("DatasetMatrix::with_labels: one label per row required");
  }
  DatasetMatrix out;
  out.store_ = store_;  // share columns and argsort cache
  out.labels_ = std::move(labels);
  out.feature_names_ = feature_names_;
  out.label_names_ = std::move(label_names);
  return out;
}

std::span<const std::uint32_t> DatasetMatrix::sorted_order(std::size_t f) const {
  const ColumnStore& store = *store_;
  std::call_once(store.argsort_once, [&store] {
    store.argsort.resize(store.cols * store.rows);
    for (std::size_t c = 0; c < store.cols; ++c) {
      std::uint32_t* block = store.argsort.data() + c * store.rows;
      for (std::size_t i = 0; i < store.rows; ++i) block[i] = static_cast<std::uint32_t>(i);
      const double* col = store.values.data() + c * store.rows;
      // Ties broken by row index: the order is a pure function of the data,
      // so every thread count (and every tree) sees the same permutation.
      std::sort(block, block + store.rows, [col](std::uint32_t a, std::uint32_t b) {
        return col[a] < col[b] || (col[a] == col[b] && a < b);
      });
    }
  });
  return {store.argsort.data() + f * store.rows, store.rows};
}

}  // namespace ltefp::features
