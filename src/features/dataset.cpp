#include "features/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "features/matrix.hpp"

namespace ltefp::features {

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> counts(label_names.empty() ? 0 : label_names.size(), 0);
  for (const auto& s : samples) {
    if (s.label < 0) throw std::logic_error("Dataset: negative label");
    if (static_cast<std::size_t>(s.label) >= counts.size()) {
      counts.resize(static_cast<std::size_t>(s.label) + 1, 0);
    }
    ++counts[static_cast<std::size_t>(s.label)];
  }
  return counts;
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data, double train_fraction,
                                             Rng& rng) {
  if (train_fraction < 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in [0,1]");
  }
  Dataset train, test;
  train.feature_names = test.feature_names = data.feature_names;
  train.label_names = test.label_names = data.label_names;

  // Group indices by class, shuffle each group, then cut.
  const auto hist = data.class_histogram();
  std::vector<std::vector<std::size_t>> by_class(hist.size());
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    by_class[static_cast<std::size_t>(data.samples[i].label)].push_back(i);
  }
  for (auto& group : by_class) {
    rng.shuffle(group);
    const auto n_train = static_cast<std::size_t>(
        std::round(train_fraction * static_cast<double>(group.size())));
    for (std::size_t j = 0; j < group.size(); ++j) {
      (j < n_train ? train : test).samples.push_back(data.samples[group[j]]);
    }
  }
  rng.shuffle(train.samples);
  rng.shuffle(test.samples);
  return {std::move(train), std::move(test)};
}

void Standardizer::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("Standardizer::fit: empty dataset");
  const std::size_t dims = data.samples.front().features.size();
  mean_.assign(dims, 0.0);
  stddev_.assign(dims, 0.0);
  for (const auto& s : data.samples) {
    for (std::size_t d = 0; d < dims; ++d) mean_[d] += s.features[d];
  }
  for (double& m : mean_) m /= static_cast<double>(data.size());
  for (const auto& s : data.samples) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double diff = s.features[d] - mean_[d];
      stddev_[d] += diff * diff;
    }
  }
  for (double& sd : stddev_) {
    sd = std::sqrt(sd / static_cast<double>(data.size()));
    if (sd < 1e-12) sd = 1.0;
  }
}

void Standardizer::fit_rows(const DatasetMatrix& data, std::span<const std::uint32_t> rows) {
  if (rows.empty()) throw std::invalid_argument("Standardizer::fit_rows: empty row set");
  const std::size_t dims = data.cols();
  mean_.assign(dims, 0.0);
  stddev_.assign(dims, 0.0);
  // Accumulate in (row, dim) order — the order fit() sees when handed the
  // materialised subset — so the sums round identically.
  for (const std::uint32_t row : rows) {
    for (std::size_t d = 0; d < dims; ++d) mean_[d] += data.at(row, d);
  }
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  for (const std::uint32_t row : rows) {
    for (std::size_t d = 0; d < dims; ++d) {
      const double diff = data.at(row, d) - mean_[d];
      stddev_[d] += diff * diff;
    }
  }
  for (double& sd : stddev_) {
    sd = std::sqrt(sd / static_cast<double>(rows.size()));
    if (sd < 1e-12) sd = 1.0;
  }
}

Standardizer Standardizer::from_params(std::vector<double> means,
                                       std::vector<double> stddevs) {
  if (means.size() != stddevs.size() || means.empty()) {
    throw std::invalid_argument("Standardizer::from_params: size mismatch");
  }
  for (const double sd : stddevs) {
    if (sd <= 0.0) throw std::invalid_argument("Standardizer::from_params: non-positive stddev");
  }
  Standardizer st;
  st.mean_ = std::move(means);
  st.stddev_ = std::move(stddevs);
  return st;
}

FeatureVector Standardizer::transform(const FeatureVector& x) const {
  FeatureVector out(x.size());
  transform(x, out);
  return out;
}

void Standardizer::transform(std::span<const double> x, std::span<double> out) const {
  if (x.size() != mean_.size() || out.size() != mean_.size()) {
    throw std::invalid_argument("Standardizer: dim mismatch");
  }
  for (std::size_t d = 0; d < x.size(); ++d) out[d] = (x[d] - mean_[d]) / stddev_[d];
}

void Standardizer::transform_in_place(Dataset& data) const {
  for (auto& s : data.samples) s.features = transform(s.features);
}

}  // namespace ltefp::features
