#include "attacks/retrain.hpp"

#include <stdexcept>

namespace ltefp::attacks {

std::vector<MonitoringDay> simulate_sustained_monitoring(const PipelineConfig& config,
                                                         int horizon_days,
                                                         const RetrainPolicy& policy,
                                                         const CostModel& cost_model) {
  if (horizon_days <= 0) throw std::invalid_argument("simulate_sustained_monitoring: bad horizon");
  if (policy.check_interval_days <= 0) {
    throw std::invalid_argument("simulate_sustained_monitoring: bad check interval");
  }

  std::vector<MonitoringDay> series;
  double cost = 0.0;
  int trained_on_day = 0;

  // Day-0 training set.
  const auto train_at = [&](int day) {
    PipelineConfig train_config = config;
    train_config.day = day;
    train_config.session_day_range = 0;  // a focused collection campaign
    train_config.seed = config.seed + 7919ULL * static_cast<std::uint64_t>(day);
    FingerprintPipeline pipeline(train_config);
    pipeline.train(build_dataset(train_config));
    cost += day == 0 ? cost_model.collecting_cost() + cost_model.training_cost()
                     : cost_model.retraining_cost();
    trained_on_day = day;
    return pipeline;
  };

  FingerprintPipeline pipeline = train_at(0);

  for (int day = 0; day <= horizon_days; day += policy.check_interval_days) {
    // Collect that day's evaluation traffic (identification cost).
    PipelineConfig test_config = config;
    test_config.day = day;
    test_config.session_day_range = 0;
    test_config.seed = config.seed ^ (0xE7A1ULL * static_cast<std::uint64_t>(day + 1));
    // Transpose once; evaluate() runs on the columnar matrix directly (and
    // a retrain below re-evaluates nothing, so one transpose per day).
    const features::DatasetMatrix test_matrix(build_dataset(test_config));
    cost += cost_model.identification_cost();

    MonitoringDay entry;
    entry.day = day;
    entry.weighted_f = pipeline.evaluate(test_matrix).weighted_f_score();
    entry.model_age_days = day - trained_on_day;

    if (entry.weighted_f < policy.threshold) {
      // Re-collect fresh traffic at today's drift state and retrain.
      pipeline = train_at(day);
      entry.retrained = true;
    }
    entry.cumulative_cost = cost;
    series.push_back(entry);
  }
  return series;
}

}  // namespace ltefp::attacks
