// Capture-once/replay-many bridge between trace collection and the
// tracestore corpus.
//
// record_corpus() runs exactly the collection loop build_dataset() would
// run (same operators, seeds, day jitter) and spills every session to a
// binary corpus; a PipelineConfig whose `replay_corpus` names that
// directory then rebuilds the identical dataset — record-for-record and
// therefore metric-for-metric — without re-running the radio simulation.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "attacks/pipeline.hpp"
#include "tracestore/corpus.hpp"

namespace ltefp::attacks {

struct RecordResult {
  std::size_t traces = 0;
  std::size_t records = 0;
  std::size_t corpus_bytes = 0;   // total encoded .ltt bytes
  std::size_t csv_bytes = 0;      // what the same traces cost as CSV
};

/// Collects the full training set for `config` and writes it to `dir`
/// (created if needed, overwritten if an older corpus is present).
RecordResult record_corpus(const PipelineConfig& config, const std::string& dir);

/// Loads collected sessions back from a corpus, in capture (seq) order,
/// optionally restricted to one app. rnti_count is recomputed from the
/// trace; sniffer decode/miss counters are not persisted and read as 0.
std::vector<CollectedTrace> load_corpus(const std::string& dir,
                                        std::optional<apps::AppId> app = std::nullopt);

/// Serialises one collected session into `corpus` (exposed so ad-hoc
/// captures — CLI `record`, lab sessions — share the metadata convention).
void spill_to_corpus(tracestore::CorpusWriter& corpus, const CollectedTrace& collected,
                     lte::Operator op, std::uint64_t seed, int day);

}  // namespace ltefp::attacks
