#include "attacks/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "apps/background.hpp"
#include "apps/factory.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "dtw/dtw.hpp"
#include "lte/network.hpp"
#include "sniffer/sniffer.hpp"

namespace ltefp::attacks {
namespace {

constexpr lte::Imsi kUserAImsi = 310'120'000'000'001ULL;
constexpr lte::Imsi kUserBImsi = 310'120'000'000'002ULL;
constexpr lte::Imsi kBackgroundImsiBase = 310'120'000'300'000ULL;
constexpr TimeMs kWarmup = 2'000;

std::vector<double> direction_series(const sniffer::Trace& trace, lte::Direction dir,
                                     TimeMs origin, TimeMs t_w, std::size_t bins) {
  sniffer::Trace filtered;
  for (const auto& r : trace) {
    if (r.direction == dir) filtered.push_back(r);
  }
  return sniffer::frames_per_bin(filtered, origin, t_w, bins);
}

}  // namespace

features::FeatureVector similarity_features(const sniffer::Trace& a, const sniffer::Trace& b,
                                            TimeMs origin, TimeMs t_w, TimeMs duration,
                                            TimeMs clock_skew) {
  const auto bins = static_cast<std::size_t>(std::max<TimeMs>(1, duration / t_w));
  dtw::DtwOptions options;
  options.band = static_cast<int>(std::max<std::size_t>(4, bins / 8));

  const TimeMs origin_b = origin + clock_skew;
  const auto a_ul = direction_series(a, lte::Direction::kUplink, origin, t_w, bins);
  const auto a_dl = direction_series(a, lte::Direction::kDownlink, origin, t_w, bins);
  const auto b_ul = direction_series(b, lte::Direction::kUplink, origin_b, t_w, bins);
  const auto b_dl = direction_series(b, lte::Direction::kDownlink, origin_b, t_w, bins);
  const auto a_all = sniffer::frames_per_bin(a, origin, t_w, bins);
  const auto b_all = sniffer::frames_per_bin(b, origin_b, t_w, bins);

  // When A talks, A's uplink mirrors B's downlink (and vice versa): those
  // cross-direction similarities carry the conversational signal.
  const double sim_ul_dl = dtw::series_similarity(a_ul, b_dl, options);
  const double sim_dl_ul = dtw::series_similarity(a_dl, b_ul, options);
  const double sim_total = dtw::series_similarity(a_all, b_all, options);

  const double vol_a = static_cast<double>(sniffer::total_bytes(a));
  const double vol_b = static_cast<double>(sniffer::total_bytes(b));
  const double volume_ratio =
      vol_a + vol_b > 0 ? std::min(vol_a, vol_b) / std::max({vol_a, vol_b, 1.0}) : 0.0;

  return {sim_ul_dl, sim_dl_ul, sim_total, volume_ratio};
}

PairObservation run_pair_session(apps::AppId app, bool paired,
                                 const CorrelationConfig& config) {
  lte::Simulation sim(config.seed);
  const lte::OperatorProfile profile = lte::operator_profile(config.op);

  // The two victims camp in different cells (the attack needs one sniffer
  // per victim cell; same-cell pairs are a special case of this).
  const lte::CellId cell_a = sim.add_cell(profile);
  const lte::CellId cell_b = sim.add_cell(profile);
  apps::populate_background_ues(sim, cell_a, profile, kBackgroundImsiBase);
  apps::populate_background_ues(sim, cell_b, profile, kBackgroundImsiBase + 1000);

  const lte::UeId user_a = sim.add_ue(kUserAImsi);
  const lte::UeId user_b = sim.add_ue(kUserBImsi);
  sim.camp(user_a, cell_a);
  sim.camp(user_b, cell_b);

  sniffer::SnifferConfig sc;
  sc.miss_rate = profile.sniffer_miss_rate;
  sc.false_rate = profile.sniffer_false_rate;
  sniffer::Sniffer sniffer_a(sc, sim.rng().fork());
  sniffer::Sniffer sniffer_b(sc, sim.rng().fork());
  sniffer_a.restrict_to_tmsi(sim.tmsi_of(user_a));
  sniffer_b.restrict_to_tmsi(sim.tmsi_of(user_b));
  sim.add_observer(cell_a, sniffer_a);
  sim.add_observer(cell_b, sniffer_b);

  sim.run_for(kWarmup);

  // Real-world victims run other apps alongside the conversation; their
  // noise pollutes the frame-count series the attacker correlates. The
  // lab experiment uses dedicated UEs.
  const bool live_network = config.op != lte::Operator::kLab;
  const auto with_noise = [&](std::unique_ptr<lte::TrafficSource> fg) {
    if (!live_network) return fg;
    // Ambient device chatter (notifications, sync, feed refreshes) -
    // light but enough to blur the conversation's frame-count series.
    apps::WebBrowsingSource::Params ambient;
    ambient.think_mean_s = 14.0;
    ambient.response_kb_mean = 14;
    ambient.response_kb_sigma = 0.8;
    ambient.burst_rate_kbps = 2000;
    return std::unique_ptr<lte::TrafficSource>(std::make_unique<apps::CompositeSource>(
        std::move(fg), std::make_unique<apps::WebBrowsingSource>(ambient, sim.rng().fork())));
  };

  if (paired) {
    auto [src_a, src_b] =
        apps::make_paired_sources(app, config.duration, sim.rng().fork(), 70, config.day);
    sim.set_traffic_source(user_a, with_noise(std::move(src_a)));
    sim.set_traffic_source(user_b, with_noise(std::move(src_b)));
  } else {
    // Same app, independent conversations with third parties.
    sim.set_traffic_source(user_a, with_noise(apps::make_app_source(
                                       app, config.duration, sim.rng().fork(), config.day)));
    sim.set_traffic_source(user_b, with_noise(apps::make_app_source(
                                       app, config.duration, sim.rng().fork(), config.day)));
  }

  const TimeMs origin = sim.now();
  sim.run_for(config.duration);

  PairObservation obs;
  obs.app = app;
  obs.actually_paired = paired;
  const auto trace_a = sniffer_a.trace_of_tmsi(sim.tmsi_of(user_a));
  const auto trace_b = sniffer_b.trace_of_tmsi(sim.tmsi_of(user_b));
  // The two sniffers are independent boxes: their capture clocks are not
  // perfectly aligned, so one series is observed with a skewed origin.
  Rng skew_rng(config.seed ^ 0xC10C4ULL);
  const TimeMs clock_skew = static_cast<TimeMs>(skew_rng.uniform(-900.0, 900.0));
  obs.features =
      similarity_features(trace_a, trace_b, origin, config.t_w, config.duration, clock_skew);
  // Headline similarity score D(T_w, T_a): the strongest cross-direction
  // match (sender-side uplink vs receiver-side downlink).
  obs.similarity = std::max(obs.features[0], obs.features[1]);
  return obs;
}

std::vector<double> trace_similarity_matrix(std::span<const sniffer::Trace> traces,
                                            TimeMs origin, TimeMs t_w, TimeMs duration) {
  const auto bins = static_cast<std::size_t>(std::max<TimeMs>(1, duration / t_w));
  dtw::DtwOptions options;
  options.band = static_cast<int>(std::max<std::size_t>(4, bins / 8));
  std::vector<std::vector<double>> series(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    series[i] = sniffer::frames_per_bin(traces[i], origin, t_w, bins);
  }
  return dtw::similarity_matrix(series, options);
}

CandidateRanking rank_candidate_contacts(const sniffer::Trace& target,
                                         std::span<const sniffer::Trace> candidates,
                                         TimeMs origin, TimeMs t_w, TimeMs duration,
                                         std::size_t k) {
  const auto bins = static_cast<std::size_t>(std::max<TimeMs>(1, duration / t_w));
  dtw::SearchOptions options;
  options.dtw.band = static_cast<int>(std::max<std::size_t>(4, bins / 8));
  const auto query = direction_series(target, lte::Direction::kUplink, origin, t_w, bins);
  std::vector<std::vector<double>> series(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    series[i] = direction_series(candidates[i], lte::Direction::kDownlink, origin, t_w, bins);
  }
  CandidateRanking ranking;
  ranking.matches = dtw::top_k(query, series, k, options, &ranking.stats);
  return ranking;
}

SimilarityStats measure_similarity(apps::AppId app, int runs, const CorrelationConfig& config) {
  if (runs <= 0) return {};
  // Each run's seed is a pure function of (config seed, run index), so the
  // heavyweight pair sessions simulate concurrently; the running-stats
  // reduction happens on the calling thread in run order.
  const auto sims = parallel_map(static_cast<std::size_t>(runs), [&](std::size_t i) {
    CorrelationConfig c = config;
    c.seed = config.seed + 1000003ULL * static_cast<std::uint64_t>(i + 1);
    return run_pair_session(app, /*paired=*/true, c).similarity;
  });
  RunningStats stats;
  for (const double s : sims) stats.add(s);
  SimilarityStats out;
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.runs = runs;
  return out;
}

ml::BinaryMetrics correlation_attack(apps::AppId app, int train_pairs, int test_pairs,
                                     const CorrelationConfig& config) {
  const auto collect = [&](int count, std::uint64_t salt) {
    // Flat task per (pair index, world): sessions simulate concurrently,
    // and the dataset is assembled on the calling thread in the serial
    // loop's exact order (paired before unpaired for each index).
    const auto observations =
        parallel_map(static_cast<std::size_t>(count) * 2, [&](std::size_t j) {
          const auto i = static_cast<int>(j / 2);
          const bool paired = j % 2 == 0;
          CorrelationConfig c = config;
          c.seed = config.seed ^ salt;
          c.seed += 7919ULL * static_cast<std::uint64_t>(i + 1) + (paired ? 1 : 0);
          return run_pair_session(app, paired, c);
        });
    features::Dataset data;
    data.feature_names = {"sim_ul_dl", "sim_dl_ul", "sim_total", "volume_ratio"};
    data.label_names = {"independent", "in-contact"};
    for (const PairObservation& obs : observations) {
      data.add(obs.features, obs.actually_paired ? 1 : 0);
    }
    return data;
  };

  const features::Dataset train = collect(train_pairs, 0x7261696EULL);
  const features::Dataset test = collect(test_pairs, 0x74657374ULL);

  ml::LogisticRegression model;
  model.fit(train);

  std::vector<int> truth, predicted;
  for (const auto& s : test.samples) {
    truth.push_back(s.label);
    predicted.push_back(model.predict(s.features));
  }
  return ml::binary_metrics(truth, predicted);
}

}  // namespace ltefp::attacks
