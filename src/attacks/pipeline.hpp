// Attack I: the mobile-app fingerprinting pipeline (paper Figure 3,
// procedures 3-4: Data Preprocessing, Training and Classification).
//
// Builds labeled window datasets from collected traces, trains the
// hierarchical Random Forest (category -> app), and evaluates per-app
// precision / recall / F-score — the machinery behind Tables III, IV,
// VIII and Figures 8, 9.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "apps/app_id.hpp"
#include "attacks/collect.hpp"
#include "features/matrix.hpp"
#include "features/window.hpp"
#include "ml/hierarchical.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

namespace ltefp::attacks {

struct PipelineConfig {
  lte::Operator op = lte::Operator::kLab;
  lte::LinkFilter link = lte::LinkFilter::kBoth;
  TimeMs window_ms = 100;          // paper's empirical window
  int traces_per_app = 3;          // sessions collected per app
  TimeMs trace_duration = minutes(10);
  std::uint64_t seed = 42;
  int day = 0;
  /// Sessions are spread over this many drift days (-1 = auto: 0 in the
  /// lab, 30 on commercial networks, mirroring the paper's six-month
  /// collection campaign).
  int session_day_range = -1;
  int background_apps = 0;
  ml::ForestConfig forest;         // defaults: 100 trees, seed 1
  /// When non-empty, build_dataset() replays sessions from this tracestore
  /// corpus directory (see attacks/replay.hpp) instead of simulating —
  /// bit-identical datasets and metrics, no re-collection cost.
  std::string replay_corpus;
};

/// Builds a labeled dataset (label = AppId index) from collected traces.
features::Dataset dataset_from_traces(std::span<const CollectedTrace> traces,
                                      const features::WindowConfig& window);

/// Runs the collection campaign for all nine apps (kAllApps order, then
/// per-app session index) — the canonical session order that corpus
/// recording and replay both preserve.
std::vector<CollectedTrace> collect_all_traces(const PipelineConfig& config);

/// Collects (or, with `replay_corpus` set, replays) traces for all nine
/// apps and windows them into a dataset.
features::Dataset build_dataset(const PipelineConfig& config);

/// Per-trace classification outcome (used by the history attack).
struct TraceVerdict {
  apps::AppId app = apps::AppId::kNetflix;
  apps::AppCategory category = apps::AppCategory::kStreaming;
  /// Fraction of windows voting for the winning app — the per-attempt
  /// "F-score" column of the paper's Table V.
  double confidence = 0.0;
  std::size_t window_count = 0;
};

class FingerprintPipeline {
 public:
  explicit FingerprintPipeline(PipelineConfig config = {});

  /// Trains the hierarchical classifier on a labeled window dataset.
  void train(const features::Dataset& train_set);

  bool trained() const { return model_ != nullptr; }
  const PipelineConfig& config() const { return config_; }

  /// The trained classifier (nullptr before train()). The streaming daemon
  /// batch-predicts through this exact model, so online verdicts match the
  /// batch vote bit for bit.
  const ml::Classifier* model() const { return model_.get(); }

  /// Window-level prediction (label = AppId index).
  int predict_window(const features::FeatureVector& x) const;

  /// Whole-trace verdict by majority vote over windows.
  TraceVerdict classify_trace(const sniffer::Trace& trace, TimeMs session_start) const;

  /// Confusion matrix over a labeled test set (9 app classes).
  ml::ConfusionMatrix evaluate(const features::Dataset& test_set) const;

  /// Columnar variant: evaluates every row of an already-transposed test
  /// matrix (batch block traversal, no per-sample feature gathers). The
  /// Dataset overload delegates here; callers that evaluate the same test
  /// set repeatedly (sustained monitoring) should transpose once and reuse.
  ml::ConfusionMatrix evaluate(const features::DatasetMatrix& test_matrix) const;

  features::WindowConfig window_config() const;

 private:
  PipelineConfig config_;
  std::unique_ptr<ml::HierarchicalClassifier> model_;
};

/// One row of the paper's per-app metric tables.
struct AppScore {
  apps::AppId app = apps::AppId::kNetflix;
  double f_score = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// Collect -> split 80/20 -> train -> test, returning per-app scores; the
/// single-call driver used by the table benches.
std::vector<AppScore> run_fingerprint_experiment(const PipelineConfig& config);

/// Extracts per-app scores from a confusion matrix (apps in kAllApps order).
std::vector<AppScore> scores_from_confusion(const ml::ConfusionMatrix& cm);

}  // namespace ltefp::attacks
