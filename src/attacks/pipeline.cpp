#include "attacks/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "attacks/replay.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace ltefp::attacks {
namespace {

int category_of_label(int label) {
  return static_cast<int>(apps::category_of(static_cast<apps::AppId>(label)));
}

}  // namespace

features::Dataset dataset_from_traces(std::span<const CollectedTrace> traces,
                                      const features::WindowConfig& window) {
  features::Dataset data;
  data.feature_names = features::feature_names();
  data.label_names.resize(apps::kNumApps);
  for (int i = 0; i < apps::kNumApps; ++i) {
    data.label_names[static_cast<std::size_t>(i)] = apps::to_string(apps::kAllApps[static_cast<std::size_t>(i)]);
  }
  for (const auto& t : traces) {
    features::append_windows(data, t.trace, t.session_start, window,
                             static_cast<int>(t.app));
  }
  return data;
}

std::vector<CollectedTrace> collect_all_traces(const PipelineConfig& config) {
  CollectConfig collect;
  collect.op = config.op;
  collect.duration = config.trace_duration;
  collect.day = config.day;
  collect.day_jitter_range = config.session_day_range >= 0
                                 ? config.session_day_range
                                 : (config.op == lte::Operator::kLab ? 0 : 30);
  collect.background_apps = config.background_apps;
  collect.seed = config.seed;

  if (config.traces_per_app <= 0) return {};
  // One flat task per (app, session): all sessions of the campaign run
  // concurrently, not just sessions within one app. session_seed() makes
  // each task's RNG stream a pure function of its coordinates, and the
  // slot-indexed map keeps the canonical app-major order, so the result is
  // bit-identical to the serial per-app loop at any thread count.
  const auto per_app = static_cast<std::size_t>(config.traces_per_app);
  return parallel_map(static_cast<std::size_t>(apps::kNumApps) * per_app, [&](std::size_t i) {
    const apps::AppId app = apps::kAllApps[i / per_app];
    CollectConfig c = collect;
    c.seed = session_seed(collect.seed, app, static_cast<int>(i % per_app), collect.day);
    return collect_trace(app, c);
  });
}

features::Dataset build_dataset(const PipelineConfig& config) {
  const std::vector<CollectedTrace> traces = config.replay_corpus.empty()
                                                 ? collect_all_traces(config)
                                                 : load_corpus(config.replay_corpus);
  features::WindowConfig window;
  window.window_ms = config.window_ms;
  window.link = config.link;
  return dataset_from_traces(traces, window);
}

FingerprintPipeline::FingerprintPipeline(PipelineConfig config) : config_(config) {}

features::WindowConfig FingerprintPipeline::window_config() const {
  features::WindowConfig window;
  window.window_ms = config_.window_ms;
  window.link = config_.link;
  return window;
}

void FingerprintPipeline::train(const features::Dataset& train_set) {
  if (train_set.empty()) throw std::invalid_argument("FingerprintPipeline::train: empty dataset");
  const ml::ForestConfig forest = config_.forest;
  model_ = std::make_unique<ml::HierarchicalClassifier>(
      category_of_label, apps::kNumCategories,
      [forest]() { return std::make_unique<ml::RandomForest>(forest); });
  model_->fit(train_set);
}

int FingerprintPipeline::predict_window(const features::FeatureVector& x) const {
  if (!model_) throw std::logic_error("FingerprintPipeline: not trained");
  return model_->predict(x);
}

TraceVerdict FingerprintPipeline::classify_trace(const sniffer::Trace& trace,
                                                 TimeMs session_start) const {
  if (!model_) throw std::logic_error("FingerprintPipeline: not trained");
  TraceVerdict verdict;
  const auto windows = features::extract_windows(trace, session_start, window_config());
  verdict.window_count = windows.size();
  if (windows.empty()) return verdict;

  // Predictions are computed per-window in parallel slots; the vote count
  // is an order-stable reduction on the calling thread.
  const auto predictions = parallel_map(
      windows.size(), [&](std::size_t i) { return model_->predict(windows[i]); },
      /*chunk=*/16);
  std::vector<std::size_t> votes(apps::kNumApps, 0);
  for (const int p : predictions) ++votes[static_cast<std::size_t>(p)];
  const auto winner =
      static_cast<std::size_t>(std::max_element(votes.begin(), votes.end()) - votes.begin());
  verdict.app = static_cast<apps::AppId>(winner);
  verdict.category = apps::category_of(verdict.app);
  verdict.confidence = static_cast<double>(votes[winner]) / static_cast<double>(windows.size());
  return verdict;
}

ml::ConfusionMatrix FingerprintPipeline::evaluate(const features::Dataset& test_set) const {
  return evaluate(features::DatasetMatrix(test_set));
}

ml::ConfusionMatrix FingerprintPipeline::evaluate(
    const features::DatasetMatrix& test_matrix) const {
  if (!model_) throw std::logic_error("FingerprintPipeline: not trained");
  const auto rows = test_matrix.all_rows();
  const auto predictions = model_->predict_rows(test_matrix, rows);
  ml::ConfusionMatrix cm(apps::kNumApps);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    cm.add(test_matrix.label(i), predictions[i]);
  }
  return cm;
}

std::vector<AppScore> scores_from_confusion(const ml::ConfusionMatrix& cm) {
  std::vector<AppScore> scores;
  scores.reserve(apps::kNumApps);
  for (int i = 0; i < apps::kNumApps; ++i) {
    AppScore s;
    s.app = apps::kAllApps[static_cast<std::size_t>(i)];
    s.f_score = cm.f_score(i);
    s.precision = cm.precision(i);
    s.recall = cm.recall(i);
    scores.push_back(s);
  }
  return scores;
}

std::vector<AppScore> run_fingerprint_experiment(const PipelineConfig& config) {
  const features::Dataset data = build_dataset(config);
  Rng rng(config.seed ^ 0xABCDEF);
  // Paper Table VIII: "Splitting of the dataset: 80% training, 20% testing".
  auto [train, test] = features::train_test_split(data, 0.8, rng);
  FingerprintPipeline pipeline(config);
  pipeline.train(train);
  return scores_from_confusion(pipeline.evaluate(test));
}

}  // namespace ltefp::attacks
