#include "attacks/replay.hpp"

#include <sstream>
#include <unordered_set>

namespace ltefp::attacks {

void spill_to_corpus(tracestore::CorpusWriter& corpus, const CollectedTrace& collected,
                     lte::Operator op, std::uint64_t seed, int day) {
  tracestore::TraceMeta meta;
  meta.op = op;
  meta.app = static_cast<std::uint16_t>(collected.app);
  meta.label = apps::to_string(collected.app);
  meta.day = day;
  meta.seed = seed;
  meta.cell = collected.trace.empty() ? 0 : collected.trace.front().cell;
  meta.session_start = collected.session_start;
  corpus.add(meta, collected.trace);
}

RecordResult record_corpus(const PipelineConfig& config, const std::string& dir) {
  const std::vector<CollectedTrace> traces = collect_all_traces(config);
  tracestore::CorpusWriter corpus(dir);
  RecordResult result;
  for (const auto& t : traces) {
    spill_to_corpus(corpus, t, config.op, config.seed, config.day);
    result.records += t.trace.size();
    std::ostringstream csv;
    sniffer::write_csv(csv, t.trace);
    result.csv_bytes += csv.str().size();
  }
  corpus.finish();
  result.traces = corpus.entries().size();
  result.corpus_bytes = corpus.total_bytes();
  return result;
}

std::vector<CollectedTrace> load_corpus(const std::string& dir, std::optional<apps::AppId> app) {
  const tracestore::Corpus corpus = tracestore::Corpus::open(dir);
  tracestore::CorpusFilter filter;
  if (app) filter.app = static_cast<std::uint16_t>(*app);
  // Metadata screening stays serial and cheap; the .ltt decodes behind
  // load_all() run concurrently, returned in seq order.
  for (const auto& entry : corpus.select(filter)) {
    if (entry.meta.app >= static_cast<std::uint16_t>(apps::kNumApps)) {
      throw tracestore::TraceStoreError("corpus: " + entry.file + ": app code " +
                                        std::to_string(entry.meta.app) +
                                        " is not a known AppId");
    }
  }
  std::vector<CollectedTrace> out;
  auto loaded_all = corpus.load_all(filter);
  for (auto& loaded : loaded_all) {
    CollectedTrace t;
    t.app = static_cast<apps::AppId>(loaded.entry.meta.app);
    t.session_start = loaded.entry.meta.session_start;
    t.trace = std::move(loaded.trace);
    std::unordered_set<lte::Rnti> rntis;
    for (const auto& r : t.trace) rntis.insert(r.rnti);
    t.rnti_count = rntis.size();
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace ltefp::attacks
