#include "attacks/history.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "apps/background.hpp"
#include "apps/factory.hpp"
#include "lte/network.hpp"
#include "sniffer/sniffer.hpp"

namespace ltefp::attacks {
namespace {

constexpr lte::Imsi kVictimImsi = 310'260'000'000'042ULL;
constexpr lte::Imsi kBackgroundImsiBase = 310'260'000'200'000ULL;

/// Splits a per-zone victim trace into activity segments separated by
/// silences longer than `gap`. Each segment is one candidate visit.
std::vector<sniffer::Trace> segment_by_gaps(const sniffer::Trace& trace, TimeMs gap) {
  std::vector<sniffer::Trace> segments;
  for (const auto& r : trace) {
    if (segments.empty() || r.time - segments.back().back().time > gap) {
      segments.emplace_back();
    }
    segments.back().push_back(r);
  }
  return segments;
}

}  // namespace

HistoryAttack::HistoryAttack(const FingerprintPipeline& pipeline) : pipeline_(pipeline) {
  if (!pipeline.trained()) {
    throw std::invalid_argument("HistoryAttack: pipeline must be trained first");
  }
}

std::vector<ZoneVisit> HistoryAttack::default_itinerary(std::uint64_t seed) {
  // The paper's Table V: 12 visits over three zones (home / work / store)
  // mixing all three app categories. Apps are drawn deterministically from
  // the seed so repeated runs vary like the paper's three-day campaign.
  Rng rng(seed);
  const int zone_pattern[12] = {0, 1, 2, 0, 1, 0, 1, 2, 0, 1, 0, 0};
  std::vector<ZoneVisit> itinerary;
  itinerary.reserve(12);
  for (int i = 0; i < 12; ++i) {
    ZoneVisit visit;
    visit.zone = zone_pattern[i];
    const auto category = static_cast<apps::AppCategory>(rng.index(3));
    const auto members = apps::apps_in_category(category);
    visit.app = members[rng.index(members.size())];
    visit.duration = minutes(5) + static_cast<TimeMs>(rng.uniform(0.0, 1.0) * minutes(5));
    visit.travel_after = seconds(25) + static_cast<TimeMs>(rng.uniform(0.0, 1.0) * seconds(20));
    itinerary.push_back(visit);
  }
  return itinerary;
}

HistoryResult HistoryAttack::run(const HistoryConfig& config) const {
  if (config.itinerary.empty()) {
    throw std::invalid_argument("HistoryAttack::run: empty itinerary");
  }
  lte::Simulation sim(config.seed);
  const lte::OperatorProfile profile = lte::operator_profile(config.op);

  std::vector<lte::CellId> cells;
  std::vector<std::unique_ptr<sniffer::Sniffer>> sniffers;
  for (int z = 0; z < config.zones; ++z) {
    const lte::CellId cell = sim.add_cell(profile);
    cells.push_back(cell);
    apps::populate_background_ues(sim, cell, profile,
                                  kBackgroundImsiBase + static_cast<lte::Imsi>(z) * 1000);
    sniffer::SnifferConfig sc;
    sc.miss_rate = profile.sniffer_miss_rate;
    sc.false_rate = profile.sniffer_false_rate;
    sniffers.push_back(std::make_unique<sniffer::Sniffer>(sc, sim.rng().fork()));
    sim.add_observer(cell, *sniffers.back());
  }

  const lte::UeId victim = sim.add_ue(kVictimImsi);
  const lte::Tmsi victim_tmsi = sim.tmsi_of(victim);
  for (auto& sn : sniffers) sn->restrict_to_tmsi(victim_tmsi);

  // Drive the ground-truth itinerary.
  struct TruthVisit {
    int zone;
    apps::AppId app;
    TimeMs start;
    TimeMs end;
  };
  std::vector<TruthVisit> truth;
  sim.run_for(2'000);  // background warm-up
  for (const ZoneVisit& visit : config.itinerary) {
    if (visit.zone < 0 || visit.zone >= config.zones) {
      throw std::out_of_range("HistoryAttack::run: visit zone out of range");
    }
    sim.move(victim, cells[static_cast<std::size_t>(visit.zone)]);
    sim.set_traffic_source(
        victim, apps::make_app_source(visit.app, visit.duration, sim.rng().fork()));
    const TimeMs start = sim.now();
    sim.run_for(visit.duration);
    sim.set_traffic_source(victim, nullptr);
    truth.push_back(TruthVisit{visit.zone, visit.app, start, sim.now()});
    // Travel: victim goes quiet, the RRC connection times out, the RNTI is
    // released; the next zone will see a fresh RACH + identity mapping.
    sim.run_for(std::max<TimeMs>(visit.travel_after, profile.inactivity_timeout + 2'000));
  }

  // --- Reconstruction, from sniffer captures only.
  struct Segment {
    int zone;
    sniffer::Trace trace;
  };
  std::vector<Segment> segments;
  for (int z = 0; z < config.zones; ++z) {
    const auto zone_trace = sniffers[static_cast<std::size_t>(z)]->trace_of_tmsi(victim_tmsi);
    for (auto& seg : segment_by_gaps(zone_trace, seconds(8))) {
      if (seg.size() < 20) continue;  // ignore stray reconnect blips
      segments.push_back(Segment{z, std::move(seg)});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.trace.front().time < b.trace.front().time; });

  HistoryResult result;
  std::size_t correct = 0;
  for (const auto& tv : truth) {
    // Find the segment in the right zone with maximal time overlap.
    const Segment* best = nullptr;
    TimeMs best_overlap = 0;
    for (const auto& seg : segments) {
      if (seg.zone != tv.zone) continue;
      const TimeMs s = std::max(tv.start, seg.trace.front().time);
      const TimeMs e = std::min(tv.end, seg.trace.back().time);
      if (e - s > best_overlap) {
        best_overlap = e - s;
        best = &seg;
      }
    }
    HistoryObservation obs;
    obs.zone = tv.zone;
    obs.true_app = tv.app;
    if (best != nullptr) {
      obs.start = best->trace.front().time;
      obs.end = best->trace.back().time;
      const TraceVerdict verdict =
          pipeline_.classify_trace(best->trace, best->trace.front().time);
      obs.predicted_app = verdict.app;
      obs.predicted_category = verdict.category;
      obs.f_score = verdict.confidence;
      obs.correct = verdict.app == tv.app;
    }
    if (obs.correct) ++correct;
    result.observations.push_back(obs);
  }
  result.success_rate =
      truth.empty() ? 0.0 : static_cast<double>(correct) / static_cast<double>(truth.size());
  return result;
}

}  // namespace ltefp::attacks
