// Attack III: the correlation attack (paper Sections III-D and VII-C).
//
// Three steps (Figure 6): (1) radio scanning — both victims' cells are
// sniffed and identity-mapped; (2) app detection — the hierarchical RF
// identifies the app class in use; (3) similarity calculation — DTW
// (Equation 1) compares the two victims' per-T_w frame-count series, and a
// logistic regression on the similarity features decides whether the
// matched traces represent actual communication (Table VII).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/app_id.hpp"
#include "common/sim_time.hpp"
#include "dtw/dtw.hpp"
#include "features/dataset.hpp"
#include "lte/types.hpp"
#include "ml/logreg.hpp"
#include "ml/metrics.hpp"
#include "sniffer/trace.hpp"

namespace ltefp::attacks {

struct CorrelationConfig {
  lte::Operator op = lte::Operator::kLab;
  TimeMs duration = minutes(3);   // per captured session
  TimeMs t_w = seconds(1);        // paper default T_w = 1 s
  std::uint64_t seed = 11;
  int day = 0;
};

/// One observed pair of sessions and its similarity analysis.
struct PairObservation {
  apps::AppId app = apps::AppId::kWhatsApp;
  bool actually_paired = false;  // ground truth: same conversation?
  double similarity = 0.0;       // headline DTW similarity score
  /// Feature vector for the contact classifier:
  /// [sim A-UL vs B-DL, sim A-DL vs B-UL, sim total-total, volume ratio].
  features::FeatureVector features;
};

/// Captures one pair of sessions — genuinely conversing when `paired`,
/// independent otherwise — through two sniffers, and computes DTW
/// similarity features from the captured traces alone.
PairObservation run_pair_session(apps::AppId app, bool paired, const CorrelationConfig& config);

/// Mean/stddev of similarity over `runs` paired sessions (Table VI cell).
struct SimilarityStats {
  double mean = 0.0;
  double stddev = 0.0;
  int runs = 0;
};
SimilarityStats measure_similarity(apps::AppId app, int runs, const CorrelationConfig& config);

/// Trains the logistic-regression contact classifier on `train_pairs`
/// paired + `train_pairs` unpaired sessions, evaluates on `test_pairs` of
/// each, and returns precision/recall of the "in contact" class
/// (Table VII cell).
ml::BinaryMetrics correlation_attack(apps::AppId app, int train_pairs, int test_pairs,
                                     const CorrelationConfig& config);

/// DTW similarity features from two captured traces (exposed for tests and
/// the examples). `clock_skew` shifts trace B's bin origin, modelling the
/// unsynchronised capture clocks of two independent sniffers.
features::FeatureVector similarity_features(const sniffer::Trace& a, const sniffer::Trace& b,
                                            TimeMs origin, TimeMs t_w, TimeMs duration,
                                            TimeMs clock_skew = 0);

/// All-pairs DTW similarity of captured traces: bins each trace into a
/// per-T_w frame-count series from `origin`, then fills the flattened
/// row-major n×n matrix of cross-trace similarities — the candidate-pair
/// screen an attacker runs over every tailed victim before the per-pair
/// contact classifier. Pairs are computed concurrently (dtw::
/// similarity_matrix); output is bit-identical at any thread count.
std::vector<double> trace_similarity_matrix(std::span<const sniffer::Trace> traces,
                                            TimeMs origin, TimeMs t_w, TimeMs duration);

/// Result of a pruned candidate scan: the k best matches (descending
/// similarity, ties to the lower index) plus where the lower-bound cascade
/// spent its evaluations.
struct CandidateRanking {
  std::vector<dtw::Match> matches;
  dtw::SearchStats stats;
};

/// Ranks candidate victims against one target: the target's uplink series
/// vs each candidate's downlink series (when the target talks, their
/// uplink mirrors the contact's downlink — the same cross-direction signal
/// similarity_features uses). Runs on the pruned candidate-search engine
/// (dtw::top_k): most candidates are rejected by the LB_Kim/LB_Keogh
/// cascade or an early-abandoned DP, and the returned ranking is
/// bit-identical to scoring every candidate in full.
CandidateRanking rank_candidate_contacts(const sniffer::Trace& target,
                                         std::span<const sniffer::Trace> candidates,
                                         TimeMs origin, TimeMs t_w, TimeMs duration,
                                         std::size_t k = 1);

}  // namespace ltefp::attacks
