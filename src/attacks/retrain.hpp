// Sustained-monitoring simulation with adaptive retraining.
//
// Implements the paper's retraining loop (Section VI "Retraining the
// classifier" + Section VII-D): the attacker monitors classifier
// performance day by day as app traffic drifts (Fig. 8); whenever the
// weighted F-score falls below the threshold X, they re-collect and
// retrain, paying Retrain_cost (Eq. 3). The resulting day series shows the
// sawtooth the cost model amortises.
#pragma once

#include <vector>

#include "attacks/cost.hpp"
#include "attacks/pipeline.hpp"

namespace ltefp::attacks {

struct RetrainPolicy {
  /// Retrain when the measured weighted F-score drops below this (the
  /// paper's X = 0.7).
  double threshold = 0.70;
  /// Days between performance measurements.
  int check_interval_days = 1;
};

struct MonitoringDay {
  int day = 0;
  double weighted_f = 0.0;
  bool retrained = false;    // a retrain was triggered *on* this day
  int model_age_days = 0;    // days since the model was last (re)trained
  double cumulative_cost = 0.0;  // cost-model units spent so far
};

/// Simulates `horizon_days` of monitoring on drifting traffic. The
/// classifier starts freshly trained on day 0; each checked day collects
/// evaluation traffic at that drift day and retrains per policy. Returns
/// one entry per checked day.
///
/// `config` controls operator/scale (small values keep this affordable:
/// each checked day costs one dataset collection).
std::vector<MonitoringDay> simulate_sustained_monitoring(const PipelineConfig& config,
                                                         int horizon_days,
                                                         const RetrainPolicy& policy,
                                                         const CostModel& cost_model);

}  // namespace ltefp::attacks
