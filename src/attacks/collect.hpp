// Trace-collection harness: stands up one cell of the chosen operator,
// background subscribers per its profile, a victim UE running a target app
// (optionally with background-app noise on the same device), and a passive
// sniffer that identity-maps and tails the victim. This is procedure 1+2 of
// the paper's framework (Figure 3): Target Identity Mapping followed by
// Data Acquisition.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/app_id.hpp"
#include "apps/drift.hpp"
#include "common/sim_time.hpp"
#include "lte/countermeasures.hpp"
#include "lte/types.hpp"
#include "sniffer/trace.hpp"

namespace ltefp::attacks {

/// Session timing constants, shared between collection and the streaming
/// daemon (src/stream): collection lets background UEs ramp for the warmup
/// before the victim app starts, and drains buffered traffic for the drain
/// tail after it stops.
inline constexpr TimeMs kSessionWarmupMs = 2'000;
inline constexpr TimeMs kSessionDrainMs = 500;

/// On the attacker's side, a victim stream idle for at least this long is
/// treated as a session boundary. The value matches the 60 s clamp on the
/// `gap_before_ms` window feature: beyond it, silence carries no
/// fingerprint signal, so a longer wait only delays the verdict.
inline constexpr TimeMs kSessionIdleCutoffMs = 60'000;

struct CollectConfig {
  lte::Operator op = lte::Operator::kLab;
  TimeMs duration = minutes(10);   // paper: 10 minutes per trace
  int day = 0;                     // drift day (0 = training day)
  /// When > 0, each session's effective day is day + (seed-derived value
  /// in [0, day_jitter_range)): the paper's real-world dataset spans six
  /// months, so sessions sample many app-version states.
  int day_jitter_range = 0;
  int background_apps = 0;         // noise apps on the victim UE (Fig. 9)
  std::uint64_t seed = 1;
  /// Radio-side defences active in the victim's cell (Section VIII-B).
  lte::CountermeasureConfig countermeasures;
  /// 5G-style SUCI concealment (Section VIII-C): breaks passive identity
  /// mapping, so the targeted capture falls back to per-RNTI collection.
  bool conceal_identity = false;
};

struct CollectedTrace {
  apps::AppId app = apps::AppId::kNetflix;
  sniffer::Trace trace;        // victim's identity-mapped records
  TimeMs session_start = 0;    // when the victim session began
  std::size_t rnti_count = 0;  // distinct RNTIs the victim used (IM churn)
  std::size_t decoded_dcis = 0;
  std::size_t missed_dcis = 0;
};

/// Runs one collection session and returns the victim's trace.
CollectedTrace collect_trace(apps::AppId app, const CollectConfig& config);

/// Seed of one collection session: a SplitMix64 hash of (campaign seed,
/// app, session index, day). A pure function of the session coordinates —
/// no session's RNG stream depends on how many sessions ran before it, so
/// sessions can be collected in any order (or in parallel) and a future
/// reordering of the campaign loop cannot silently reshuffle datasets.
/// Pinned by regression test; changing this re-rolls every dataset.
std::uint64_t session_seed(std::uint64_t campaign_seed, apps::AppId app, int session_index,
                           int day);

/// Collects `count` traces with distinct session_seed()-derived sub-seeds.
/// Sessions run concurrently on the global pool (common/parallel.hpp);
/// results are returned in session-index order regardless of thread count.
std::vector<CollectedTrace> collect_traces(apps::AppId app, int count,
                                           const CollectConfig& config);

}  // namespace ltefp::attacks
