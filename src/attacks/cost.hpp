// Analytical attacker cost model (paper Section VII-D, Figure 7,
// Equations 2-3).
//
// Costs are expressed in abstract work units (the paper never fixes a
// currency); what matters is the structure: collection, training, and
// identification costs compose into Perf() (Eq. 2), and when classifier
// performance sinks below the threshold X within D days, a per-day
// retraining term is added (Eq. 3).
#pragma once

namespace ltefp::attacks {

struct CostModelParams {
  // --- Collecting cost (3): A_n = A_t * A_v * A_i
  int training_apps = 9;        // A_t: apps to fingerprint
  int app_versions = 1;         // A_v: versions distinct enough to matter
  int instances_per_app = 10;   // A_i: recorded instances per app
  double unit_collect_cost = 1.0;  // cost of recording one instance

  // --- Training cost (5): Train = A_n * T_s
  double feature_cost = 0.05;   // F_m: measuring features of one instance
  double unit_train_cost = 0.2; // T_s: training on a single instance

  // --- Identification cost (4)(6): T_d = V_n * A_a
  int victims = 1;              // V_n: targeted victims
  double apps_per_victim = 3.0; // A_a: average apps each victim runs
  double unit_identify_cost = 0.1;  // classifying one test instance

  // --- Retraining (11)
  double performance_threshold = 0.7;  // X
  int drift_period_days = 7;           // D: days until Perf() < X (Fig. 8)
};

struct CostBreakdown {
  double collect = 0.0;    // Col_cost(A_n)
  double train = 0.0;      // Train_cost(A_n, F_m, T_c)
  double test_collect = 0.0;  // Col_cost(T_d)
  double identify = 0.0;   // Id_cost(T_d, F_m, T_c)
  double perf = 0.0;       // Eq. 2 total
  double retrain_daily = 0.0;  // Retrain_cost / D
  double total = 0.0;      // Eq. 3 total for the asked horizon
};

class CostModel {
 public:
  explicit CostModel(CostModelParams params = {});

  /// A_n = A_t * A_v * A_i.
  int recorded_instances() const;

  /// T_d = V_n * A_a (rounded up).
  int test_instances() const;

  double collecting_cost() const;
  double training_cost() const;
  double identification_cost() const;

  /// Eq. 2: Perf(A_n, F_m, T_c, T_d).
  double perf_cost() const;

  /// Retrain_cost(A_n, F_m, T_c): re-collect + re-train.
  double retraining_cost() const;

  /// Eq. 3 over `horizon_days`, given the classifier's current performance.
  /// Retraining applies only when performance < X; it then recurs every
  /// D days across the horizon.
  CostBreakdown total_cost(double current_performance, int horizon_days) const;

  const CostModelParams& params() const { return params_; }

 private:
  CostModelParams params_;
};

}  // namespace ltefp::attacks
