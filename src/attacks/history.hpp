// Attack II: the history attack (paper Sections III-C and VII-B).
//
// The attacker pre-installs one passive sniffer in each cell zone the
// victim frequents (home / workplace / grocery store in Figure 2). As the
// victim roams between zones, each sniffer identity-maps the victim's
// fresh RNTIs back to their TMSI and tails their traffic. Integrating the
// per-zone captures yields a timeline of (zone, time span, app) visits —
// the victim's movement history joined with their app usage, as in
// Table V.
#pragma once

#include <string>
#include <vector>

#include "apps/app_id.hpp"
#include "attacks/pipeline.hpp"
#include "common/sim_time.hpp"

namespace ltefp::attacks {

/// Ground-truth itinerary entry: the victim visits `zone` and uses `app`.
struct ZoneVisit {
  int zone = 0;  // 0-based zone index ("Zone A'" = 0, ...)
  apps::AppId app = apps::AppId::kNetflix;
  TimeMs duration = minutes(6);
  /// Idle travel time after the visit (victim disconnected, moving).
  TimeMs travel_after = seconds(30);
};

struct HistoryConfig {
  lte::Operator op = lte::Operator::kTmobile;  // paper's Figure 5 network
  int zones = 3;
  std::uint64_t seed = 7;
  std::vector<ZoneVisit> itinerary;
};

/// One reconstructed Table V row.
struct HistoryObservation {
  int zone = 0;
  TimeMs start = 0;
  TimeMs end = 0;
  apps::AppCategory predicted_category = apps::AppCategory::kStreaming;
  apps::AppId predicted_app = apps::AppId::kNetflix;
  double f_score = 0.0;  // window-vote confidence for the winning app
  apps::AppId true_app = apps::AppId::kNetflix;
  bool correct = false;
};

struct HistoryResult {
  std::vector<HistoryObservation> observations;
  double success_rate = 0.0;  // fraction of visits with the app identified
};

class HistoryAttack {
 public:
  /// `pipeline` must already be trained (typically on the same operator).
  explicit HistoryAttack(const FingerprintPipeline& pipeline);

  /// Runs the full multi-zone scenario and reconstructs the visit history
  /// purely from the sniffers' captures.
  HistoryResult run(const HistoryConfig& config) const;

  /// The paper's 12-attempt itinerary over three zones (Table V shape).
  static std::vector<ZoneVisit> default_itinerary(std::uint64_t seed);

 private:
  const FingerprintPipeline& pipeline_;
};

}  // namespace ltefp::attacks
