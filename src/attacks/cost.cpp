#include "attacks/cost.hpp"

#include <cmath>
#include <stdexcept>

namespace ltefp::attacks {

CostModel::CostModel(CostModelParams params) : params_(params) {
  if (params_.drift_period_days <= 0) {
    throw std::invalid_argument("CostModel: drift period must be positive");
  }
}

int CostModel::recorded_instances() const {
  return params_.training_apps * params_.app_versions * params_.instances_per_app;
}

int CostModel::test_instances() const {
  return static_cast<int>(
      std::ceil(static_cast<double>(params_.victims) * params_.apps_per_victim));
}

double CostModel::collecting_cost() const {
  return params_.unit_collect_cost * recorded_instances();
}

double CostModel::training_cost() const {
  // Train_cost(A_n, F_m, T_c) = A_n * T_s, where per-instance work includes
  // feature measurement.
  return recorded_instances() * (params_.feature_cost + params_.unit_train_cost);
}

double CostModel::identification_cost() const {
  // Col_cost(T_d) + Id_cost(T_d, F_m, T_c)
  const int td = test_instances();
  return params_.unit_collect_cost * td +
         td * (params_.feature_cost + params_.unit_identify_cost);
}

double CostModel::perf_cost() const {
  return collecting_cost() + training_cost() + identification_cost();
}

double CostModel::retraining_cost() const {
  return collecting_cost() + training_cost();
}

CostBreakdown CostModel::total_cost(double current_performance, int horizon_days) const {
  CostBreakdown b;
  b.collect = collecting_cost();
  b.train = training_cost();
  const int td = test_instances();
  b.test_collect = params_.unit_collect_cost * td;
  b.identify = td * (params_.feature_cost + params_.unit_identify_cost);
  b.perf = b.collect + b.train + b.test_collect + b.identify;
  b.retrain_daily = retraining_cost() / params_.drift_period_days;
  b.total = b.perf;
  if (current_performance < params_.performance_threshold && horizon_days > 0) {
    // Eq. 3: sum over the horizon of the amortised daily retraining cost.
    b.total += b.retrain_daily * horizon_days;
  }
  return b;
}

}  // namespace ltefp::attacks
