#include "attacks/collect.hpp"

#include <memory>
#include <unordered_set>

#include "apps/background.hpp"
#include "apps/factory.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "lte/network.hpp"
#include "sniffer/sniffer.hpp"

namespace ltefp::attacks {
namespace {

constexpr lte::Imsi kVictimImsi = 310'410'000'000'001ULL;
constexpr lte::Imsi kBackgroundImsiBase = 310'410'000'100'000ULL;

}  // namespace

CollectedTrace collect_trace(apps::AppId app, const CollectConfig& config) {
  lte::Simulation sim(config.seed);
  // Each session is captured at a different time/place: perturb SNR and
  // cell load per session (no-op for the controlled lab profile).
  const lte::OperatorProfile profile =
      lte::perturb_for_session(lte::operator_profile(config.op), config.seed);
  const lte::CellId cell =
      sim.add_cell(profile, config.countermeasures, config.conceal_identity);
  apps::populate_background_ues(sim, cell, profile, kBackgroundImsiBase);

  const lte::UeId victim = sim.add_ue(kVictimImsi);
  sim.camp(victim, cell);

  sniffer::SnifferConfig sniffer_config;
  sniffer_config.miss_rate = profile.sniffer_miss_rate;
  sniffer_config.false_rate = profile.sniffer_false_rate;
  sniffer::Sniffer sniffer(sniffer_config, sim.rng().fork());
  // Targeted capture: the attacker knows the victim's TMSI (identity
  // mapping / OSINT) and tails only their RNTI bindings — also the paper's
  // IRB-mandated storage filter.
  sniffer.restrict_to_tmsi(sim.tmsi_of(victim));
  sim.add_observer(cell, sniffer);

  sim.run_for(kSessionWarmupMs);

  int effective_day = config.day;
  if (config.day_jitter_range > 0) {
    Rng day_rng(config.seed ^ 0xDA117ULL);
    effective_day += static_cast<int>(day_rng.index(static_cast<std::size_t>(config.day_jitter_range)));
  }
  apps::SessionContext ctx;
  ctx.day = effective_day;
  // Adaptive codecs / ABR react to live-network conditions; the lab cell
  // is controlled, so sessions there are repeatable.
  ctx.adapt_jitter = config.op == lte::Operator::kLab ? 0.0 : 0.13;
  std::unique_ptr<lte::TrafficSource> source =
      apps::make_app_source(app, config.duration, sim.rng().fork(), ctx);
  if (config.background_apps > 0) {
    source = std::make_unique<apps::CompositeSource>(
        std::move(source),
        std::make_unique<apps::BackgroundAppMix>(config.background_apps, sim.rng().fork()));
  }
  sim.set_traffic_source(victim, std::move(source));

  const TimeMs session_start = sim.now();
  sim.run_for(config.duration);
  // Drain tail: let buffered data flush so the trace covers the session.
  sim.set_traffic_source(victim, nullptr);
  sim.run_for(kSessionDrainMs);

  CollectedTrace out;
  out.app = app;
  out.session_start = session_start;
  out.trace = sniffer.trace_of_tmsi(sim.tmsi_of(victim));
  out.decoded_dcis = sniffer.decoded_count();
  out.missed_dcis = sniffer.missed_count();
  std::unordered_set<lte::Rnti> rntis;
  for (const auto& r : out.trace) rntis.insert(r.rnti);
  out.rnti_count = rntis.size();
  return out;
}

std::uint64_t session_seed(std::uint64_t campaign_seed, apps::AppId app, int session_index,
                           int day) {
  return derive_seed({campaign_seed, static_cast<std::uint64_t>(app),
                      static_cast<std::uint64_t>(session_index),
                      static_cast<std::uint64_t>(static_cast<std::int64_t>(day))});
}

std::vector<CollectedTrace> collect_traces(apps::AppId app, int count,
                                           const CollectConfig& config) {
  if (count <= 0) return {};
  return parallel_map(static_cast<std::size_t>(count), [&](std::size_t i) {
    CollectConfig c = config;
    c.seed = session_seed(config.seed, app, static_cast<int>(i), config.day);
    return collect_trace(app, c);
  });
}

}  // namespace ltefp::attacks
