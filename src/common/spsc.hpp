// Bounded single-producer/single-consumer ring queue — the hand-off
// between the capture side and a stream worker (src/stream).
//
// Design points, in the lock-free SPSC tradition (Lamport rings as used by
// DPDK/folly):
//   - capacity is a power of two: slot index is `count & mask`, no modulo
//   - head/tail are monotonic counters on their own cache lines, so the
//     producer and consumer never false-share
//   - each side caches the other's counter and refreshes it only when the
//     cached value says "full"/"empty" — the common case costs one relaxed
//     load and one release store
//   - push() blocks with backpressure: a full queue slows the producer
//     down instead of growing without bound (the stream daemon's
//     flow-control contract; unbounded buffering is lint-banned in
//     src/stream)
//
// Synchronisation is acquire/release on the two counters only; slot data
// is published by the release store, so the queue is ThreadSanitizer-clean
// by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace ltefp {

template <typename T>
class SpscQueue {
 public:
  /// Capacity must be a power of two >= 2 (enforced; the mask trick and the
  /// full/empty arithmetic both rely on it).
  explicit SpscQueue(std::size_t capacity) : slots_(capacity), mask_(capacity - 1) {
    if (capacity < 2 || (capacity & (capacity - 1)) != 0) {
      throw std::invalid_argument("SpscQueue: capacity must be a power of two >= 2");
    }
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer: false when the queue is full (no blocking).
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    note_depth(tail + 1 - head_cache_);
    return true;
  }

  /// Producer: blocking push with backpressure — spins briefly, then
  /// yields until the consumer frees a slot.
  void push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      for (int spin = 0; ; ++spin) {
        head_cache_ = head_.load(std::memory_order_acquire);
        if (tail - head_cache_ < capacity()) break;
        if (spin >= kSpinLimit) std::this_thread::yield();
      }
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    note_depth(tail + 1 - head_cache_);
  }

  /// Consumer: false when the queue is empty (no blocking).
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: blocking pop — spins briefly, then yields until the
  /// producer publishes an item.
  void pop(T& out) {
    for (int spin = 0; !try_pop(out); ++spin) {
      if (spin >= kSpinLimit) std::this_thread::yield();
    }
  }

  /// Instantaneous depth; exact only from the producer or consumer thread.
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) - head_.load(std::memory_order_acquire);
  }

  /// Deepest the queue has been, as observed at push time (may undercount
  /// by in-flight pops, never overcounts). Producer-owned: read it from the
  /// producer thread, or after the producer has quiesced.
  std::size_t high_water() const { return high_water_; }

 private:
  static constexpr int kSpinLimit = 64;

  void note_depth(std::size_t depth) {
    if (depth > high_water_) high_water_ = depth;
  }

  std::vector<T> slots_;
  std::size_t mask_;
  // Counters are monotonic; the slot index is `counter & mask_`. Each is on
  // its own cache line, as is each side's private cache of the other.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer position
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer position
  alignas(64) std::size_t head_cache_ = 0;        // producer-owned
  std::size_t high_water_ = 0;                    // producer-owned
  alignas(64) std::size_t tail_cache_ = 0;        // consumer-owned
};

}  // namespace ltefp
