#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ltefp {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto line = [&](char fill, char junction) {
    std::string s;
    s += junction;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      s.append(widths[c] + 2, fill);
      s += junction;
    }
    s += '\n';
    return s;
  };
  const auto row_text = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += ' ';
      s += cell;
      s.append(widths[c] - cell.size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::ostringstream out;
  if (!title.empty()) out << title << '\n';
  out << line('-', '+');
  out << row_text(header_);
  out << line('=', '+');
  for (const auto& row : rows_) {
    if (row.separator) {
      out << line('-', '+');
    } else {
      out << row_text(row.cells);
    }
  }
  out << line('-', '+');
  return out.str();
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace ltefp
