// Minimal CSV reading/writing for persisting traces and datasets (the paper
// releases its lab dataset; we support the same round-trip).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ltefp {

/// Writes rows of string cells with RFC-4180 quoting where needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream& out_;
};

/// Parses a whole CSV document (handles quoted cells, embedded commas,
/// quotes, and newlines). Throws std::runtime_error on malformed input.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

}  // namespace ltefp
