#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace ltefp {
namespace {

thread_local bool t_in_region = false;

/// One parallel region: chunks are claimed by atomic index, completion is
/// counted down, the first exception wins.
struct Job {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t total = 0;
  std::size_t chunk = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::mutex m;
  std::condition_variable done;
  std::exception_ptr error;  // guarded by m

  /// Claims and runs chunks until none remain. Safe from any thread.
  void work() {
    t_in_region = true;
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(total, begin + chunk);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> g(m);
        if (!error) error = std::current_exception();
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> g(m);
        done.notify_all();
      }
    }
    t_in_region = false;
  }
};

int env_thread_count() {
  const char* env = std::getenv("LTEFP_THREADS");
  if (env != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  int threads() {
    std::lock_guard<std::mutex> g(m_);
    return resolve_locked();
  }

  void set_threads(int n) {
    join_workers();
    std::lock_guard<std::mutex> g(m_);
    configured_ = n > 0 ? n : env_thread_count();
  }

  void run(std::size_t n, std::size_t chunk, const std::function<void(std::size_t, std::size_t)>& fn) {
    if (n == 0) return;
    if (chunk == 0) chunk = 1;
    int threads;
    {
      std::lock_guard<std::mutex> g(m_);
      threads = resolve_locked();
    }
    const std::size_t num_chunks = (n + chunk - 1) / chunk;
    // Serial execution: thread count 1, a nested region, or a single chunk.
    // Chunks run inline in ascending order — byte-for-byte the serial path.
    if (threads <= 1 || t_in_region || num_chunks == 1) {
      const bool outer = !t_in_region;
      t_in_region = true;
      try {
        for (std::size_t c = 0; c < num_chunks; ++c) {
          const std::size_t begin = c * chunk;
          fn(begin, std::min(n, begin + chunk));
        }
      } catch (...) {
        if (outer) t_in_region = false;
        throw;
      }
      if (outer) t_in_region = false;
      return;
    }

    // One region at a time: a second top-level caller queues here rather
    // than corrupting the current job's handoff.
    std::lock_guard<std::mutex> region(run_m_);

    auto job = std::make_shared<Job>();
    job->body = fn;
    job->total = n;
    job->chunk = chunk;
    job->num_chunks = num_chunks;
    job->remaining.store(num_chunks, std::memory_order_relaxed);

    {
      std::unique_lock<std::mutex> lk(m_);
      ensure_workers_locked(threads - 1);
      job_ = job;
      ++generation_;
      work_cv_.notify_all();
    }

    job->work();  // the caller participates

    {
      std::unique_lock<std::mutex> jl(job->m);
      job->done.wait(jl, [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
    }
    {
      std::lock_guard<std::mutex> g(m_);
      if (job_ == job) job_.reset();
    }
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> g(job->m);
      error = job->error;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Pool() = default;
  ~Pool() { join_workers(); }

  int resolve_locked() {
    if (configured_ == 0) configured_ = env_thread_count();
    return configured_;
  }

  void ensure_workers_locked(int wanted) {
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void join_workers() {
    std::vector<std::thread> workers;
    {
      std::lock_guard<std::mutex> g(m_);
      stop_ = true;
      work_cv_.notify_all();
      workers.swap(workers_);
    }
    for (auto& w : workers) w.join();
    std::lock_guard<std::mutex> g(m_);
    stop_ = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(m_);
        work_cv_.wait(lk, [&] { return stop_ || (job_ && generation_ != seen); });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      if (job) job->work();
    }
  }

  std::mutex run_m_;  // serialises top-level parallel regions
  std::mutex m_;
  std::condition_variable work_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;  // guarded by m_
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int configured_ = 0;  // 0 = not yet resolved
};

}  // namespace

int thread_count() { return Pool::instance().threads(); }

void set_thread_count(int n) { Pool::instance().set_threads(n); }

bool in_parallel_region() { return t_in_region; }

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  Pool::instance().run(n, chunk, fn);
}

}  // namespace ltefp
