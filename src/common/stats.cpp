#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ltefp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;  // sums of squares; 0 means constant
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ltefp
