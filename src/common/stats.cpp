#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ltefp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::linear(double lo, double hi, std::size_t buckets) {
  if (!(lo < hi) || buckets == 0) throw std::invalid_argument("Histogram::linear: bad range");
  std::vector<double> bounds(buckets);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    bounds[i] = lo + width * static_cast<double>(i + 1);
  }
  return Histogram(std::move(bounds));
}

Histogram Histogram::exponential(double first, double factor, std::size_t buckets) {
  if (!(first > 0.0) || !(factor > 1.0) || buckets == 0) {
    throw std::invalid_argument("Histogram::exponential: bad parameters");
  }
  std::vector<double> bounds(buckets);
  double b = first;
  for (std::size_t i = 0; i < buckets; ++i) {
    bounds[i] = b;
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  // First bound >= x selects the bucket (upper bounds are inclusive);
  // beyond the last bound falls into the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket layouts differ");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

double Histogram::quantile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(count_))));
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return bounds_[i];
  }
  return max_;  // rank fell into the overflow bucket; max is exact
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;  // sums of squares; 0 means constant
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ltefp
