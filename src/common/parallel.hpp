// Deterministic thread-pool parallelism for the hot paths (collection,
// forest training, blind decode, DTW).
//
// The contract every caller relies on: results are BIT-IDENTICAL at any
// thread count. The primitives here make that natural — work is split into
// chunks addressed by index, each chunk writes only its own pre-sized
// output slot, and reductions happen on the calling thread in slot order.
// Nothing observable may depend on which worker ran a chunk or when.
//
// The pool is global and lazily started. Thread count comes from
// set_thread_count(), else the LTEFP_THREADS env var, else the hardware.
// A count of 1 bypasses the pool entirely: chunks run inline, in order, on
// the calling thread — exact serial execution, not an emulation of it.
// Nested parallel regions (a parallel_for inside a worker) also run inline
// rather than deadlocking the pool.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace ltefp {

/// Resolved worker count the next parallel region will use (>= 1).
int thread_count();

/// Sets the pool size. n <= 0 restores the default (LTEFP_THREADS env var,
/// else hardware concurrency). Joins any running workers; must not be
/// called from inside a parallel region.
void set_thread_count(int n);

/// True while the calling thread is executing inside a parallel region
/// (worker or participating caller). Exposed for bench reporting.
bool in_parallel_region();

/// Runs fn(begin, end) over every chunk [begin, end) of [0, n), chunk size
/// `chunk` (0 = auto). Chunks execute concurrently; the call returns after
/// all complete. The first exception thrown by any chunk is rethrown on
/// the calling thread. fn must only write state owned by its index range.
void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn);

/// Order-preserving map: out[i] = fn(i) for i in [0, n), computed
/// concurrently but returned in index order. R must be default-
/// constructible and move-assignable.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t chunk = 1)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<R> out(n);
  parallel_for(n, chunk, [&out, &fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace ltefp
