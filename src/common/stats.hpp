// Small statistics toolkit shared by feature extraction, the ML library,
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ltefp {

/// Streaming mean/variance accumulator (Welford). Numerically stable and
/// usable single-pass over trace streams.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram with conservative quantile extraction — the
/// latency instrument shared by the stream daemon and the table benches.
/// Buckets partition the line as (-inf, b0], (b0, b1], ..., (b_{n-1}, +inf)
/// where the upper bounds b_i are fixed at construction; add() is O(log n)
/// and allocation-free, so it can sit on a per-verdict hot path.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing. An overflow
  /// bucket above the last bound is always present.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `buckets` equal-width buckets spanning [lo, hi): bounds at lo + k*w.
  static Histogram linear(double lo, double hi, std::size_t buckets);
  /// Geometric bounds first, first*factor, first*factor^2, ... — the usual
  /// shape for latency, where tails matter at every scale.
  static Histogram exponential(double first, double factor, std::size_t buckets);

  void add(double x);
  /// Accumulates another histogram with the identical bucket layout
  /// (throws otherwise). Commutative, so merging per-worker histograms in
  /// any order yields the same totals.
  void merge(const Histogram& other);

  std::size_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }  // exact, not bucketed
  double max() const { return count_ ? max_ : 0.0; }

  /// Conservative quantile, p in [0, 100]: the upper bound of the bucket
  /// containing the sample of rank ceil(p/100 * count) — i.e. a value
  /// guaranteed >= the true quantile (the overflow bucket reports the exact
  /// max). Returns 0 for an empty histogram.
  double quantile(double p) const;
  double p50() const { return quantile(50.0); }
  double p95() const { return quantile(95.0); }
  double p99() const { return quantile(99.0); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; counts().back() is the overflow bucket.
  const std::vector<std::size_t>& counts() const { return counts_; }

 private:
  std::vector<double> bounds_;        // ascending upper bounds
  std::vector<std::size_t> counts_;   // bounds_.size() + 1 (overflow last)
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Returns 0 for empty input.
double percentile(std::vector<double> xs, double p);

/// Pearson correlation coefficient; 0 if either side has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace ltefp
