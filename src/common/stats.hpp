// Small statistics toolkit shared by feature extraction, the ML library,
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ltefp {

/// Streaming mean/variance accumulator (Welford). Numerically stable and
/// usable single-pass over trace streams.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Returns 0 for empty input.
double percentile(std::vector<double> xs, double p);

/// Pearson correlation coefficient; 0 if either side has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace ltefp
