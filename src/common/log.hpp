// Tiny leveled logger. Disabled below `warn` by default so tests and
// benchmarks stay quiet; examples crank it up for narration.
#pragma once

#include <sstream>
#include <string>

namespace ltefp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr as "[LEVEL] message" if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_message(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) { detail::log_fmt(LogLevel::kDebug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log_fmt(LogLevel::kInfo, args...); }
template <typename... Args>
void log_warn(const Args&... args) { detail::log_fmt(LogLevel::kWarn, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log_fmt(LogLevel::kError, args...); }

}  // namespace ltefp
