// Deterministic pseudo-random number generation for the simulator.
//
// Everything in this project that is stochastic draws from an Rng seeded
// explicitly by the caller, so experiments (and tests) are reproducible
// bit-for-bit across runs and platforms. The generator is xoshiro256**,
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace ltefp {

/// One stateless SplitMix64 step: adds the golden gamma to x and returns
/// the finalised mix. The building block for hashing structured task
/// coordinates into seeds.
std::uint64_t splitmix64_mix(std::uint64_t x);

/// Hash-combines the parts into one seed by chaining SplitMix64 steps.
/// Used to derive per-task RNG streams as a pure function of coordinates
/// like (config seed, app, session index, day) — no shared mutable RNG
/// state, so parallel task order cannot reshuffle anyone's stream.
std::uint64_t derive_seed(std::initializer_list<std::uint64_t> parts);

/// xoshiro256** PRNG with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> facilities, but the member helpers below avoid libstdc++
/// distribution differences and keep results stable.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Derives an independent child generator; used to give each simulated
  /// entity (UE, app, cell) its own stream so adding one entity does not
  /// perturb the draws seen by the others.
  Rng fork();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal via Box-Muller (cached pair member not used: stateless).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint32_t poisson(double mean);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniformly chosen index into a container of the given size. Requires size > 0.
  std::size_t index(std::size_t size);

  /// Uniformly chosen element.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[index(i + 1)]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace ltefp
