#include "common/csv.hpp"

#include <ostream>
#include <stdexcept>

namespace ltefp {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& cell) {
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  const auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    cell_started = false;
  };
  const auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += ch;
      }
      continue;
    }
    switch (ch) {
      case '"':
        if (!cell.empty()) throw std::runtime_error("csv: quote inside unquoted cell");
        in_quotes = true;
        cell_started = true;
        break;
      case ',':
        end_cell();
        cell_started = true;  // next cell exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        cell += ch;
        cell_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted cell");
  if (cell_started || !cell.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace ltefp
