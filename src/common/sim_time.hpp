// Simulated time. The LTE MAC operates on 1 ms subframes, so the whole
// simulator is clocked in integer milliseconds since experiment start.
#pragma once

#include <cstdint>
#include <string>

namespace ltefp {

/// Milliseconds since the start of a simulation run.
using TimeMs = std::int64_t;

constexpr TimeMs kMsPerSecond = 1000;
constexpr TimeMs kMsPerMinute = 60 * kMsPerSecond;
constexpr TimeMs kMsPerHour = 60 * kMsPerMinute;

constexpr TimeMs seconds(double s) { return static_cast<TimeMs>(s * kMsPerSecond); }
constexpr TimeMs minutes(double m) { return static_cast<TimeMs>(m * kMsPerMinute); }

/// Renders a time as "H:MM:SS" (as used by the paper's Table V columns).
std::string format_hms(TimeMs t);

}  // namespace ltefp
