#include "common/sim_time.hpp"

#include <cstdio>

namespace ltefp {

std::string format_hms(TimeMs t) {
  if (t < 0) t = 0;
  const long long total_s = t / kMsPerSecond;
  const long long h = total_s / 3600;
  const long long m = (total_s / 60) % 60;
  const long long s = total_s % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld", h, m, s);
  return buf;
}

}  // namespace ltefp
