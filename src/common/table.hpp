// Console table rendering used by the bench harnesses to print the paper's
// tables (III-VIII) with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace ltefp {

/// A simple text table: set a header, append rows, render aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with a title banner, column alignment, and borders.
  std::string render(const std::string& title = "") const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given number of decimals (default 3, like the
/// paper's metric tables).
std::string fmt(double value, int decimals = 3);

/// Formats a fraction as a percentage string, e.g. 0.8535 -> "85.35%".
std::string fmt_pct(double fraction, int decimals = 2);

}  // namespace ltefp
