#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace ltefp {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t splitmix64_mix(std::uint64_t x) {
  std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::initializer_list<std::uint64_t> parts) {
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t part : parts) seed = splitmix64_mix(seed ^ part);
  return seed;
}

Rng::Rng(std::uint64_t seed) {
  // Sequential SplitMix64 stream, exactly as before splitmix64_mix was
  // factored out: state_[i] = mix(seed + (i+1) * gamma).
  for (auto& s : state_) {
    s = splitmix64_mix(seed);
    seed += 0x9e3779b97f4a7c15ULL;
  }
  // Avoid the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng((*this)()); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit span
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform(double lo, double hi) {
  // 53 random mantissa bits -> [0,1).
  const double u = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint32_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0u : static_cast<std::uint32_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  std::uint32_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= uniform();
  }
  return n;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::index(std::size_t size) {
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace ltefp
