// Trace records: the attacker's entire information product.
//
// Each record is one decoded DCI — (timestamp, RNTI, direction, transport
// block size) — which is exactly the metadata tuple the paper extracts with
// its customised srsLTE pdsch_ue module. Everything downstream (features,
// classifiers, DTW) consumes only these.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::sniffer {

struct TraceRecord {
  TimeMs time = 0;
  lte::Rnti rnti = 0;
  lte::Direction direction = lte::Direction::kDownlink;
  int tb_bytes = 0;
  lte::CellId cell = 0;

  bool operator==(const TraceRecord&) const = default;
};

using Trace = std::vector<TraceRecord>;

/// Keeps only records matching the link filter (paper Tables III/IV evaluate
/// Down+Up, Down-only and Up-only variants).
Trace filter_direction(const Trace& trace, lte::LinkFilter filter);

/// Keeps records with time in [begin, end).
Trace slice_time(const Trace& trace, TimeMs begin, TimeMs end);

/// Total bytes across the trace.
long long total_bytes(const Trace& trace);

/// Frame counts per fixed-size time bin starting at `origin` — the time
/// series the correlation attack feeds into DTW ("graphs with respect to
/// the number of frames", T_w binning).
std::vector<double> frames_per_bin(const Trace& trace, TimeMs origin, TimeMs bin_ms,
                                   std::size_t bin_count);

/// Bytes per fixed-size time bin (alternative correlation series).
std::vector<double> bytes_per_bin(const Trace& trace, TimeMs origin, TimeMs bin_ms,
                                  std::size_t bin_count);

/// CSV round-trip, mirroring the paper's released dataset format:
/// header "time_ms,rnti,direction,tb_bytes,cell".
void write_csv(std::ostream& out, const Trace& trace);
Trace read_csv(const std::string& text);

}  // namespace ltefp::sniffer
