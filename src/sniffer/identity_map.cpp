#include "sniffer/identity_map.hpp"

#include <algorithm>

namespace ltefp::sniffer {

void IdentityMapper::on_rar(const lte::RandomAccessResponse& rar) {
  // A RAR assigning an RNTI implicitly ends any stale binding for the same
  // value (the eNB must have recycled it).
  close_open_binding(rar.assigned_rnti, rar.time);
}

void IdentityMapper::on_rrc_request(const lte::RrcConnectionRequest& request) {
  pending_requests_[request.rnti] = request;
}

void IdentityMapper::on_rrc_setup(const lte::RrcConnectionSetup& setup) {
  const auto it = pending_requests_.find(setup.rnti);
  if (it == pending_requests_.end()) return;
  const lte::RrcConnectionRequest& request = it->second;
  // Contention resolution: Msg4 echoes the winner's identity. If they do
  // not match, another UE won the RACH contention — discard.
  if (request.s_tmsi != setup.contention_resolution_identity) {
    pending_requests_.erase(it);
    return;
  }
  close_open_binding(setup.rnti, setup.time);
  RntiBinding binding;
  binding.rnti = setup.rnti;
  binding.tmsi = request.s_tmsi;
  binding.cell = setup.cell;
  binding.valid_from = setup.time;
  open_[setup.rnti] = bindings_.size();
  bindings_.push_back(binding);
  ++confirmed_;
  pending_requests_.erase(it);
}

void IdentityMapper::on_rrc_release(const lte::RrcConnectionRelease& release) {
  close_open_binding(release.rnti, release.time);
}

void IdentityMapper::add_manual_binding(lte::Rnti rnti, lte::Tmsi tmsi, lte::CellId cell,
                                        TimeMs from) {
  close_open_binding(rnti, from);
  RntiBinding binding;
  binding.rnti = rnti;
  binding.tmsi = tmsi;
  binding.cell = cell;
  binding.valid_from = from;
  open_[rnti] = bindings_.size();
  bindings_.push_back(binding);
}

void IdentityMapper::close_open_binding(lte::Rnti rnti, TimeMs t) {
  const auto it = open_.find(rnti);
  if (it == open_.end()) return;
  bindings_[it->second].valid_to = t;
  open_.erase(it);
}

std::optional<lte::Tmsi> IdentityMapper::tmsi_of(lte::Rnti rnti, TimeMs t) const {
  // Scan this RNTI's bindings; windows never overlap for one value.
  for (const auto& b : bindings_) {
    if (b.rnti != rnti) continue;
    if (t < b.valid_from) continue;
    if (b.valid_to >= 0 && t >= b.valid_to) continue;
    return b.tmsi;
  }
  return std::nullopt;
}

std::vector<RntiBinding> IdentityMapper::bindings_of(lte::Tmsi tmsi) const {
  std::vector<RntiBinding> out;
  for (const auto& b : bindings_) {
    if (b.tmsi == tmsi) out.push_back(b);
  }
  std::sort(out.begin(), out.end(),
            [](const RntiBinding& a, const RntiBinding& b) { return a.valid_from < b.valid_from; });
  return out;
}

}  // namespace ltefp::sniffer
