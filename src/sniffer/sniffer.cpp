#include "sniffer/sniffer.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "lte/crc.hpp"

namespace ltefp::sniffer {

BlindDecodeResult blind_decode_dci(const lte::EncodedDci& enc, TimeMs time, lte::CellId cell) {
  BlindDecodeResult out;
  // Blind decode: parse the plain-text fields, then unmask the CRC to
  // recover the RNTI that scrambled it.
  const auto fields = lte::decode_dci_fields(enc);
  if (!fields) return out;
  const lte::Rnti rnti = lte::recover_rnti(enc.payload, enc.masked_crc);
  if (rnti == lte::kPagingRnti) {
    out.kind = BlindDecodeResult::Kind::kPaging;
    return out;
  }
  if (rnti < lte::kMinCRnti || rnti > lte::kMaxCRnti) return out;
  out.kind = BlindDecodeResult::Kind::kRecord;
  out.record = TraceRecord{time, rnti, fields->direction, fields->tb_bytes(), cell};
  return out;
}

Trace blind_decode(std::span<const lte::PdcchSubframe> subframes) {
  // Each subframe decodes into its own slot; the concatenation below runs
  // on the calling thread in subframe order.
  const auto per_subframe = parallel_map(
      subframes.size(),
      [&](std::size_t i) {
        const lte::PdcchSubframe& sf = subframes[i];
        Trace records;
        records.reserve(sf.dcis.size());
        for (const auto& enc : sf.dcis) {
          const BlindDecodeResult r = blind_decode_dci(enc, sf.time, sf.cell);
          if (r.kind == BlindDecodeResult::Kind::kRecord) records.push_back(r.record);
        }
        return records;
      },
      /*chunk=*/32);
  std::size_t total = 0;
  for (const auto& part : per_subframe) total += part.size();
  Trace out;
  out.reserve(total);
  for (const auto& part : per_subframe) out.insert(out.end(), part.begin(), part.end());
  return out;
}

Sniffer::Sniffer(SnifferConfig config, Rng rng) : config_(config), rng_(rng) {}

void Sniffer::on_subframe(const lte::PdcchSubframe& subframe) {
  for (const auto& enc : subframe.dcis) {
    if (config_.miss_rate > 0.0 && rng_.bernoulli(config_.miss_rate)) {
      ++missed_;
      continue;
    }
    const BlindDecodeResult decoded = blind_decode_dci(enc, subframe.time, subframe.cell);
    if (decoded.kind == BlindDecodeResult::Kind::kPaging) {
      ++paging_;
      continue;  // paging indications are counted, not traced
    }
    if (decoded.kind != BlindDecodeResult::Kind::kRecord) continue;
    const lte::Rnti rnti = decoded.record.rnti;
    last_seen_[rnti] = subframe.time;
    if (!rnti_allowed(rnti)) continue;
    records_.push_back(decoded.record);
    if (record_hook_) record_hook_(decoded.record);
  }

  // Spurious detection surviving the activity filter (false decode). Only
  // relevant when recording unrestricted (a targeted filter rejects RNTIs
  // outside the victim's bindings anyway).
  if (!restricted() && config_.false_rate > 0.0 && rng_.bernoulli(config_.false_rate)) {
    TraceRecord bogus;
    bogus.time = subframe.time;
    bogus.rnti = static_cast<lte::Rnti>(rng_.uniform_int(lte::kMinCRnti, lte::kMaxCRnti));
    bogus.direction = rng_.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink;
    bogus.tb_bytes = static_cast<int>(rng_.uniform_int(16, 4000));
    bogus.cell = subframe.cell;
    records_.push_back(bogus);
    if (record_hook_) record_hook_(bogus);
  }
}

void Sniffer::on_rach(const lte::RachPreamble& /*preamble*/) { ++rach_; }

void Sniffer::on_rar(const lte::RandomAccessResponse& rar) {
  identity_map_.on_rar(rar);
  last_seen_[rar.assigned_rnti] = rar.time;
}

void Sniffer::on_rrc_request(const lte::RrcConnectionRequest& request) {
  identity_map_.on_rrc_request(request);
}

void Sniffer::on_rrc_setup(const lte::RrcConnectionSetup& setup) {
  identity_map_.on_rrc_setup(setup);
  if (!tmsi_allowlist_.empty() &&
      tmsi_allowlist_.contains(setup.contention_resolution_identity) &&
      identity_map_.tmsi_of(setup.rnti, setup.time).has_value()) {
    allowed_rntis_.insert(setup.rnti);
  }
}

void Sniffer::on_rrc_release(const lte::RrcConnectionRelease& release) {
  identity_map_.on_rrc_release(release);
  allowed_rntis_.erase(release.rnti);
}

void Sniffer::restrict_to_tmsi(lte::Tmsi tmsi) {
  tmsi_allowlist_.insert(tmsi);
  // Pick up bindings that are already live.
  for (const auto& b : identity_map_.bindings()) {
    if (b.tmsi == tmsi && b.valid_to < 0) allowed_rntis_.insert(b.rnti);
  }
}

void Sniffer::add_manual_binding(lte::Rnti rnti, lte::Tmsi tmsi, lte::CellId cell,
                                 TimeMs from) {
  identity_map_.add_manual_binding(rnti, tmsi, cell, from);
  if (tmsi_allowlist_.contains(tmsi)) allowed_rntis_.insert(rnti);
}

bool Sniffer::rnti_allowed(lte::Rnti rnti) const {
  return tmsi_allowlist_.empty() || allowed_rntis_.contains(rnti);
}

Trace Sniffer::trace_of_rnti(lte::Rnti rnti) const {
  Trace out;
  for (const auto& r : records_) {
    if (r.rnti == rnti) out.push_back(r);
  }
  return out;
}

Trace Sniffer::trace_of_tmsi(lte::Tmsi tmsi) const {
  Trace out;
  const auto bindings = identity_map_.bindings_of(tmsi);
  if (bindings.empty()) return out;
  for (const auto& r : records_) {
    for (const auto& b : bindings) {
      if (r.rnti != b.rnti) continue;
      if (r.time < b.valid_from) continue;
      if (b.valid_to >= 0 && r.time >= b.valid_to) continue;
      out.push_back(r);
      break;
    }
  }
  return out;
}

std::vector<lte::Rnti> Sniffer::active_rntis(TimeMs now) const {
  std::vector<lte::Rnti> out;
  out.reserve(last_seen_.size());
  // lint:allow(ordered-iteration) — order-independent filter; sorted below
  for (const auto& [rnti, seen] : last_seen_) {
    if (now - seen <= config_.activity_horizon) out.push_back(rnti);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ltefp::sniffer
