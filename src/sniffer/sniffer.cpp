#include "sniffer/sniffer.hpp"

#include "lte/crc.hpp"

namespace ltefp::sniffer {

Sniffer::Sniffer(SnifferConfig config, Rng rng) : config_(config), rng_(rng) {}

void Sniffer::on_subframe(const lte::PdcchSubframe& subframe) {
  for (const auto& enc : subframe.dcis) {
    if (config_.miss_rate > 0.0 && rng_.bernoulli(config_.miss_rate)) {
      ++missed_;
      continue;
    }
    // Blind decode: parse the plain-text fields, then unmask the CRC to
    // recover the RNTI that scrambled it.
    const auto fields = lte::decode_dci_fields(enc);
    if (!fields) continue;
    const lte::Rnti rnti = lte::recover_rnti(enc.payload, enc.masked_crc);
    if (rnti == lte::kPagingRnti) {
      ++paging_;
      continue;  // paging indications are counted, not traced
    }
    if (rnti < lte::kMinCRnti || rnti > lte::kMaxCRnti) continue;
    last_seen_[rnti] = subframe.time;
    if (!rnti_allowed(rnti)) continue;
    records_.push_back(TraceRecord{subframe.time, rnti, fields->direction,
                                   fields->tb_bytes(), subframe.cell});
  }

  // Spurious detection surviving the activity filter (false decode). Only
  // relevant when recording unrestricted (a targeted filter rejects RNTIs
  // outside the victim's bindings anyway).
  if (!restricted() && config_.false_rate > 0.0 && rng_.bernoulli(config_.false_rate)) {
    TraceRecord bogus;
    bogus.time = subframe.time;
    bogus.rnti = static_cast<lte::Rnti>(rng_.uniform_int(lte::kMinCRnti, lte::kMaxCRnti));
    bogus.direction = rng_.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink;
    bogus.tb_bytes = static_cast<int>(rng_.uniform_int(16, 4000));
    bogus.cell = subframe.cell;
    records_.push_back(bogus);
  }
}

void Sniffer::on_rach(const lte::RachPreamble& /*preamble*/) { ++rach_; }

void Sniffer::on_rar(const lte::RandomAccessResponse& rar) {
  identity_map_.on_rar(rar);
  last_seen_[rar.assigned_rnti] = rar.time;
}

void Sniffer::on_rrc_request(const lte::RrcConnectionRequest& request) {
  identity_map_.on_rrc_request(request);
}

void Sniffer::on_rrc_setup(const lte::RrcConnectionSetup& setup) {
  identity_map_.on_rrc_setup(setup);
  if (!tmsi_allowlist_.empty() &&
      tmsi_allowlist_.contains(setup.contention_resolution_identity) &&
      identity_map_.tmsi_of(setup.rnti, setup.time).has_value()) {
    allowed_rntis_.insert(setup.rnti);
  }
}

void Sniffer::on_rrc_release(const lte::RrcConnectionRelease& release) {
  identity_map_.on_rrc_release(release);
  allowed_rntis_.erase(release.rnti);
}

void Sniffer::restrict_to_tmsi(lte::Tmsi tmsi) {
  tmsi_allowlist_.insert(tmsi);
  // Pick up bindings that are already live.
  for (const auto& b : identity_map_.bindings()) {
    if (b.tmsi == tmsi && b.valid_to < 0) allowed_rntis_.insert(b.rnti);
  }
}

void Sniffer::add_manual_binding(lte::Rnti rnti, lte::Tmsi tmsi, lte::CellId cell,
                                 TimeMs from) {
  identity_map_.add_manual_binding(rnti, tmsi, cell, from);
  if (tmsi_allowlist_.contains(tmsi)) allowed_rntis_.insert(rnti);
}

bool Sniffer::rnti_allowed(lte::Rnti rnti) const {
  return tmsi_allowlist_.empty() || allowed_rntis_.contains(rnti);
}

Trace Sniffer::trace_of_rnti(lte::Rnti rnti) const {
  Trace out;
  for (const auto& r : records_) {
    if (r.rnti == rnti) out.push_back(r);
  }
  return out;
}

Trace Sniffer::trace_of_tmsi(lte::Tmsi tmsi) const {
  Trace out;
  const auto bindings = identity_map_.bindings_of(tmsi);
  if (bindings.empty()) return out;
  for (const auto& r : records_) {
    for (const auto& b : bindings) {
      if (r.rnti != b.rnti) continue;
      if (r.time < b.valid_from) continue;
      if (b.valid_to >= 0 && r.time >= b.valid_to) continue;
      out.push_back(r);
      break;
    }
  }
  return out;
}

std::vector<lte::Rnti> Sniffer::active_rntis(TimeMs now) const {
  std::vector<lte::Rnti> out;
  for (const auto& [rnti, seen] : last_seen_) {
    if (now - seen <= config_.activity_horizon) out.push_back(rnti);
  }
  return out;
}

}  // namespace ltefp::sniffer
