// Passive RNTI <-> TMSI identity mapping.
//
// Implements the paper's Target Identity Mapping step (Section III-E),
// which follows Rupprecht et al.'s passive technique: the
// RRCConnectionRequest broadcasts the UE's S-TMSI in plain text and the
// RRCConnectionSetup echoes it as the contention resolution identity,
// CRC-addressed to the just-assigned C-RNTI. Observing the exchange binds
// RNTI -> TMSI. Because RNTIs refresh on every idle->connected transition,
// one TMSI accumulates a *history* of bindings, each valid over a time
// window — this is what lets the attacker stitch a victim's traffic
// together across RNTI changes (and, with one mapper per cell, across
// handovers).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"
#include "lte/rrc.hpp"
#include "lte/types.hpp"

namespace ltefp::sniffer {

/// One RNTI->TMSI binding with its validity window.
struct RntiBinding {
  lte::Rnti rnti = 0;
  lte::Tmsi tmsi = 0;
  lte::CellId cell = 0;
  TimeMs valid_from = 0;
  TimeMs valid_to = -1;  // -1 = still open
};

class IdentityMapper {
 public:
  /// Feed the RACH/RRC exchange as observed on the air.
  void on_rar(const lte::RandomAccessResponse& rar);
  void on_rrc_request(const lte::RrcConnectionRequest& request);
  void on_rrc_setup(const lte::RrcConnectionSetup& setup);
  void on_rrc_release(const lte::RrcConnectionRelease& release);

  /// TMSI currently bound to `rnti` at time `t`, if any.
  std::optional<lte::Tmsi> tmsi_of(lte::Rnti rnti, TimeMs t) const;

  /// Full binding history of one subscriber, ordered by valid_from.
  std::vector<RntiBinding> bindings_of(lte::Tmsi tmsi) const;

  /// All bindings observed (for diagnostics / dataset export).
  const std::vector<RntiBinding>& bindings() const { return bindings_; }

  /// Number of completed request+setup confirmations.
  std::size_t confirmed_count() const { return confirmed_; }

  /// Registers a binding learned out-of-band. Handover arrivals use
  /// contention-free RACH (no Msg3, hence no S-TMSI on the air), so purely
  /// passive mapping cannot rebind them; the paper covers this gap with an
  /// IMSI catcher / identity-mapping assist (Section III-C), which this
  /// entry point models.
  void add_manual_binding(lte::Rnti rnti, lte::Tmsi tmsi, lte::CellId cell, TimeMs from);

 private:
  void close_open_binding(lte::Rnti rnti, TimeMs t);

  std::vector<RntiBinding> bindings_;
  // rnti -> index of its open binding in bindings_ (at most one open per rnti)
  std::unordered_map<lte::Rnti, std::size_t> open_;
  // rnti -> pending S-TMSI seen in an RRCConnectionRequest, awaiting Msg4
  std::unordered_map<lte::Rnti, lte::RrcConnectionRequest> pending_requests_;
  std::size_t confirmed_ = 0;
};

}  // namespace ltefp::sniffer
