#include "sniffer/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <ostream>
#include <stdexcept>

#include "common/csv.hpp"

namespace ltefp::sniffer {

Trace filter_direction(const Trace& trace, lte::LinkFilter filter) {
  if (filter == lte::LinkFilter::kBoth) return trace;
  Trace out;
  out.reserve(trace.size());
  for (const auto& r : trace) {
    if (lte::direction_passes(filter, r.direction)) out.push_back(r);
  }
  return out;
}

Trace slice_time(const Trace& trace, TimeMs begin, TimeMs end) {
  Trace out;
  for (const auto& r : trace) {
    if (r.time >= begin && r.time < end) out.push_back(r);
  }
  return out;
}

long long total_bytes(const Trace& trace) {
  long long sum = 0;
  for (const auto& r : trace) sum += r.tb_bytes;
  return sum;
}

namespace {

template <typename Value>
std::vector<double> per_bin(const Trace& trace, TimeMs origin, TimeMs bin_ms,
                            std::size_t bin_count, Value value) {
  std::vector<double> bins(bin_count, 0.0);
  if (bin_ms <= 0) throw std::invalid_argument("per_bin: bin_ms must be positive");
  for (const auto& r : trace) {
    if (r.time < origin) continue;
    const auto idx = static_cast<std::size_t>((r.time - origin) / bin_ms);
    if (idx >= bin_count) continue;
    bins[idx] += value(r);
  }
  return bins;
}

}  // namespace

std::vector<double> frames_per_bin(const Trace& trace, TimeMs origin, TimeMs bin_ms,
                                   std::size_t bin_count) {
  return per_bin(trace, origin, bin_ms, bin_count, [](const TraceRecord&) { return 1.0; });
}

std::vector<double> bytes_per_bin(const Trace& trace, TimeMs origin, TimeMs bin_ms,
                                  std::size_t bin_count) {
  return per_bin(trace, origin, bin_ms, bin_count,
                 [](const TraceRecord& r) { return static_cast<double>(r.tb_bytes); });
}

void write_csv(std::ostream& out, const Trace& trace) {
  CsvWriter writer(out);
  writer.write_row({"time_ms", "rnti", "direction", "tb_bytes", "cell"});
  for (const auto& r : trace) {
    writer.write_row({std::to_string(r.time), std::to_string(r.rnti),
                      r.direction == lte::Direction::kDownlink ? "DL" : "UL",
                      std::to_string(r.tb_bytes), std::to_string(r.cell)});
  }
}

namespace {

/// Strict integer field parse: the whole cell must be a number in
/// [lo, hi]. std::stoll-style prefix parsing ("12abc" -> 12) silently
/// turned malformed captures into garbage records; reject instead.
long long parse_field(const std::string& cell, const char* field, std::size_t row, long long lo,
                      long long hi) {
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw std::runtime_error("trace csv row " + std::to_string(row) + ": field '" + field +
                             "' is not an integer: '" + cell + "'");
  }
  if (value < lo || value > hi) {
    throw std::runtime_error("trace csv row " + std::to_string(row) + ": field '" + field +
                             "' value " + cell + " out of range [" + std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
  }
  return value;
}

}  // namespace

Trace read_csv(const std::string& text) {
  const auto rows = parse_csv(text);
  if (rows.empty()) return {};
  const std::vector<std::string> expected = {"time_ms", "rnti", "direction", "tb_bytes", "cell"};
  if (rows[0] != expected) {
    throw std::runtime_error(
        "trace csv: unexpected header (want \"time_ms,rnti,direction,tb_bytes,cell\")");
  }
  Trace trace;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 5) {
      throw std::runtime_error("trace csv row " + std::to_string(i) + ": expected 5 columns, got " +
                               std::to_string(row.size()));
    }
    TraceRecord r;
    r.time = parse_field(row[0], "time_ms", i, INT64_MIN, INT64_MAX);
    r.rnti = static_cast<lte::Rnti>(parse_field(row[1], "rnti", i, 0, 0xFFFF));
    if (row[2] == "DL") {
      r.direction = lte::Direction::kDownlink;
    } else if (row[2] == "UL") {
      r.direction = lte::Direction::kUplink;
    } else {
      throw std::runtime_error("trace csv row " + std::to_string(i) + ": bad direction '" +
                               row[2] + "' (want DL or UL)");
    }
    r.tb_bytes = static_cast<int>(parse_field(row[3], "tb_bytes", i, INT32_MIN, INT32_MAX));
    r.cell = static_cast<lte::CellId>(parse_field(row[4], "cell", i, 0, 0xFFFF));
    trace.push_back(r);
  }
  return trace;
}

}  // namespace ltefp::sniffer
