// Passive PDCCH sniffer (the paper's data-acquisition component).
//
// Mirrors what OWL / FALCON / the customised srsLTE pdsch_ue do on real
// hardware: receive every PDCCH subframe, blind-decode DCIs by recomputing
// the CRC and unmasking the RNTI, maintain the set of plausibly-active
// RNTIs to reject CRC-aliasing false positives, and log
// (time, RNTI, direction, TBS) trace records. Radio imperfections are
// injected per OperatorProfile: a miss rate (decode failures) and a false
// rate (bogus detections that slip past filtering).
//
// The sniffer is strictly passive: it only consumes lte::PdcchObserver
// callbacks — the same information any SDR within the cell's coverage
// receives — and never touches simulator-internal ground truth.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "lte/observer.hpp"
#include "sniffer/identity_map.hpp"
#include "sniffer/trace.hpp"

namespace ltefp::sniffer {

/// Outcome of blind-decoding one DCI candidate by CRC re-masking.
struct BlindDecodeResult {
  enum class Kind {
    kRecord,   // a C-RNTI data grant: `record` is valid
    kPaging,   // P-RNTI indication (counted, never traced)
    kInvalid,  // malformed fields or RNTI outside the C-RNTI space
  };
  Kind kind = Kind::kInvalid;
  TraceRecord record;
};

/// Blind-decodes one encoded DCI: parses the plain-text fields and unmasks
/// the CRC to recover the scrambling RNTI. Pure — the stateless core both
/// the live Sniffer and the offline batch decoder share.
BlindDecodeResult blind_decode_dci(const lte::EncodedDci& enc, TimeMs time, lte::CellId cell);

/// Offline batch blind decode of captured PDCCH subframes — the attacker's
/// post-processing path when raw captures are decoded after the fact
/// rather than live. Lossless (no radio-imperfection model). The CRC
/// re-masking search runs concurrently across subframe batches on the
/// global pool; records come back in (subframe, DCI) capture order, bit-
/// identical at any thread count.
Trace blind_decode(std::span<const lte::PdcchSubframe> subframes);

struct SnifferConfig {
  /// Probability of failing to decode any given DCI (RF conditions).
  double miss_rate = 0.0;
  /// Probability per subframe of logging one spurious record (CRC aliasing
  /// that passes the activity filter).
  double false_rate = 0.0;
  /// RNTIs unseen for this long are dropped from the active set (OWL-style
  /// lifetime heuristic).
  TimeMs activity_horizon = 15'000;
};

class Sniffer final : public lte::PdcchObserver {
 public:
  Sniffer(SnifferConfig config, Rng rng);

  // --- lte::PdcchObserver
  void on_subframe(const lte::PdcchSubframe& subframe) override;
  void on_rach(const lte::RachPreamble& preamble) override;
  void on_rar(const lte::RandomAccessResponse& rar) override;
  void on_rrc_request(const lte::RrcConnectionRequest& request) override;
  void on_rrc_setup(const lte::RrcConnectionSetup& setup) override;
  void on_rrc_release(const lte::RrcConnectionRelease& release) override;

  /// Every record decoded so far, in capture order.
  const Trace& records() const { return records_; }

  /// Records attributed to one RNTI (no identity stitching).
  Trace trace_of_rnti(lte::Rnti rnti) const;

  /// Records attributed to one subscriber across all of their RNTI
  /// bindings — the identity-mapped per-user trace the attacks consume.
  Trace trace_of_tmsi(lte::Tmsi tmsi) const;

  /// RNTIs seen within the activity horizon of `now`.
  std::vector<lte::Rnti> active_rntis(TimeMs now) const;

  const IdentityMapper& identities() const { return identity_map_; }
  IdentityMapper& identities() { return identity_map_; }

  // --- capture statistics
  std::size_t decoded_count() const { return records_.size(); }
  std::size_t missed_count() const { return missed_; }
  std::size_t paging_count() const { return paging_; }
  std::size_t rach_count() const { return rach_; }

  /// Drops all captured records (identity map is kept).
  void clear_records() { records_.clear(); }

  /// Restricts recording to RNTIs currently bound to the given TMSI
  /// (callable repeatedly to allow several). This mirrors the paper's
  /// IRB-mandated filter — "we only stored data from our own UEs ...
  /// filtering for the RNTIs used by our UEs" — and is how a targeted
  /// attacker tails one victim without storing a whole cell.
  void restrict_to_tmsi(lte::Tmsi tmsi);
  bool restricted() const { return !tmsi_allowlist_.empty(); }

  /// Registers an out-of-band (IMSI-catcher-assisted) binding and keeps the
  /// targeted-recording filter consistent with it.
  void add_manual_binding(lte::Rnti rnti, lte::Tmsi tmsi, lte::CellId cell, TimeMs from);

  /// Incremental-decode tee: `hook` is invoked for every record the sniffer
  /// logs, at the moment it is decoded — the live-ingest path the streaming
  /// daemon (src/stream) attaches to instead of polling trace_of_tmsi()
  /// after the fact. Records are still appended to records(); pass an empty
  /// function to detach.
  void set_record_hook(std::function<void(const TraceRecord&)> hook) {
    record_hook_ = std::move(hook);
  }

 private:
  bool rnti_allowed(lte::Rnti rnti) const;

  SnifferConfig config_;
  Rng rng_;
  Trace records_;
  IdentityMapper identity_map_;
  std::unordered_map<lte::Rnti, TimeMs> last_seen_;
  std::unordered_set<lte::Tmsi> tmsi_allowlist_;
  std::unordered_set<lte::Rnti> allowed_rntis_;  // live bindings of allowlisted TMSIs
  std::function<void(const TraceRecord&)> record_hook_;
  std::size_t missed_ = 0;
  std::size_t paging_ = 0;
  std::size_t rach_ = 0;
};

}  // namespace ltefp::sniffer
