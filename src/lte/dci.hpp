// Downlink Control Information (DCI) messages and their over-the-air
// encoding on the PDCCH.
//
// The PDCCH is the one physical channel LTE leaves unencrypted: every
// scheduling decision (who gets PRBs, at which MCS, in which direction) is
// broadcast in plain text, with only the CRC parity bits scrambled by the
// target's RNTI. The simulator encodes genuine DCI payloads so the sniffer
// must do the same work a real-world SDR decoder does: recompute the CRC,
// unmask the RNTI, and reconstruct the transport block size from the
// MCS/PRB fields.
//
// We model the two formats that carry essentially all user traffic:
// format 0 (uplink grants) and format 1A (downlink assignments).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

/// Decoded scheduling grant for one UE in one subframe.
struct Dci {
  Direction direction = Direction::kDownlink;  // 1A = DL, 0 = UL
  Rnti rnti = 0;
  std::uint8_t mcs = 0;      // I_MCS 0..28
  std::uint8_t nprb = 1;     // allocated PRBs 1..110
  std::uint8_t harq_id = 0;  // 0..7
  bool ndi = false;          // new-data indicator

  /// Transport block size in bytes implied by (mcs, nprb).
  int tb_bytes() const;

  bool operator==(const Dci&) const = default;
};

/// A DCI as it appears on the air: packed payload plus RNTI-masked CRC.
struct EncodedDci {
  std::vector<std::uint8_t> payload;
  std::uint16_t masked_crc = 0;
};

/// Packs and CRC-masks a DCI exactly once (deterministic layout).
EncodedDci encode_dci(const Dci& dci);

/// Parses the payload fields of an encoded DCI. Returns nullopt if the
/// payload is malformed (wrong length, out-of-range MCS/PRB). Does NOT
/// recover or validate the RNTI; see lte::recover_rnti / sniffer::.
std::optional<Dci> decode_dci_fields(const EncodedDci& enc);

/// All PDCCH activity of one cell in one 1 ms subframe, as visible to any
/// receiver tuned to that cell.
struct PdcchSubframe {
  TimeMs time = 0;
  CellId cell = 0;
  std::vector<EncodedDci> dcis;
};

}  // namespace ltefp::lte
