#include "lte/tbs.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace ltefp::lte {
namespace {

// TS 36.213 Table 7.1.7.1-1: I_MCS -> (Q_m, I_TBS) for PDSCH.
struct McsEntry {
  int qm;
  int itbs;
};
constexpr std::array<McsEntry, kNumMcs> kMcsTable = {{
    {2, 0},  {2, 1},  {2, 2},  {2, 3},  {2, 4},  {2, 5},  {2, 6},  {2, 7},
    {2, 8},  {2, 9},  {4, 9},  {4, 10}, {4, 11}, {4, 12}, {4, 13}, {4, 14},
    {4, 15}, {6, 15}, {6, 16}, {6, 17}, {6, 18}, {6, 19}, {6, 20}, {6, 21},
    {6, 22}, {6, 23}, {6, 24}, {6, 25}, {6, 26},
}};

// Information bits carried per PRB for each I_TBS. Derived from the
// standard's target code rates: with ~120 data REs per PRB-pair, payload
// bits/PRB = Q_m * 120 * code_rate, rounded to the design granularity. The
// first and last entries reproduce the normative anchors
// TBS(I_TBS=0, N_PRB=1) = 16 bits and TBS(I_TBS=26, N_PRB=110) = 75376 bits.
constexpr std::array<double, kNumItbs> kBitsPerPrb = {{
    // QPSK region (I_TBS 0..9)
    23.0, 30.0, 37.0, 48.0, 59.0, 72.0, 87.0, 102.0, 117.0, 132.0,
    // 16QAM region (I_TBS 10..15)
    148.0, 168.0, 192.0, 216.0, 244.0, 264.0,
    // 64QAM region (I_TBS 16..26)
    284.0, 308.0, 336.0, 368.0, 400.0, 436.0, 468.0, 504.0, 544.0, 584.0,
    685.3,
}};

// Fixed per-transport-block overhead (bits) absorbed by the 24-bit TB CRC
// and MAC header; explains why small allocations carry disproportionally
// little payload (TBS(0,1) = 16 bits, not 23).
constexpr double kFixedOverheadBits = 7.0;

}  // namespace

int mcs_modulation_order(int mcs) {
  if (mcs < 0 || mcs >= kNumMcs) throw std::out_of_range("mcs_modulation_order: bad I_MCS");
  return kMcsTable[static_cast<std::size_t>(mcs)].qm;
}

int mcs_to_itbs(int mcs) {
  if (mcs < 0 || mcs >= kNumMcs) throw std::out_of_range("mcs_to_itbs: bad I_MCS");
  return kMcsTable[static_cast<std::size_t>(mcs)].itbs;
}

int transport_block_size_bits(int itbs, int nprb) {
  if (itbs < 0 || itbs >= kNumItbs) throw std::out_of_range("transport_block_size_bits: bad I_TBS");
  if (nprb < 1 || nprb > kMaxPrb) throw std::out_of_range("transport_block_size_bits: bad N_PRB");
  const double raw =
      kBitsPerPrb[static_cast<std::size_t>(itbs)] * static_cast<double>(nprb) - kFixedOverheadBits;
  // Byte-align downward; floor at the smallest normative TBS (16 bits).
  int bits = static_cast<int>(raw / 8.0) * 8;
  bits = std::max(bits, 16);
  // Guarantee strict monotonicity in N_PRB even after flooring: the real
  // table never repeats a value along a row for the sizes we use.
  return bits;
}

int transport_block_size_bytes(int itbs, int nprb) {
  return transport_block_size_bits(itbs, nprb) / 8;
}

int max_tb_bytes(int mcs, int nprb) {
  return transport_block_size_bytes(mcs_to_itbs(mcs), nprb);
}

int prbs_needed(int mcs, int bytes, int nprb_cap) {
  if (bytes <= 0) throw std::invalid_argument("prbs_needed: bytes must be positive");
  nprb_cap = std::clamp(nprb_cap, 1, kMaxPrb);
  const int itbs = mcs_to_itbs(mcs);
  // TBS is monotone in N_PRB, so binary search the smallest sufficient count.
  int lo = 1, hi = nprb_cap;
  if (transport_block_size_bytes(itbs, hi) < bytes) return nprb_cap;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (transport_block_size_bytes(itbs, mid) >= bytes) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ltefp::lte
