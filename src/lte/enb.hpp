// Evolved Node B: per-cell MAC/RRC machinery.
//
// Owns the C-RNTI pool, connected-UE contexts (buffers, channel state,
// inactivity timers), the PRB scheduler, and the RACH/RRC connection state
// machine. Each 1 ms step produces the cell's PDCCH subframe — the exact
// byte stream a passive sniffer sees — plus the RRC-procedure messages the
// identity-mapping attack consumes.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "lte/channel.hpp"
#include "lte/countermeasures.hpp"
#include "lte/dci.hpp"
#include "lte/operator_profile.hpp"
#include "lte/rnti.hpp"
#include "lte/rrc.hpp"
#include "lte/scheduler.hpp"

namespace ltefp::lte {

struct EnbConfig {
  CellId cell = 0;
  OperatorProfile profile;
  /// Optional privacy countermeasures (Section VIII-B experiments).
  CountermeasureConfig countermeasures;
  /// 5G-style identity concealment (Section VIII-C): Msg3 carries a
  /// one-time SUCI-like value instead of the stable S-TMSI, so passive
  /// RNTI<->TMSI mapping breaks even though the RRC procedure is unchanged.
  bool conceal_identity = false;
};

/// Everything that happened in one subframe, for the network to dispatch to
/// UEs and observers (sniffers).
struct EnbStepResult {
  PdcchSubframe pdcch;
  std::vector<RachPreamble> rach;
  std::vector<RandomAccessResponse> rars;
  std::vector<RrcConnectionRequest> rrc_requests;
  std::vector<RrcConnectionSetup> rrc_setups;
  std::vector<RrcConnectionRelease> rrc_releases;

  struct Established {
    UeId ue = 0;
    Rnti rnti = 0;
  };
  std::vector<Established> established;  // connections completed this subframe
  std::vector<UeId> released;            // UEs dropped to idle this subframe
};

class Enb {
 public:
  Enb(EnbConfig config, Rng rng);

  CellId cell() const { return config_.cell; }
  const OperatorProfile& profile() const { return config_.profile; }

  /// Begins a contention-based RACH + RRC connection for an idle UE.
  /// Completion (~8 ms later) is reported via EnbStepResult::established.
  /// No-op if the UE is already connected or connecting.
  void start_connection(UeId ue, Tmsi tmsi, TimeMs now);

  /// Admits a UE arriving via X2 handover: contention-free RACH, so the new
  /// C-RNTI is live within ~4 ms and no RRCConnectionRequest (with its
  /// plain-text S-TMSI) appears on the air.
  void admit_handover(UeId ue, Tmsi tmsi, TimeMs now);

  /// Explicit release (e.g. source side of a handover).
  void release_ue(UeId ue, TimeMs now);

  bool is_connected(UeId ue) const { return contexts_.contains(ue); }
  bool is_connecting(UeId ue) const;
  std::optional<Rnti> rnti_of(UeId ue) const;
  std::size_t connected_count() const { return contexts_.size(); }

  /// Queues application payload for a connected UE. Callers must not push
  /// for idle UEs (the network layer buffers and pages instead).
  void push_traffic(UeId ue, Direction dir, int bytes, TimeMs now);

  /// Emits a paging indication (P-RNTI DCI) in the next subframe.
  void page(Tmsi tmsi);

  /// Runs one 1 ms subframe: progresses RACH procedures, applies inactivity
  /// release, link-adapts, schedules both directions, and emits DCIs.
  EnbStepResult step(TimeMs now);

 private:
  struct UeContext {
    Rnti rnti = 0;
    Tmsi tmsi = 0;
    int dl_buffer = 0;  // bytes pending at the eNB for this UE
    int ul_buffer = 0;  // bytes the UE reported via BSR
    TimeMs last_activity = 0;
    ChannelModel channel;
    double avg_rate_dl = 1.0;  // EWMA bytes/ms, PF metric state
    double avg_rate_ul = 1.0;
    std::uint8_t next_harq = 0;
    TimeMs last_rekey = 0;     // countermeasure: forced C-RNTI re-key clock
  };

  struct PendingConnection {
    UeId ue = 0;
    Tmsi tmsi = 0;
    Rnti rnti = 0;  // assigned at RAR time
    TimeMs started = 0;
    bool contention_free = false;  // handover admission
    std::uint8_t preamble = 0;
    int phase = 0;  // index into the message schedule
    Tmsi on_air_identity = 0;      // SUCI-like one-time value when concealing
  };

  UeContext make_context(Tmsi tmsi, Rnti rnti, TimeMs now);
  void schedule_direction(Direction dir, TimeMs now, EnbStepResult& result);
  void complete_connection(PendingConnection& pc, TimeMs now, EnbStepResult& result);

  EnbConfig config_;
  Rng rng_;
  RntiManager rnti_manager_;
  std::unique_ptr<Scheduler> dl_scheduler_;
  std::unique_ptr<Scheduler> ul_scheduler_;
  // Ordered by UeId: step() iterates this to build scheduler candidate
  // lists, drive RNG-consuming countermeasures, and emit releases, so the
  // iteration order is part of the deterministic-replay contract.
  std::map<UeId, UeContext> contexts_;
  std::vector<PendingConnection> pending_;
  std::deque<Tmsi> page_queue_;
  /// HARQ retransmissions scheduled for a future subframe.
  std::vector<std::pair<TimeMs, Dci>> retx_queue_;
  int total_prb_ = 0;
};

}  // namespace ltefp::lte
