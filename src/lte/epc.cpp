#include "lte/epc.hpp"

namespace ltefp::lte {

Epc::Epc(Rng rng) : rng_(rng) {}

Tmsi Epc::fresh_tmsi() {
  for (;;) {
    const auto candidate = static_cast<Tmsi>(rng_());
    if (candidate != 0 && !by_tmsi_.contains(candidate)) return candidate;
  }
}

Tmsi Epc::attach(Imsi imsi) {
  if (const auto it = by_imsi_.find(imsi); it != by_imsi_.end()) return it->second;
  const Tmsi tmsi = fresh_tmsi();
  by_imsi_.emplace(imsi, tmsi);
  by_tmsi_.emplace(tmsi, imsi);
  return tmsi;
}

Tmsi Epc::reallocate_tmsi(Imsi imsi) {
  if (const auto it = by_imsi_.find(imsi); it != by_imsi_.end()) {
    by_tmsi_.erase(it->second);
    by_imsi_.erase(it);
  }
  return attach(imsi);
}

std::optional<Tmsi> Epc::tmsi_of(Imsi imsi) const {
  const auto it = by_imsi_.find(imsi);
  if (it == by_imsi_.end()) return std::nullopt;
  return it->second;
}

std::optional<Imsi> Epc::imsi_of(Tmsi tmsi) const {
  const auto it = by_tmsi_.find(tmsi);
  if (it == by_tmsi_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ltefp::lte
