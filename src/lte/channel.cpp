#include "lte/channel.hpp"

#include <algorithm>
#include <cmath>

namespace ltefp::lte {

ChannelModel::ChannelModel(ChannelConfig config, Rng rng)
    : config_(config), rng_(rng), snr_db_(config.mean_snr_db) {}

double ChannelModel::step() {
  const double pull = config_.reversion * (config_.mean_snr_db - snr_db_);
  const double noise = config_.volatility_db > 0.0 ? rng_.normal(0.0, config_.volatility_db) : 0.0;
  snr_db_ = std::clamp(snr_db_ + pull + noise, config_.min_snr_db, config_.max_snr_db);
  return snr_db_;
}

int ChannelModel::cqi_from_snr(double snr_db) {
  // Linear map of the usable range [-6 dB, 30 dB] onto CQI 1..15.
  const double t = (snr_db + 6.0) / 36.0;
  const int cqi = 1 + static_cast<int>(std::floor(t * 14.0));
  return std::clamp(cqi, 1, 15);
}

int ChannelModel::mcs_from_cqi(int cqi) {
  cqi = std::clamp(cqi, 1, 15);
  // Standard practice: map the 15 CQI steps across the 29 MCS indices.
  const int mcs = (cqi * 2) - 2;
  return std::clamp(mcs, 0, 28);
}

}  // namespace ltefp::lte
