// RRC connection-establishment messages, as observable on the air.
//
// The paper's identity-mapping step (Section III-E, building on Rupprecht
// et al.) exploits that RRCConnectionRequest carries the UE's S-TMSI in
// plain text and that RRCConnectionSetup echoes those 40 bits back as the
// *contention resolution identity*, CRC-addressed to the newly assigned
// C-RNTI. A passive observer who sees both messages learns the
// RNTI <-> TMSI binding — the prerequisite for following one victim across
// RNTI refreshes.
//
// These records model what a sniffer parses out of the RACH/RRC exchange;
// they are emitted by the eNB alongside the PDCCH stream.
#pragma once

#include <cstdint>

#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

/// Msg1: random-access preamble on the PRACH.
struct RachPreamble {
  TimeMs time = 0;
  CellId cell = 0;
  std::uint8_t preamble_index = 0;  // 0..63
};

/// Msg2: random access response; assigns the temporary C-RNTI.
struct RandomAccessResponse {
  TimeMs time = 0;
  CellId cell = 0;
  std::uint8_t preamble_index = 0;
  Rnti assigned_rnti = 0;
};

/// Msg3: RRCConnectionRequest — carries the S-TMSI unencrypted.
struct RrcConnectionRequest {
  TimeMs time = 0;
  CellId cell = 0;
  Rnti rnti = 0;   // the temp C-RNTI from Msg2
  Tmsi s_tmsi = 0; // plain-text subscriber temporary identity
};

/// Msg4: RRCConnectionSetup — echoes the request's identity bits as the
/// contention resolution identity, addressed to the winner's C-RNTI.
struct RrcConnectionSetup {
  TimeMs time = 0;
  CellId cell = 0;
  Rnti rnti = 0;
  Tmsi contention_resolution_identity = 0;  // == Msg3 s_tmsi of the winner
};

/// RRC connection release; after this the C-RNTI is invalid.
struct RrcConnectionRelease {
  TimeMs time = 0;
  CellId cell = 0;
  Rnti rnti = 0;
};

}  // namespace ltefp::lte
