#include "lte/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "lte/tbs.hpp"

namespace ltefp::lte {
namespace {

/// Builds a grant for one candidate from the remaining PRB budget.
/// Returns nullopt when the budget is exhausted.
std::optional<SchedDecision> make_grant(const SchedCandidate& c, int remaining_prb,
                                        int max_prb_per_ue) {
  if (remaining_prb <= 0 || c.buffer_bytes <= 0) return std::nullopt;
  const int cap = std::min({remaining_prb, max_prb_per_ue, kMaxPrb});
  const int nprb = prbs_needed(c.mcs, c.buffer_bytes, cap);
  SchedDecision d;
  d.rnti = c.rnti;
  d.nprb = nprb;
  d.mcs = c.mcs;
  d.tb_bytes = max_tb_bytes(c.mcs, nprb);
  return d;
}

}  // namespace

std::vector<SchedDecision> RoundRobinScheduler::schedule(
    std::span<const SchedCandidate> candidates, int total_prb, int max_prb_per_ue) {
  std::vector<SchedDecision> out;
  if (candidates.empty()) return out;
  int remaining = total_prb;
  const std::size_t n = candidates.size();
  const std::size_t start = next_start_ % n;
  for (std::size_t i = 0; i < n && remaining > 0; ++i) {
    const auto& c = candidates[(start + i) % n];
    if (auto grant = make_grant(c, remaining, max_prb_per_ue)) {
      remaining -= grant->nprb;
      out.push_back(*grant);
    }
  }
  ++next_start_;
  return out;
}

std::vector<SchedDecision> ProportionalFairScheduler::schedule(
    std::span<const SchedCandidate> candidates, int total_prb, int max_prb_per_ue) {
  std::vector<SchedDecision> out;
  if (candidates.empty()) return out;

  // PF metric: instantaneous achievable rate over served average rate.
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> metric(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    const double inst_rate = static_cast<double>(max_tb_bytes(c.mcs, 1));
    metric[i] = inst_rate / std::max(c.avg_rate, 1e-6);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return metric[a] > metric[b]; });

  int remaining = total_prb;
  for (const std::size_t i : order) {
    if (remaining <= 0) break;
    if (auto grant = make_grant(candidates[i], remaining, max_prb_per_ue)) {
      remaining -= grant->nprb;
      out.push_back(*grant);
    }
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kRoundRobin: return std::make_unique<RoundRobinScheduler>();
    case SchedulerKind::kProportionalFair: return std::make_unique<ProportionalFairScheduler>();
  }
  return nullptr;
}

}  // namespace ltefp::lte
