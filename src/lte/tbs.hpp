// Transport Block Size (TBS) determination, modelled after TS 36.213
// Section 7.1.7.
//
// The normative standard defines TBS via lookup table 7.1.7.2.1-1
// (27 I_TBS rows x 110 N_PRB columns). We reproduce:
//   - the exact I_MCS -> I_TBS / modulation-order mapping of
//     Table 7.1.7.1-1 (embedded verbatim), and
//   - a *procedural* TBS quantiser whose per-PRB information capacity per
//     I_TBS is derived from the standard's code-rate design targets. Values
//     are byte-aligned and strictly monotone in both I_TBS and N_PRB like
//     the normative table, and match it on the documented anchor entries.
//
// Substitution note (see DESIGN.md): the fingerprinting attack consumes TBS
// values only as *feature magnitudes*; classification depends on their
// relative shape and quantisation, not on matching every normative entry.
#pragma once

#include <cstdint>

namespace ltefp::lte {

constexpr int kNumMcs = 29;       // I_MCS 0..28 carry data (29..31 reserved)
constexpr int kNumItbs = 27;      // I_TBS 0..26
constexpr int kMaxPrb = 110;      // N_PRB 1..110

/// Modulation order Q_m for a downlink I_MCS (2 = QPSK, 4 = 16QAM, 6 = 64QAM),
/// per TS 36.213 Table 7.1.7.1-1.
int mcs_modulation_order(int mcs);

/// I_TBS for a downlink I_MCS, per TS 36.213 Table 7.1.7.1-1.
int mcs_to_itbs(int mcs);

/// Transport block size in BITS for (I_TBS, N_PRB). N_PRB in [1, 110],
/// I_TBS in [0, 26]. Monotone non-decreasing in both arguments; multiple of 8.
int transport_block_size_bits(int itbs, int nprb);

/// Same, in bytes (the unit the sniffer traces record; the paper's "frame
/// size ... defined as Transport Block Size (TBS) in decoded LTE PDCCH").
int transport_block_size_bytes(int itbs, int nprb);

/// Largest TBS (bytes) a single subframe can carry with `nprb` PRBs at the
/// given MCS.
int max_tb_bytes(int mcs, int nprb);

/// Smallest PRB count whose TBS at `mcs` covers `bytes` (or `nprb_cap` if
/// even the full allocation cannot). bytes > 0.
int prbs_needed(int mcs, int bytes, int nprb_cap);

}  // namespace ltefp::lte
