#include "lte/dci.hpp"

#include "lte/crc.hpp"
#include "lte/tbs.hpp"

namespace ltefp::lte {
namespace {

constexpr std::size_t kDciPayloadBytes = 4;
constexpr std::uint8_t kFormatFlagUl = 0x80;  // bit 7: 1 = format 0 (UL)
constexpr std::uint8_t kNdiFlag = 0x08;       // bit 3 of byte 0

}  // namespace

int Dci::tb_bytes() const { return max_tb_bytes(mcs, nprb); }

EncodedDci encode_dci(const Dci& dci) {
  EncodedDci enc;
  enc.payload.resize(kDciPayloadBytes);
  std::uint8_t b0 = static_cast<std::uint8_t>(dci.harq_id & 0x07);
  if (dci.direction == Direction::kUplink) b0 |= kFormatFlagUl;
  if (dci.ndi) b0 |= kNdiFlag;
  enc.payload[0] = b0;
  enc.payload[1] = dci.mcs;
  enc.payload[2] = dci.nprb;
  enc.payload[3] = 0x00;  // padding / reserved, as real 1A pads to format-0 size
  enc.masked_crc = crc16_masked(enc.payload, dci.rnti);
  return enc;
}

std::optional<Dci> decode_dci_fields(const EncodedDci& enc) {
  if (enc.payload.size() != kDciPayloadBytes) return std::nullopt;
  Dci dci;
  const std::uint8_t b0 = enc.payload[0];
  dci.direction = (b0 & kFormatFlagUl) ? Direction::kUplink : Direction::kDownlink;
  dci.harq_id = b0 & 0x07;
  dci.ndi = (b0 & kNdiFlag) != 0;
  dci.mcs = enc.payload[1];
  dci.nprb = enc.payload[2];
  if (dci.mcs >= kNumMcs) return std::nullopt;
  if (dci.nprb < 1 || dci.nprb > kMaxPrb) return std::nullopt;
  // rnti stays 0: recovering it needs the CRC unmasking step.
  return dci;
}

}  // namespace ltefp::lte
