// C-RNTI pool management for one eNB.
//
// Section II-A of the paper: "The RNTI may change randomly ... based on
// network policies or UE activity"; a UE that stays idle past the
// inactivity threshold (default 10 s) is released and receives a *new*
// RNTI on its next connection. The manager allocates from the C-RNTI value
// space, optionally randomising assignment order (an operator policy), and
// enforces a reuse cooldown so a just-released RNTI is not immediately
// handed to a different UE — which in real networks would poison passive
// trackers.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

struct RntiManagerConfig {
  bool randomize = true;         // random vs sequential assignment
  TimeMs reuse_cooldown = 5000;  // ms before a released value may be reissued
};

class RntiManager {
 public:
  RntiManager(RntiManagerConfig config, Rng rng);

  /// Allocates a fresh C-RNTI distinct from every currently-active one and
  /// from values released within the cooldown. Throws std::runtime_error on
  /// pool exhaustion (not reachable at realistic cell loads).
  Rnti allocate(TimeMs now);

  /// Returns a C-RNTI to the pool.
  void release(Rnti rnti, TimeMs now);

  bool is_active(Rnti rnti) const { return active_.contains(rnti); }
  std::size_t active_count() const { return active_.size(); }

 private:
  bool usable(Rnti rnti, TimeMs now) const;
  void expire_cooldowns(TimeMs now);

  RntiManagerConfig config_;
  Rng rng_;
  std::unordered_set<Rnti> active_;
  struct Cooldown {
    Rnti rnti;
    TimeMs released_at;
  };
  std::deque<Cooldown> cooldown_;
  std::unordered_set<Rnti> cooling_;
  Rnti next_sequential_ = kMinCRnti;
};

}  // namespace ltefp::lte
