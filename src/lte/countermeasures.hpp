// Countermeasures from the paper's Section VIII-B, implemented so their
// cost/benefit can be measured (bench_countermeasures):
//
//  - Frequent RNTI reassignment: "a frequent reassignment of the RNTI from
//    the base station can disrupt the tracking and collecting of LTE
//    traffic". Modelled as a periodic forced RRC reconfiguration that
//    re-keys the C-RNTI mid-connection without any on-air identity
//    exchange the sniffer could exploit.
//  - Layer-two traffic obfuscation (Wright et al. traffic morphing): pad
//    every transport block up to the next size of a coarse ladder and
//    inject dummy grants, hiding the per-app TBS structure at the price of
//    radio-resource overhead.
//
// Both are radio-side features: they wrap the clean attack-side knobs the
// benches sweep.
#pragma once

#include "common/sim_time.hpp"

namespace ltefp::lte {

struct CountermeasureConfig {
  /// Forced C-RNTI re-key period while connected; 0 disables. The paper's
  /// suggestion: frequent enough that a tracker cannot follow.
  TimeMs rnti_rekey_period = 0;

  /// TBS padding ladder: grants are rounded up to the next multiple of
  /// this many bytes (0 disables). Coarser ladder = stronger morphing =
  /// more wasted PRBs.
  int pad_to_bytes = 0;

  /// Probability per subframe of emitting a dummy grant to a connected UE
  /// with no pending data (chaff traffic).
  double dummy_grant_rate = 0.0;

  bool enabled() const {
    return rnti_rekey_period > 0 || pad_to_bytes > 0 || dummy_grant_rate > 0.0;
  }
};

/// Padded size on the ladder (identity when padding is disabled).
int pad_tb_bytes(int tb_bytes, const CountermeasureConfig& config);

}  // namespace ltefp::lte
