// Whole-network discrete-event simulation: EPC + cells (eNBs) + UEs with
// attached traffic sources, clocked at 1 ms subframes.
//
// The Simulation wires application traffic into the radio stack and
// reproduces the connection-lifecycle side channel the paper exploits:
// idle UEs receiving downlink data get paged, re-RACH, and come back under
// a *new* RNTI; uplink data from idle triggers the same RACH with the
// plain-text S-TMSI on the air.
#pragma once

#include <memory>
#include <optional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "lte/enb.hpp"
#include "lte/epc.hpp"
#include "lte/observer.hpp"
#include "lte/traffic.hpp"

namespace ltefp::lte {

constexpr CellId kNoCell = 0xFFFF;

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed);

  /// Adds a cell with the given profile; cell ids are assigned sequentially.
  CellId add_cell(const OperatorProfile& profile);

  /// Adds a cell with privacy countermeasures and/or 5G-style identity
  /// concealment enabled (Section VIII-B/C experiments).
  CellId add_cell(const OperatorProfile& profile, const CountermeasureConfig& countermeasures,
                  bool conceal_identity = false);

  /// Adds a subscriber (attaches to the EPC, which assigns a TMSI).
  UeId add_ue(Imsi imsi);

  /// Attaches/replaces the UE's traffic generator (may be null for a silent UE).
  void set_traffic_source(UeId ue, std::unique_ptr<TrafficSource> source);

  /// Idle camping on a cell (cell selection). Drops any existing connection
  /// without handover.
  void camp(UeId ue, CellId cell);

  /// Triggers an RRC connection on the camped cell (no-op if already
  /// connected/connecting). Connections also start automatically when
  /// traffic arrives for an idle UE.
  void connect(UeId ue);

  /// Moves the UE to another cell: X2 handover when connected (contention-
  /// free RACH in the target, new C-RNTI), plain reselection when idle.
  void move(UeId ue, CellId target);

  /// Registers a sniffer on a cell. Observers must outlive the simulation.
  void add_observer(CellId cell, PdcchObserver& observer);

  /// Advances one 1 ms subframe.
  void step();

  /// Runs for `duration` ms.
  void run_for(TimeMs duration);

  TimeMs now() const { return now_; }

  // --- Introspection (ground truth for labeling; never visible to sniffers).
  std::optional<Rnti> current_rnti(UeId ue) const;
  Tmsi tmsi_of(UeId ue) const;
  Imsi imsi_of(UeId ue) const;
  bool is_connected(UeId ue) const;
  CellId camped_cell(UeId ue) const;
  const OperatorProfile& cell_profile(CellId cell) const;
  std::size_t cell_count() const { return enbs_.size(); }

  Epc& epc() { return epc_; }
  Rng& rng() { return rng_; }

 private:
  enum class RrcState { kIdle, kConnecting, kConnected };

  struct UeState {
    Imsi imsi = 0;
    Tmsi tmsi = 0;
    CellId camped = kNoCell;
    RrcState state = RrcState::kIdle;
    std::unique_ptr<TrafficSource> source;
    int pending_ul = 0;          // generated while not connected
    int pending_dl = 0;          // waiting at the core for paging
    TimeMs page_retry_at = 0;    // next time we may page this UE
  };

  Enb& enb_of(CellId cell);
  const Enb& enb_of(CellId cell) const;
  UeState& state_of(UeId ue);
  const UeState& state_of(UeId ue) const;
  void deliver_pending(UeId ue, UeState& st);

  Rng rng_;
  Epc epc_;
  std::vector<std::unique_ptr<Enb>> enbs_;
  // Ordered by UeId: step() iterates this to generate traffic and trigger
  // connections, so iteration order feeds the whole simulation; it must not
  // depend on a hash function.
  std::map<UeId, UeState> ues_;
  std::unordered_map<CellId, std::vector<PdcchObserver*>> observers_;
  TimeMs now_ = 0;
  UeId next_ue_ = 1;
  std::vector<AppPacket> packet_scratch_;
};

}  // namespace ltefp::lte
