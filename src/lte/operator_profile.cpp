#include "lte/operator_profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace ltefp::lte {

OperatorProfile operator_profile(Operator op) {
  OperatorProfile p;
  p.op = op;
  switch (op) {
    case Operator::kLab:
      // Self-configured srsLTE eNodeB in a Faraday cage: one cell, no
      // competing users, sniffer co-located, static channel.
      p.bandwidth = Bandwidth::kMhz10;
      p.scheduler = SchedulerKind::kRoundRobin;
      p.background_ues = 0;
      p.background_load_bps = 0.0;
      p.channel_volatility_db = 0.15;
      p.mean_snr_db = 21.0;  // solid indoor cell: MCS ~22, fine TBS granularity
      p.sniffer_miss_rate = 0.0;
      p.sniffer_false_rate = 0.0;
      p.max_prb_per_ue = 50;
      p.session_snr_jitter_db = 0.3;   // same bench, same Faraday cage
      p.session_load_jitter = 0.0;
      p.harq_bler = 0.01;
      break;
    case Operator::kVerizon:
      p.bandwidth = Bandwidth::kMhz20;
      p.scheduler = SchedulerKind::kProportionalFair;
      p.background_ues = 30;
      p.background_load_bps = 90'000.0;
      p.channel_volatility_db = 2.0;
      p.mean_snr_db = 19.0;
      p.sniffer_miss_rate = 0.030;
      p.sniffer_false_rate = 0.002;
      p.max_prb_per_ue = 64;
      p.inactivity_timeout = 10'000;
      p.session_snr_jitter_db = 3.2;
      p.session_load_jitter = 0.45;
      p.harq_bler = 0.08;
      break;
    case Operator::kAtt:
      p.bandwidth = Bandwidth::kMhz15;
      p.scheduler = SchedulerKind::kProportionalFair;
      p.background_ues = 25;
      p.background_load_bps = 80'000.0;
      p.channel_volatility_db = 2.2;
      p.mean_snr_db = 18.0;
      p.sniffer_miss_rate = 0.035;
      p.sniffer_false_rate = 0.002;
      p.max_prb_per_ue = 50;
      p.inactivity_timeout = 11'000;
      p.session_snr_jitter_db = 3.0;
      p.session_load_jitter = 0.5;
      p.harq_bler = 0.09;
      break;
    case Operator::kTmobile:
      p.bandwidth = Bandwidth::kMhz10;
      p.scheduler = SchedulerKind::kProportionalFair;
      p.background_ues = 20;
      p.background_load_bps = 58'000.0;
      p.channel_volatility_db = 2.4;
      p.mean_snr_db = 18.2;
      p.sniffer_miss_rate = 0.040;
      p.sniffer_false_rate = 0.003;
      p.max_prb_per_ue = 48;
      p.inactivity_timeout = 8'000;
      p.session_snr_jitter_db = 2.6;
      p.session_load_jitter = 0.45;
      p.harq_bler = 0.10;
      break;
  }
  return p;
}

OperatorProfile perturb_for_session(const OperatorProfile& profile, std::uint64_t seed) {
  OperatorProfile p = profile;
  Rng rng(seed ^ 0x5E5510DULL);
  p.mean_snr_db += rng.normal(0.0, profile.session_snr_jitter_db);
  p.mean_snr_db = std::clamp(p.mean_snr_db, 2.0, 28.0);
  if (profile.session_load_jitter > 0.0 && profile.background_ues > 0) {
    const double scale =
        std::max(0.2, 1.0 + rng.normal(0.0, profile.session_load_jitter));
    p.background_ues =
        std::max(1, static_cast<int>(std::lround(profile.background_ues * scale)));
    p.background_load_bps *= std::max(0.3, 1.0 + rng.normal(0.0, profile.session_load_jitter));
  }
  return p;
}

}  // namespace ltefp::lte
