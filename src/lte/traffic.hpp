// Interface between application traffic models (src/apps) and the LTE
// simulator. A TrafficSource is stepped once per 1 ms subframe and emits
// IP-layer packets; the simulator queues them into the UE's uplink buffer
// or the eNB's per-UE downlink buffer and lets the MAC scheduler drain
// them into transport blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

/// One application-layer packet handed to the radio stack.
struct AppPacket {
  Direction direction = Direction::kDownlink;
  int bytes = 0;
};

/// Stochastic application traffic generator. Implementations live in
/// src/apps; the LTE layer only sees packets.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Called once per simulated millisecond. Appends any packets generated
  /// during this subframe to `out`.
  virtual void step(TimeMs now, std::vector<AppPacket>& out) = 0;

  /// Human-readable label, e.g. "YouTube" (used for dataset ground truth).
  virtual const char* name() const = 0;
};

}  // namespace ltefp::lte
