// Fundamental LTE identifier and direction types shared across the stack.
//
// Terminology follows 3GPP TS 36.300/36.321/36.331 and the paper's Section II:
//  - RNTI: Radio Network Temporary Identifier, assigned per-connection by the
//    eNB and carried (as a CRC mask) in every DCI on the PDCCH.
//  - TMSI: Temporary Mobile Subscriber Identity, assigned by the EPC at
//    attach; longer-lived than an RNTI but scoped to a tracking area.
//  - IMSI: permanent subscriber identity stored in the SIM.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.hpp"

namespace ltefp::lte {

using Rnti = std::uint16_t;
using Tmsi = std::uint32_t;
using Imsi = std::uint64_t;
using CellId = std::uint16_t;   // physical cell id (0..503 in real LTE)
using UeId = std::uint32_t;     // simulator-internal handle, never on the air

/// C-RNTI value space per TS 36.321 Table 7.1-1: 0x003D..0xFFF3 are usable
/// C-RNTIs; values outside are reserved (RA-RNTI, P-RNTI, SI-RNTI...).
constexpr Rnti kMinCRnti = 0x003D;
constexpr Rnti kMaxCRnti = 0xFFF3;

/// P-RNTI used for paging per TS 36.321.
constexpr Rnti kPagingRnti = 0xFFFE;

/// Link direction of a transport block / DCI grant.
enum class Direction : std::uint8_t { kDownlink = 0, kUplink = 1 };

const char* to_string(Direction d);

/// Which link(s) an experiment consumes; the paper evaluates Down+Up,
/// Down-only, and Up-only variants (Table III) and Downlink-only in the
/// real-world setting (Table IV).
enum class LinkFilter : std::uint8_t { kBoth, kDownlinkOnly, kUplinkOnly };

bool direction_passes(LinkFilter filter, Direction d);

/// Mobile network operators evaluated in the paper plus the lab eNodeB.
enum class Operator : std::uint8_t { kLab = 0, kVerizon = 1, kAtt = 2, kTmobile = 3 };

const char* to_string(Operator op);

}  // namespace ltefp::lte
