// MAC-layer PRB schedulers.
//
// Operator-specific scheduling is one of the reasons the paper retrains per
// carrier ("Traffic patterns and frame metadata are sensitive to
// operator-specific configuration, such as the specific resource scheduling
// algorithms that eNodeBs use"). We provide the two classic disciplines:
// round-robin (our lab eNodeB) and proportional-fair (commercial cells).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

/// Scheduler's view of one UE with pending data in one direction.
struct SchedCandidate {
  Rnti rnti = 0;
  int buffer_bytes = 0;   // pending payload
  int mcs = 0;            // link-adapted I_MCS for this UE right now
  double avg_rate = 1.0;  // EWMA served rate (bytes/ms), for PF
};

/// One grant decided for this subframe.
struct SchedDecision {
  Rnti rnti = 0;
  int nprb = 0;
  int mcs = 0;
  int tb_bytes = 0;  // TBS implied by (mcs, nprb); >= payload actually sent
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Partitions up to `total_prb` PRBs of one direction of one subframe
  /// among the candidates. `max_prb_per_ue` caps a single grant.
  virtual std::vector<SchedDecision> schedule(std::span<const SchedCandidate> candidates,
                                              int total_prb, int max_prb_per_ue) = 0;

  virtual const char* name() const = 0;
};

/// Round-robin: serves candidates in rotating order, each getting exactly
/// the PRBs its buffer needs (capped).
class RoundRobinScheduler final : public Scheduler {
 public:
  std::vector<SchedDecision> schedule(std::span<const SchedCandidate> candidates, int total_prb,
                                      int max_prb_per_ue) override;
  const char* name() const override { return "round-robin"; }

 private:
  std::size_t next_start_ = 0;
};

/// Proportional fair: serves candidates by descending instantaneous-rate /
/// average-rate metric.
class ProportionalFairScheduler final : public Scheduler {
 public:
  std::vector<SchedDecision> schedule(std::span<const SchedCandidate> candidates, int total_prb,
                                      int max_prb_per_ue) override;
  const char* name() const override { return "proportional-fair"; }
};

enum class SchedulerKind { kRoundRobin, kProportionalFair };

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind);

}  // namespace ltefp::lte
