#include "lte/enb.hpp"

#include <algorithm>
#include <unordered_map>

#include "lte/tbs.hpp"

namespace ltefp::lte {
namespace {

// Contention-based RACH message timeline, in ms after start_connection():
// Msg1 preamble, Msg2 RAR (+RNTI), Msg3 RRCConnectionRequest (S-TMSI in
// plain text), Msg4 RRCConnectionSetup (contention resolution identity).
constexpr TimeMs kMsg1Offset = 0;
constexpr TimeMs kMsg2Offset = 3;
constexpr TimeMs kMsg3Offset = 5;
constexpr TimeMs kMsg4Offset = 8;

// Contention-free (handover) timeline: dedicated preamble, RAR, done.
constexpr TimeMs kCfMsg1Offset = 0;
constexpr TimeMs kCfMsg2Offset = 2;
constexpr TimeMs kCfDoneOffset = 4;

// PF EWMA smoothing factor (classic T_c = 100 TTIs).
constexpr double kPfAlpha = 0.01;

// HARQ round-trip: a failed TB is retransmitted 8 subframes later.
constexpr TimeMs kHarqRtt = 8;

}  // namespace

Enb::Enb(EnbConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      rnti_manager_(RntiManagerConfig{}, rng_.fork()),
      dl_scheduler_(make_scheduler(config.profile.scheduler)),
      ul_scheduler_(make_scheduler(config.profile.scheduler)),
      total_prb_(prb_count(config.profile.bandwidth)) {}

Enb::UeContext Enb::make_context(Tmsi tmsi, Rnti rnti, TimeMs now) {
  ChannelConfig cc;
  cc.mean_snr_db = config_.profile.mean_snr_db;
  cc.volatility_db = config_.profile.channel_volatility_db;
  UeContext ctx{.rnti = rnti,
                .tmsi = tmsi,
                .dl_buffer = 0,
                .ul_buffer = 0,
                .last_activity = now,
                .channel = ChannelModel(cc, rng_.fork()),
                .avg_rate_dl = 1.0,
                .avg_rate_ul = 1.0,
                .next_harq = 0};
  return ctx;
}

bool Enb::is_connecting(UeId ue) const {
  return std::any_of(pending_.begin(), pending_.end(),
                     [ue](const PendingConnection& pc) { return pc.ue == ue; });
}

std::optional<Rnti> Enb::rnti_of(UeId ue) const {
  const auto it = contexts_.find(ue);
  if (it == contexts_.end()) return std::nullopt;
  return it->second.rnti;
}

void Enb::start_connection(UeId ue, Tmsi tmsi, TimeMs now) {
  if (is_connected(ue) || is_connecting(ue)) return;
  PendingConnection pc;
  pc.ue = ue;
  pc.tmsi = tmsi;
  pc.started = now;
  pc.contention_free = false;
  pc.preamble = static_cast<std::uint8_t>(rng_.uniform_int(0, 63));
  pending_.push_back(pc);
}

void Enb::admit_handover(UeId ue, Tmsi tmsi, TimeMs now) {
  if (is_connected(ue) || is_connecting(ue)) return;
  PendingConnection pc;
  pc.ue = ue;
  pc.tmsi = tmsi;
  pc.started = now;
  pc.contention_free = true;
  // Dedicated preambles live in the reserved upper range.
  pc.preamble = static_cast<std::uint8_t>(rng_.uniform_int(52, 63));
  pending_.push_back(pc);
}

void Enb::release_ue(UeId ue, TimeMs now) {
  const auto it = contexts_.find(ue);
  if (it == contexts_.end()) return;
  rnti_manager_.release(it->second.rnti, now);
  contexts_.erase(it);
}

void Enb::push_traffic(UeId ue, Direction dir, int bytes, TimeMs now) {
  auto it = contexts_.find(ue);
  if (it == contexts_.end() || bytes <= 0) return;
  auto& ctx = it->second;
  if (dir == Direction::kDownlink) {
    ctx.dl_buffer += bytes;
  } else {
    ctx.ul_buffer += bytes;
  }
  ctx.last_activity = now;
}

void Enb::page(Tmsi tmsi) { page_queue_.push_back(tmsi); }

void Enb::complete_connection(PendingConnection& pc, TimeMs now, EnbStepResult& result) {
  contexts_.emplace(pc.ue, make_context(pc.tmsi, pc.rnti, now));
  result.established.push_back(EnbStepResult::Established{pc.ue, pc.rnti});
}

EnbStepResult Enb::step(TimeMs now) {
  EnbStepResult result;
  result.pdcch.time = now;
  result.pdcch.cell = config_.cell;

  // --- Paging indications: one P-RNTI DCI per queued page. On the real
  // PDCCH the paging record set rides on the PDSCH; a sniffer observes the
  // P-RNTI DCI itself.
  while (!page_queue_.empty()) {
    page_queue_.pop_front();
    Dci dci;
    dci.direction = Direction::kDownlink;
    dci.rnti = kPagingRnti;
    dci.mcs = 2;
    dci.nprb = 2;
    result.pdcch.dcis.push_back(encode_dci(dci));
  }

  // --- RACH / RRC state machines.
  for (auto it = pending_.begin(); it != pending_.end();) {
    auto& pc = *it;
    const TimeMs elapsed = now - pc.started;
    bool done = false;
    if (pc.contention_free) {
      if (elapsed == kCfMsg1Offset) {
        result.rach.push_back(RachPreamble{now, config_.cell, pc.preamble});
      } else if (elapsed == kCfMsg2Offset) {
        pc.rnti = rnti_manager_.allocate(now);
        result.rars.push_back(RandomAccessResponse{now, config_.cell, pc.preamble, pc.rnti});
      } else if (elapsed >= kCfDoneOffset) {
        complete_connection(pc, now, result);
        done = true;
      }
    } else {
      if (elapsed == kMsg1Offset) {
        result.rach.push_back(RachPreamble{now, config_.cell, pc.preamble});
      } else if (elapsed == kMsg2Offset) {
        pc.rnti = rnti_manager_.allocate(now);
        result.rars.push_back(RandomAccessResponse{now, config_.cell, pc.preamble, pc.rnti});
      } else if (elapsed == kMsg3Offset) {
        // With 5G-style concealment, the on-air identity is a one-time
        // SUCI-like value; otherwise the plain S-TMSI leaks (the side
        // channel the paper's identity mapping rides on).
        Tmsi on_air = pc.tmsi;
        if (config_.conceal_identity) {
          on_air = static_cast<Tmsi>(rng_());
          pc.on_air_identity = on_air;
        }
        result.rrc_requests.push_back(RrcConnectionRequest{now, config_.cell, pc.rnti, on_air});
      } else if (elapsed >= kMsg4Offset) {
        const Tmsi echoed = config_.conceal_identity ? pc.on_air_identity : pc.tmsi;
        result.rrc_setups.push_back(RrcConnectionSetup{now, config_.cell, pc.rnti, echoed});
        // Msg4 is itself a downlink allocation to the fresh C-RNTI.
        Dci dci;
        dci.direction = Direction::kDownlink;
        dci.rnti = pc.rnti;
        dci.mcs = 4;
        dci.nprb = 2;
        result.pdcch.dcis.push_back(encode_dci(dci));
        complete_connection(pc, now, result);
        done = true;
      }
    }
    it = done ? pending_.erase(it) : std::next(it);
  }

  // --- Link adaptation + inactivity release.
  std::vector<UeId> to_release;
  for (auto& [ue, ctx] : contexts_) {
    ctx.channel.step();
    const bool drained = ctx.dl_buffer == 0 && ctx.ul_buffer == 0;
    if (drained && now - ctx.last_activity >= config_.profile.inactivity_timeout) {
      to_release.push_back(ue);
    }
  }
  for (const UeId ue : to_release) {
    const auto it = contexts_.find(ue);
    result.rrc_releases.push_back(RrcConnectionRelease{now, config_.cell, it->second.rnti});
    rnti_manager_.release(it->second.rnti, now);
    contexts_.erase(it);
    result.released.push_back(ue);
  }

  // --- HARQ retransmissions that fell due: same grant, NDI untoggled.
  for (std::size_t i = 0; i < retx_queue_.size();) {
    if (retx_queue_[i].first <= now) {
      result.pdcch.dcis.push_back(encode_dci(retx_queue_[i].second));
      retx_queue_[i] = retx_queue_.back();
      retx_queue_.pop_back();
    } else {
      ++i;
    }
  }

  // --- Countermeasure: periodic C-RNTI re-key. The reconfiguration is
  // carried inside the encrypted RRC connection, so the air interface
  // shows only: old RNTI falls silent, an unknown new one appears.
  if (config_.countermeasures.rnti_rekey_period > 0) {
    for (auto& [ue, ctx] : contexts_) {
      if (ctx.last_rekey == 0) ctx.last_rekey = now;
      if (now - ctx.last_rekey >= config_.countermeasures.rnti_rekey_period) {
        const Rnti fresh = rnti_manager_.allocate(now);
        rnti_manager_.release(ctx.rnti, now);
        ctx.rnti = fresh;
        ctx.last_rekey = now;
      }
    }
  }

  // --- Countermeasure: chaff grants to idle-but-connected UEs, blurring
  // per-app activity patterns.
  if (config_.countermeasures.dummy_grant_rate > 0.0) {
    for (auto& [ue, ctx] : contexts_) {
      if (ctx.dl_buffer > 0) continue;
      if (!rng_.bernoulli(config_.countermeasures.dummy_grant_rate)) continue;
      Dci dci;
      dci.direction = Direction::kDownlink;
      dci.rnti = ctx.rnti;
      dci.mcs = static_cast<std::uint8_t>(ctx.channel.current_mcs());
      dci.nprb = static_cast<std::uint8_t>(rng_.uniform_int(1, 8));
      result.pdcch.dcis.push_back(encode_dci(dci));
    }
  }

  // --- Scheduling, both directions (FDD: independent PRB budgets).
  schedule_direction(Direction::kDownlink, now, result);
  schedule_direction(Direction::kUplink, now, result);

  return result;
}

void Enb::schedule_direction(Direction dir, TimeMs now, EnbStepResult& result) {
  std::vector<SchedCandidate> candidates;
  std::vector<UeContext*> owners;
  for (auto& [ue, ctx] : contexts_) {
    const int buffer = dir == Direction::kDownlink ? ctx.dl_buffer : ctx.ul_buffer;
    if (buffer <= 0) continue;
    SchedCandidate c;
    c.rnti = ctx.rnti;
    c.buffer_bytes = buffer;
    c.mcs = ctx.channel.current_mcs();
    c.avg_rate = dir == Direction::kDownlink ? ctx.avg_rate_dl : ctx.avg_rate_ul;
    candidates.push_back(c);
    owners.push_back(&ctx);
  }

  Scheduler& scheduler = dir == Direction::kDownlink ? *dl_scheduler_ : *ul_scheduler_;
  const auto decisions =
      scheduler.schedule(candidates, total_prb_, config_.profile.max_prb_per_ue);

  // Apply grants: drain buffers, update PF state, emit DCIs.
  std::unordered_map<Rnti, int> served;  // bytes actually served per RNTI
  for (const auto& d : decisions) {
    int nprb = d.nprb;
    if (config_.countermeasures.pad_to_bytes > 0) {
      // Traffic morphing: round the grant up the padding ladder so the
      // observable TBS no longer tracks the app payload precisely.
      const int padded = pad_tb_bytes(d.tb_bytes, config_.countermeasures);
      nprb = prbs_needed(d.mcs, padded, config_.profile.max_prb_per_ue);
    }
    Dci dci;
    dci.direction = dir;
    dci.rnti = d.rnti;
    dci.mcs = static_cast<std::uint8_t>(d.mcs);
    dci.nprb = static_cast<std::uint8_t>(nprb);
    dci.ndi = true;
    result.pdcch.dcis.push_back(encode_dci(dci));
    served[d.rnti] = d.tb_bytes;
    // Transport-block failure: the same grant reappears one HARQ RTT
    // later with the NDI untoggled.
    if (config_.profile.harq_bler > 0.0 && rng_.bernoulli(config_.profile.harq_bler)) {
      Dci retx = dci;
      retx.ndi = false;
      retx_queue_.emplace_back(now + kHarqRtt, retx);
    }
  }
  for (UeContext* ctx : owners) {
    const auto it = served.find(ctx->rnti);
    const int tb = it == served.end() ? 0 : it->second;
    if (dir == Direction::kDownlink) {
      if (tb > 0) {
        ctx->dl_buffer = std::max(0, ctx->dl_buffer - tb);
        ctx->last_activity = now;
        ctx->next_harq = static_cast<std::uint8_t>((ctx->next_harq + 1) & 0x07);
      }
      ctx->avg_rate_dl = (1.0 - kPfAlpha) * ctx->avg_rate_dl + kPfAlpha * tb;
    } else {
      if (tb > 0) {
        ctx->ul_buffer = std::max(0, ctx->ul_buffer - tb);
        ctx->last_activity = now;
      }
      ctx->avg_rate_ul = (1.0 - kPfAlpha) * ctx->avg_rate_ul + kPfAlpha * tb;
    }
  }
}

}  // namespace ltefp::lte
