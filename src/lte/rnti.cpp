#include "lte/rnti.hpp"

#include <stdexcept>

namespace ltefp::lte {

RntiManager::RntiManager(RntiManagerConfig config, Rng rng)
    : config_(config), rng_(rng) {}

bool RntiManager::usable(Rnti rnti, TimeMs /*now*/) const {
  return !active_.contains(rnti) && !cooling_.contains(rnti);
}

void RntiManager::expire_cooldowns(TimeMs now) {
  while (!cooldown_.empty() && now - cooldown_.front().released_at >= config_.reuse_cooldown) {
    cooling_.erase(cooldown_.front().rnti);
    cooldown_.pop_front();
  }
}

Rnti RntiManager::allocate(TimeMs now) {
  expire_cooldowns(now);
  constexpr int kPoolSize = kMaxCRnti - kMinCRnti + 1;
  if (config_.randomize) {
    // Rejection sampling: the pool is ~65k values and cells hold at most a
    // few hundred active UEs, so this terminates almost immediately.
    for (int attempt = 0; attempt < 4 * kPoolSize; ++attempt) {
      const auto candidate =
          static_cast<Rnti>(rng_.uniform_int(kMinCRnti, kMaxCRnti));
      if (usable(candidate, now)) {
        active_.insert(candidate);
        return candidate;
      }
    }
    throw std::runtime_error("RntiManager: C-RNTI pool exhausted");
  }
  for (int attempt = 0; attempt < kPoolSize; ++attempt) {
    const Rnti candidate = next_sequential_;
    next_sequential_ =
        next_sequential_ >= kMaxCRnti ? kMinCRnti : static_cast<Rnti>(next_sequential_ + 1);
    if (usable(candidate, now)) {
      active_.insert(candidate);
      return candidate;
    }
  }
  throw std::runtime_error("RntiManager: C-RNTI pool exhausted");
}

void RntiManager::release(Rnti rnti, TimeMs now) {
  if (active_.erase(rnti) == 0) return;  // double release is a no-op
  cooldown_.push_back(Cooldown{rnti, now});
  cooling_.insert(rnti);
}

}  // namespace ltefp::lte
