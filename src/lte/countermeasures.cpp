#include "lte/countermeasures.hpp"

namespace ltefp::lte {

int pad_tb_bytes(int tb_bytes, const CountermeasureConfig& config) {
  if (config.pad_to_bytes <= 0 || tb_bytes <= 0) return tb_bytes;
  const int ladder = config.pad_to_bytes;
  return ((tb_bytes + ladder - 1) / ladder) * ladder;
}

}  // namespace ltefp::lte
