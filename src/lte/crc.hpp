// CRC-16 as attached to PDCCH DCI payloads (TS 36.212 Section 5.1.1,
// polynomial gCRC16(D) = D^16 + D^12 + D^5 + 1, i.e. CCITT 0x1021).
//
// On the real PDCCH the 16 CRC parity bits are scrambled (XORed) with the
// UE's RNTI. This is precisely the side channel the sniffer exploits: by
// re-computing the CRC over the received payload and XORing it against the
// received parity bits, a passive observer recovers the RNTI of every
// scheduled UE without any key material.
#pragma once

#include <cstdint>
#include <span>

#include "lte/types.hpp"

namespace ltefp::lte {

/// CRC-16/CCITT (polynomial 0x1021, init 0x0000) over a byte payload.
std::uint16_t crc16(std::span<const std::uint8_t> payload);

/// CRC parity masked with the RNTI, as transmitted on the PDCCH.
std::uint16_t crc16_masked(std::span<const std::uint8_t> payload, Rnti rnti);

/// Recovers the RNTI that was XORed into `masked_crc` for this payload.
/// (Inverse of crc16_masked; any 16-bit value is returned, the caller must
/// validate plausibility — exactly what real blind decoders like OWL/FALCON
/// have to do.)
Rnti recover_rnti(std::span<const std::uint8_t> payload, std::uint16_t masked_crc);

}  // namespace ltefp::lte
