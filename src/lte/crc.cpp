#include "lte/crc.hpp"

namespace ltefp::lte {

std::uint16_t crc16(std::span<const std::uint8_t> payload) {
  std::uint16_t crc = 0x0000;
  for (std::uint8_t byte : payload) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint16_t crc16_masked(std::span<const std::uint8_t> payload, Rnti rnti) {
  return static_cast<std::uint16_t>(crc16(payload) ^ rnti);
}

Rnti recover_rnti(std::span<const std::uint8_t> payload, std::uint16_t masked_crc) {
  return static_cast<Rnti>(crc16(payload) ^ masked_crc);
}

}  // namespace ltefp::lte
