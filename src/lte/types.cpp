#include "lte/types.hpp"

namespace ltefp::lte {

const char* to_string(Direction d) {
  return d == Direction::kDownlink ? "DL" : "UL";
}

bool direction_passes(LinkFilter filter, Direction d) {
  switch (filter) {
    case LinkFilter::kBoth: return true;
    case LinkFilter::kDownlinkOnly: return d == Direction::kDownlink;
    case LinkFilter::kUplinkOnly: return d == Direction::kUplink;
  }
  return false;
}

const char* to_string(Operator op) {
  switch (op) {
    case Operator::kLab: return "Lab";
    case Operator::kVerizon: return "Verizon";
    case Operator::kAtt: return "AT&T";
    case Operator::kTmobile: return "T-Mobile";
  }
  return "?";
}

}  // namespace ltefp::lte
