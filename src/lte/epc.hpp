// Minimal Evolved Packet Core: subscriber registry and TMSI allocation.
//
// The EPC assigns each attached subscriber a TMSI (Section II-A). TMSIs are
// much longer-lived than RNTIs and survive cell changes within a tracking
// area, which is what makes the paper's cross-cell history attack possible
// once RNTI -> TMSI mapping is done per cell.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

class Epc {
 public:
  explicit Epc(Rng rng);

  /// Registers a subscriber, assigning a fresh TMSI. Re-attaching an already
  /// known IMSI keeps its TMSI (periodic reallocation is modelled by
  /// `reallocate_tmsi`).
  Tmsi attach(Imsi imsi);

  /// GUTI reallocation: issues a new TMSI for the subscriber.
  Tmsi reallocate_tmsi(Imsi imsi);

  std::optional<Tmsi> tmsi_of(Imsi imsi) const;
  std::optional<Imsi> imsi_of(Tmsi tmsi) const;

  std::size_t subscriber_count() const { return by_imsi_.size(); }

 private:
  Tmsi fresh_tmsi();

  Rng rng_;
  std::unordered_map<Imsi, Tmsi> by_imsi_;
  std::unordered_map<Tmsi, Imsi> by_tmsi_;
};

}  // namespace ltefp::lte
