// Per-UE radio channel quality model.
//
// Drives the link adaptation loop: the UE reports CQI derived from its SNR,
// the eNB picks the MCS from the CQI. Real-world operator cells show far
// more SNR churn than the paper's lab cell (multipath, mobility, load);
// volatility is therefore an OperatorProfile knob, and is one of the
// mechanisms behind the lab -> real-world accuracy drop in Tables III/IV.
//
// The SNR follows a mean-reverting AR(1) (Gauss-Markov) process, the
// standard discrete-time model for shadow-fading dynamics.
#pragma once

#include "common/rng.hpp"

namespace ltefp::lte {

struct ChannelConfig {
  double mean_snr_db = 24.0;   // long-run average
  double volatility_db = 0.0;  // innovation stddev per update
  double reversion = 0.05;     // pull toward the mean per update, in [0,1]
  double min_snr_db = -5.0;
  double max_snr_db = 30.0;
};

class ChannelModel {
 public:
  ChannelModel(ChannelConfig config, Rng rng);

  /// Advances the fading process one update step and returns the new SNR.
  double step();

  double snr_db() const { return snr_db_; }

  /// Wideband CQI 1..15 for an SNR (TS 36.213-style mapping: roughly one
  /// CQI step per ~1.9 dB across the -6..22 dB operating range).
  static int cqi_from_snr(double snr_db);

  /// I_MCS 0..28 the eNB scheduler selects for a reported CQI.
  static int mcs_from_cqi(int cqi);

  /// Convenience: current MCS for this channel state.
  int current_mcs() const { return mcs_from_cqi(cqi_from_snr(snr_db_)); }

 private:
  ChannelConfig config_;
  Rng rng_;
  double snr_db_;
};

}  // namespace ltefp::lte
