#include "lte/network.hpp"

#include <stdexcept>

namespace ltefp::lte {
namespace {

constexpr TimeMs kPageRetryInterval = 500;  // ms between paging attempts

}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed), epc_(rng_.fork()) {}

CellId Simulation::add_cell(const OperatorProfile& profile) {
  return add_cell(profile, CountermeasureConfig{}, false);
}

CellId Simulation::add_cell(const OperatorProfile& profile,
                            const CountermeasureConfig& countermeasures,
                            bool conceal_identity) {
  const auto cell = static_cast<CellId>(enbs_.size());
  EnbConfig config;
  config.cell = cell;
  config.profile = profile;
  config.countermeasures = countermeasures;
  config.conceal_identity = conceal_identity;
  enbs_.push_back(std::make_unique<Enb>(config, rng_.fork()));
  return cell;
}

UeId Simulation::add_ue(Imsi imsi) {
  const UeId ue = next_ue_++;
  UeState st;
  st.imsi = imsi;
  st.tmsi = epc_.attach(imsi);
  ues_.emplace(ue, std::move(st));
  return ue;
}

void Simulation::set_traffic_source(UeId ue, std::unique_ptr<TrafficSource> source) {
  state_of(ue).source = std::move(source);
}

Enb& Simulation::enb_of(CellId cell) {
  if (cell >= enbs_.size()) throw std::out_of_range("Simulation: unknown cell");
  return *enbs_[cell];
}
const Enb& Simulation::enb_of(CellId cell) const {
  if (cell >= enbs_.size()) throw std::out_of_range("Simulation: unknown cell");
  return *enbs_[cell];
}

Simulation::UeState& Simulation::state_of(UeId ue) {
  const auto it = ues_.find(ue);
  if (it == ues_.end()) throw std::out_of_range("Simulation: unknown UE");
  return it->second;
}
const Simulation::UeState& Simulation::state_of(UeId ue) const {
  const auto it = ues_.find(ue);
  if (it == ues_.end()) throw std::out_of_range("Simulation: unknown UE");
  return it->second;
}

void Simulation::camp(UeId ue, CellId cell) {
  if (cell >= enbs_.size()) throw std::out_of_range("Simulation::camp: unknown cell");
  auto& st = state_of(ue);
  if (st.camped != kNoCell && st.state != RrcState::kIdle) {
    enb_of(st.camped).release_ue(ue, now_);
  }
  st.camped = cell;
  st.state = RrcState::kIdle;
}

void Simulation::connect(UeId ue) {
  auto& st = state_of(ue);
  if (st.camped == kNoCell || st.state != RrcState::kIdle) return;
  enb_of(st.camped).start_connection(ue, st.tmsi, now_);
  st.state = RrcState::kConnecting;
}

void Simulation::move(UeId ue, CellId target) {
  if (target >= enbs_.size()) throw std::out_of_range("Simulation::move: unknown cell");
  auto& st = state_of(ue);
  if (st.camped == target) return;
  if (st.state == RrcState::kConnected || st.state == RrcState::kConnecting) {
    // X2-style handover: leave the source silently, contention-free RACH in
    // the target under a brand-new C-RNTI.
    if (st.camped != kNoCell) enb_of(st.camped).release_ue(ue, now_);
    st.camped = target;
    st.state = RrcState::kConnecting;
    enb_of(target).admit_handover(ue, st.tmsi, now_);
  } else {
    st.camped = target;  // idle reselection
  }
}

void Simulation::add_observer(CellId cell, PdcchObserver& observer) {
  if (cell >= enbs_.size()) throw std::out_of_range("Simulation: unknown cell");
  observers_[cell].push_back(&observer);
}

void Simulation::deliver_pending(UeId ue, UeState& st) {
  auto& enb = enb_of(st.camped);
  if (st.pending_ul > 0) {
    enb.push_traffic(ue, Direction::kUplink, st.pending_ul, now_);
    st.pending_ul = 0;
  }
  if (st.pending_dl > 0) {
    enb.push_traffic(ue, Direction::kDownlink, st.pending_dl, now_);
    st.pending_dl = 0;
  }
}

void Simulation::step() {
  // 1. Application traffic generation and connection triggering.
  for (auto& [ue, st] : ues_) {
    if (st.source) {
      packet_scratch_.clear();
      st.source->step(now_, packet_scratch_);
      for (const AppPacket& pkt : packet_scratch_) {
        if (pkt.bytes <= 0) continue;
        if (st.state == RrcState::kConnected) {
          enb_of(st.camped).push_traffic(ue, pkt.direction, pkt.bytes, now_);
        } else if (pkt.direction == Direction::kUplink) {
          st.pending_ul += pkt.bytes;
        } else {
          st.pending_dl += pkt.bytes;
        }
      }
    }
    if (st.state == RrcState::kIdle && st.camped != kNoCell) {
      if (st.pending_ul > 0) {
        // Mobile-originated data: UE RACHes on its own.
        enb_of(st.camped).start_connection(ue, st.tmsi, now_);
        st.state = RrcState::kConnecting;
      } else if (st.pending_dl > 0 && now_ >= st.page_retry_at) {
        // Mobile-terminated data: the core pages, the UE answers with RACH.
        enb_of(st.camped).page(st.tmsi);
        enb_of(st.camped).start_connection(ue, st.tmsi, now_);
        st.state = RrcState::kConnecting;
        st.page_retry_at = now_ + kPageRetryInterval;
      }
    }
  }

  // 2. Per-cell subframe processing and event dispatch.
  for (auto& enb : enbs_) {
    EnbStepResult result = enb->step(now_);

    for (const auto& est : result.established) {
      const auto it = ues_.find(est.ue);
      if (it == ues_.end()) continue;
      auto& st = it->second;
      st.state = RrcState::kConnected;
      deliver_pending(est.ue, st);
    }
    for (const UeId released : result.released) {
      const auto it = ues_.find(released);
      if (it != ues_.end() && it->second.camped == enb->cell()) {
        it->second.state = RrcState::kIdle;
      }
    }

    const auto obs_it = observers_.find(enb->cell());
    if (obs_it != observers_.end()) {
      for (PdcchObserver* obs : obs_it->second) {
        for (const auto& e : result.rach) obs->on_rach(e);
        for (const auto& e : result.rars) obs->on_rar(e);
        for (const auto& e : result.rrc_requests) obs->on_rrc_request(e);
        for (const auto& e : result.rrc_setups) obs->on_rrc_setup(e);
        for (const auto& e : result.rrc_releases) obs->on_rrc_release(e);
        obs->on_subframe(result.pdcch);
      }
    }
  }

  ++now_;
}

void Simulation::run_for(TimeMs duration) {
  const TimeMs end = now_ + duration;
  while (now_ < end) step();
}

std::optional<Rnti> Simulation::current_rnti(UeId ue) const {
  const auto& st = state_of(ue);
  if (st.camped == kNoCell) return std::nullopt;
  return enb_of(st.camped).rnti_of(ue);
}

Tmsi Simulation::tmsi_of(UeId ue) const { return state_of(ue).tmsi; }
Imsi Simulation::imsi_of(UeId ue) const { return state_of(ue).imsi; }

bool Simulation::is_connected(UeId ue) const {
  return state_of(ue).state == RrcState::kConnected;
}

CellId Simulation::camped_cell(UeId ue) const { return state_of(ue).camped; }

const OperatorProfile& Simulation::cell_profile(CellId cell) const {
  return enb_of(cell).profile();
}

}  // namespace ltefp::lte
