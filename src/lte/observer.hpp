// Interface for anything listening to a cell's air interface — in this
// project, the passive sniffer (src/sniffer). An observer receives exactly
// what is broadcast in plain text: PDCCH subframes and the unprotected
// RACH/RRC connection-establishment messages. Nothing here exposes
// simulator-internal state (UeIds, buffers, ground truth).
#pragma once

#include "lte/dci.hpp"
#include "lte/rrc.hpp"

namespace ltefp::lte {

class PdcchObserver {
 public:
  virtual ~PdcchObserver() = default;

  /// Full PDCCH content of one subframe (encoded DCIs, CRCs RNTI-masked).
  virtual void on_subframe(const PdcchSubframe& subframe) = 0;

  // RACH / RRC connection procedure, all observable over the air.
  virtual void on_rach(const RachPreamble&) {}
  virtual void on_rar(const RandomAccessResponse&) {}
  virtual void on_rrc_request(const RrcConnectionRequest&) {}
  virtual void on_rrc_setup(const RrcConnectionSetup&) {}
  virtual void on_rrc_release(const RrcConnectionRelease&) {}
};

}  // namespace ltefp::lte
