// Per-operator cell configuration profiles.
//
// The paper trains one model per mobile network operator because
// "operator-specific configuration, such as the specific resource
// scheduling algorithms that eNodeBs use ... affect the radio resource
// allocation" (Section VII). These profiles encode the knobs through which
// that heterogeneity — and the lab/real-world gap of Tables III vs IV —
// enters the simulation:
//   - channel bandwidth (PRB budget),
//   - MAC scheduling discipline,
//   - cell load (number of competing background UEs and their activity),
//   - RRC inactivity timeout (drives RNTI refresh cadence),
//   - channel volatility (MCS churn -> TBS churn for identical app data),
//   - sniffer decode-miss probability (SDR reception is imperfect in the
//     field; in the lab the sniffer sits next to the eNodeB).
#pragma once

#include <cstdint>

#include "common/sim_time.hpp"
#include "lte/bandwidth.hpp"
#include "lte/scheduler.hpp"
#include "lte/types.hpp"

namespace ltefp::lte {

struct OperatorProfile {
  Operator op = Operator::kLab;
  Bandwidth bandwidth = Bandwidth::kMhz10;
  SchedulerKind scheduler = SchedulerKind::kRoundRobin;

  /// Competing UEs the operator's cell serves besides the experiment UEs.
  int background_ues = 0;
  /// Mean per-background-UE offered load, bytes per second (bursty web-like
  /// traffic is generated around this mean).
  double background_load_bps = 0.0;

  /// RRC inactivity timeout before the eNB releases the connection
  /// (paper Section II-A: default 10 s).
  TimeMs inactivity_timeout = 10'000;

  /// Shadow-fading innovation per step, dB (0 = perfectly static lab cell).
  double channel_volatility_db = 0.0;
  /// Long-run mean SNR of experiment UEs.
  double mean_snr_db = 24.0;

  /// Probability the sniffer fails to decode any given DCI in this
  /// environment.
  double sniffer_miss_rate = 0.0;
  /// Probability a decoded DCI is a false detection (CRC aliasing onto a
  /// plausible RNTI), per subframe.
  double sniffer_false_rate = 0.0;

  /// Largest single-UE grant per TTI (operators cap this to keep the
  /// control channel fair under load).
  int max_prb_per_ue = 100;

  /// HARQ block-error rate: fraction of transport blocks that fail and are
  /// retransmitted ~8 ms later. Link adaptation targets ~10% BLER on live
  /// networks; the cabled lab link is nearly error-free. Retransmissions
  /// appear on the PDCCH as duplicate grants (NDI not toggled) — noise a
  /// real sniffer capture always contains.
  double harq_bler = 0.0;

  /// Session-to-session variation: each capture session happens at a
  /// different time and place, so its mean SNR and cell load differ from
  /// the training sessions'. This train/test distribution shift is the
  /// main driver of the paper's lab -> real-world accuracy drop.
  double session_snr_jitter_db = 0.0;
  double session_load_jitter = 0.0;  // relative stddev of background load
};

/// Applies deterministic per-session perturbations derived from `seed`.
OperatorProfile perturb_for_session(const OperatorProfile& profile, std::uint64_t seed);

/// Canonical profile for a given operator, matching DESIGN.md.
OperatorProfile operator_profile(Operator op);

}  // namespace ltefp::lte
