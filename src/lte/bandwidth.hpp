// LTE channel bandwidth to PRB-count mapping (TS 36.101 Table 5.6-1).
#pragma once

#include <stdexcept>

namespace ltefp::lte {

enum class Bandwidth { kMhz1_4, kMhz3, kMhz5, kMhz10, kMhz15, kMhz20 };

constexpr int prb_count(Bandwidth bw) {
  switch (bw) {
    case Bandwidth::kMhz1_4: return 6;
    case Bandwidth::kMhz3: return 15;
    case Bandwidth::kMhz5: return 25;
    case Bandwidth::kMhz10: return 50;
    case Bandwidth::kMhz15: return 75;
    case Bandwidth::kMhz20: return 100;
  }
  throw std::invalid_argument("prb_count: unknown bandwidth");
}

}  // namespace ltefp::lte
