// Streaming binary trace reader — the strict counterpart of Writer.
//
// Validation contract (the acceptance criterion for the format): a file
// that is truncated, bit-flipped, or structurally malformed is rejected
// with a TraceStoreError naming the problem (bad magic, CRC mismatch at
// chunk N, truncated chunk, missing end marker, record-count mismatch...).
// A Reader never returns a silently partial trace: records only become
// visible after their chunk's CRC has verified, and read_all() only
// succeeds once the 'E' chunk confirmed the total count and EOF followed.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <vector>

#include "sniffer/trace.hpp"
#include "tracestore/format.hpp"

namespace ltefp::tracestore {

class Reader {
 public:
  /// Reads and validates the header and metadata chunk.
  explicit Reader(std::istream& in);
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  const TraceMeta& meta() const { return meta_; }

  /// Streams the next record; false at a clean end of trace. Throws
  /// TraceStoreError on any integrity problem.
  bool next(sniffer::TraceRecord& record);

  /// Remaining records as one Trace (all-or-nothing).
  sniffer::Trace read_all();

  /// Records yielded so far.
  std::size_t records_read() const { return records_read_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  TraceMeta meta_;
  std::size_t records_read_ = 0;
};

/// Convenience: open, fully read and validate one trace file image.
sniffer::Trace read_trace(std::istream& in, TraceMeta* meta = nullptr);

}  // namespace ltefp::tracestore
