#include "tracestore/writer.hpp"

#include <ostream>

#include "lte/crc.hpp"

namespace ltefp::tracestore {
namespace {

ByteWriter encode_meta(const TraceMeta& meta) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(meta.op));
  w.put_varint(meta.app);
  w.put_signed(meta.day);
  w.put_varint(meta.seed);
  w.put_varint(meta.cell);
  w.put_signed(meta.session_start);
  w.put_string(meta.label);
  return w;
}

}  // namespace

Writer::Writer(std::ostream& out, const TraceMeta& meta, WriterOptions options)
    : out_(out), options_(options) {
  if (options_.records_per_chunk == 0) options_.records_per_chunk = 1;
  out_.write(kMagic, sizeof(kMagic));
  out_.put(static_cast<char>(kFormatVersion));
  bytes_written_ += sizeof(kMagic) + 1;
  write_chunk(kChunkMeta, encode_meta(meta));
}

void Writer::add(const sniffer::TraceRecord& record) {
  if (closed_) throw TraceStoreError("Writer::add: writer already closed");
  chunk_.put_signed(record.time - prev_time_);
  prev_time_ = record.time;

  const auto [it, inserted] =
      rnti_dict_.try_emplace(record.rnti, static_cast<std::uint32_t>(rnti_dict_.size()));
  if (inserted) {
    // Index == current dictionary size signals "new entry, value follows".
    chunk_.put_varint(rnti_dict_.size() - 1);
    chunk_.put_varint(record.rnti);
  } else {
    chunk_.put_varint(it->second);
  }

  chunk_.put_varint((zigzag_encode(record.tb_bytes) << 1) |
                    static_cast<std::uint64_t>(record.direction));
  chunk_.put_signed(static_cast<std::int64_t>(record.cell) -
                    static_cast<std::int64_t>(prev_cell_));
  prev_cell_ = record.cell;

  ++chunk_records_;
  ++total_records_;
  if (chunk_records_ >= options_.records_per_chunk) flush_chunk();
}

void Writer::flush_chunk() {
  if (chunk_records_ == 0) return;
  ByteWriter payload;
  payload.put_varint(chunk_records_);
  payload.append(chunk_.bytes());
  write_chunk(kChunkRecords, payload);
  chunk_.clear();
  chunk_records_ = 0;
}

void Writer::close() {
  if (closed_) return;
  flush_chunk();
  ByteWriter end;
  end.put_varint(total_records_);
  write_chunk(kChunkEnd, end);
  closed_ = true;
  out_.flush();
}

void Writer::write_chunk(std::uint8_t kind, const ByteWriter& payload) {
  ByteWriter frame;
  frame.put_u8(kind);
  frame.put_varint(payload.size());
  out_.write(reinterpret_cast<const char*>(frame.bytes().data()),
             static_cast<std::streamsize>(frame.size()));
  out_.write(reinterpret_cast<const char*>(payload.bytes().data()),
             static_cast<std::streamsize>(payload.size()));
  const std::uint16_t crc = lte::crc16(payload.bytes());
  const char crc_le[2] = {static_cast<char>(crc & 0xFF), static_cast<char>(crc >> 8)};
  out_.write(crc_le, 2);
  bytes_written_ += frame.size() + payload.size() + 2;
  if (!out_) throw TraceStoreError("trace write failed (stream error)");
}

std::size_t write_trace(std::ostream& out, const TraceMeta& meta, const sniffer::Trace& trace,
                        WriterOptions options) {
  Writer writer(out, meta, options);
  for (const auto& r : trace) writer.add(r);
  writer.close();
  return writer.bytes_written();
}

}  // namespace ltefp::tracestore
