// Binary DCI trace format ("LTT" files) — the capture-once/replay-many
// substrate for every experiment in the repo.
//
// A trace file is a 5-byte header followed by CRC-framed chunks:
//
//   file   := magic "LTT1" | version u8 | chunk*
//   chunk  := kind u8 | payload_len varint | payload | crc16(payload) LE
//
// Chunk kinds: 'M' metadata (exactly once, first), 'R' records (0+),
// 'E' end-of-trace (exactly once, last; payload = total record count).
// The CRC-16 is the same CCITT polynomial the PDCCH attaches to DCIs
// (`lte::crc16`) — fitting, since the payloads are decoded DCIs.
//
// Records are delta/dictionary compressed (see writer.hpp); integers use
// LEB128 varints with zigzag for signed values. A missing 'E' chunk means
// the file was truncated mid-capture; a CRC mismatch means corruption.
// Readers must reject both with a diagnostic, never a partial trace.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::tracestore {

/// File magic: "LTT1" (LTefp Trace, family 1).
inline constexpr char kMagic[4] = {'L', 'T', 'T', '1'};
inline constexpr std::uint8_t kFormatVersion = 1;

/// Chunk kinds.
inline constexpr std::uint8_t kChunkMeta = 'M';
inline constexpr std::uint8_t kChunkRecords = 'R';
inline constexpr std::uint8_t kChunkEnd = 'E';

/// Upper bound on a single chunk's payload, so a corrupted length varint
/// cannot trigger a multi-gigabyte allocation before the CRC check.
inline constexpr std::uint64_t kMaxChunkPayload = 1ULL << 26;  // 64 MiB

/// Any structural problem with a trace file: bad magic, unsupported
/// version, framing error, CRC mismatch, truncation, overlong varint.
class TraceStoreError : public std::runtime_error {
 public:
  explicit TraceStoreError(const std::string& what) : std::runtime_error(what) {}
};

/// Per-trace capture metadata, persisted in the 'M' chunk and mirrored in
/// the corpus manifest so experiments can filter without decoding files.
/// `app` is an opaque numeric code (the attack layer stores apps::AppId);
/// `label` is its human-readable name.
struct TraceMeta {
  lte::Operator op = lte::Operator::kLab;
  std::uint16_t app = 0;
  std::string label;
  std::int32_t day = 0;
  std::uint64_t seed = 0;
  lte::CellId cell = 0;
  TimeMs session_start = 0;

  bool operator==(const TraceMeta&) const = default;
};

}  // namespace ltefp::tracestore
