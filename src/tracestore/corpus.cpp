#include "tracestore/corpus.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/parallel.hpp"
#include "tracestore/reader.hpp"

namespace fs = std::filesystem;

namespace ltefp::tracestore {
namespace {

constexpr const char* kManifestName = "manifest.csv";

const std::vector<std::string> kManifestHeader = {
    "seq", "file", "op", "app", "label", "day", "seed", "cell",
    "session_start_ms", "records", "bytes"};

std::uint64_t parse_u64(const std::string& cell, const char* field, std::size_t row) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw TraceStoreError("manifest row " + std::to_string(row) + ": field '" + field +
                          "' is not a number: '" + cell + "'");
  }
  return value;
}

std::int64_t parse_i64(const std::string& cell, const char* field, std::size_t row) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(cell.data(), cell.data() + cell.size(), value);
  if (ec != std::errc{} || ptr != cell.data() + cell.size()) {
    throw TraceStoreError("manifest row " + std::to_string(row) + ": field '" + field +
                          "' is not a number: '" + cell + "'");
  }
  return value;
}

}  // namespace

bool CorpusFilter::matches(const TraceMeta& meta) const {
  if (app && *app != meta.app) return false;
  if (op && *op != meta.op) return false;
  if (day_min && meta.day < *day_min) return false;
  if (day_max && meta.day > *day_max) return false;
  return true;
}

CorpusWriter::CorpusWriter(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw TraceStoreError("corpus: cannot create directory " + directory_ + ": " + ec.message());
  }
}

CorpusWriter::~CorpusWriter() {
  // Best effort: an exception here would mask the original error; an
  // unfinished corpus is simply invisible to Corpus::open.
  try {
    finish();
  } catch (...) {
  }
}

const CorpusEntry& CorpusWriter::add(const TraceMeta& meta, const sniffer::Trace& trace) {
  if (finished_) throw TraceStoreError("corpus: add() after finish()");
  CorpusEntry entry;
  entry.seq = entries_.size();
  char name[32];
  std::snprintf(name, sizeof(name), "trace_%06zu.ltt", entry.seq);
  entry.file = name;
  entry.meta = meta;
  entry.records = trace.size();

  const fs::path path = fs::path(directory_) / entry.file;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceStoreError("corpus: cannot write " + path.string());
  entry.bytes = write_trace(out, meta, trace);
  if (!out) throw TraceStoreError("corpus: write failed for " + path.string());

  entries_.push_back(std::move(entry));
  return entries_.back();
}

void CorpusWriter::finish() {
  if (finished_) return;
  const fs::path path = fs::path(directory_) / kManifestName;
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw TraceStoreError("corpus: cannot write " + path.string());
  CsvWriter csv(out);
  csv.write_row(kManifestHeader);
  for (const auto& e : entries_) {
    csv.write_row({std::to_string(e.seq), e.file,
                   std::to_string(static_cast<int>(e.meta.op)), std::to_string(e.meta.app),
                   e.meta.label, std::to_string(e.meta.day), std::to_string(e.meta.seed),
                   std::to_string(e.meta.cell), std::to_string(e.meta.session_start),
                   std::to_string(e.records), std::to_string(e.bytes)});
  }
  out.flush();
  if (!out) throw TraceStoreError("corpus: manifest write failed for " + path.string());
  finished_ = true;
}

std::size_t CorpusWriter::total_bytes() const {
  std::size_t sum = 0;
  for (const auto& e : entries_) sum += e.bytes;
  return sum;
}

bool Corpus::exists(const std::string& directory) {
  std::error_code ec;
  return fs::is_regular_file(fs::path(directory) / kManifestName, ec);
}

Corpus Corpus::open(const std::string& directory) {
  const fs::path path = fs::path(directory) / kManifestName;
  std::ifstream in(path);
  if (!in) throw TraceStoreError("corpus: no manifest at " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto rows = parse_csv(buffer.str());
  if (rows.empty() || rows[0] != kManifestHeader) {
    throw TraceStoreError("corpus: malformed manifest header in " + path.string());
  }

  Corpus corpus;
  corpus.directory_ = directory;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != kManifestHeader.size()) {
      throw TraceStoreError("corpus: manifest row " + std::to_string(i) + " has " +
                            std::to_string(row.size()) + " fields, expected " +
                            std::to_string(kManifestHeader.size()));
    }
    CorpusEntry e;
    e.seq = parse_u64(row[0], "seq", i);
    e.file = row[1];
    const std::uint64_t op = parse_u64(row[2], "op", i);
    if (op > static_cast<std::uint64_t>(lte::Operator::kTmobile)) {
      throw TraceStoreError("corpus: manifest row " + std::to_string(i) +
                            ": unknown operator code " + row[2]);
    }
    e.meta.op = static_cast<lte::Operator>(op);
    e.meta.app = static_cast<std::uint16_t>(parse_u64(row[3], "app", i));
    e.meta.label = row[4];
    e.meta.day = static_cast<std::int32_t>(parse_i64(row[5], "day", i));
    e.meta.seed = parse_u64(row[6], "seed", i);
    e.meta.cell = static_cast<lte::CellId>(parse_u64(row[7], "cell", i));
    e.meta.session_start = parse_i64(row[8], "session_start_ms", i);
    e.records = parse_u64(row[9], "records", i);
    e.bytes = parse_u64(row[10], "bytes", i);
    corpus.entries_.push_back(std::move(e));
  }
  return corpus;
}

std::vector<CorpusEntry> Corpus::select(const CorpusFilter& filter) const {
  std::vector<CorpusEntry> out;
  for (const auto& e : entries_) {
    if (filter.matches(e.meta)) out.push_back(e);
  }
  return out;
}

sniffer::Trace Corpus::load(const CorpusEntry& entry) const {
  const fs::path path = fs::path(directory_) / entry.file;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceStoreError("corpus: cannot open " + path.string());
  Reader reader(in);
  if (reader.meta() != entry.meta) {
    throw TraceStoreError("corpus: " + entry.file +
                          ": embedded metadata disagrees with manifest row " +
                          std::to_string(entry.seq));
  }
  sniffer::Trace trace = reader.read_all();
  if (trace.size() != entry.records) {
    throw TraceStoreError("corpus: " + entry.file + ": manifest declares " +
                          std::to_string(entry.records) + " records, file holds " +
                          std::to_string(trace.size()));
  }
  return trace;
}

std::vector<Corpus::LoadedTrace> Corpus::load_all(const CorpusFilter& filter) const {
  const std::vector<CorpusEntry> selected = select(filter);
  return parallel_map(selected.size(), [&](std::size_t i) {
    LoadedTrace out;
    out.entry = selected[i];
    out.trace = load(selected[i]);
    return out;
  });
}

}  // namespace ltefp::tracestore
