// Streaming binary trace writer.
//
// Record compression, chosen for the shape of DCI traces:
//  - timestamps are near-monotone → zigzag delta vs the previous record;
//  - one victim uses a handful of RNTIs → per-trace dictionary, indices
//    instead of 16-bit values (a new RNTI is appended inline on first use);
//  - the cell rarely changes → zigzag delta vs the previous record's cell;
//  - TBS and direction share one varint: (zigzag(tb_bytes) << 1) | dir.
// Dictionary and delta state persist across chunks; chunks exist only for
// framing/CRC granularity, so a flipped bit is localised to one chunk's
// diagnostic instead of poisoning the whole file.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <unordered_map>

#include "sniffer/trace.hpp"
#include "tracestore/format.hpp"
#include "tracestore/varint.hpp"

namespace ltefp::tracestore {

struct WriterOptions {
  /// Records buffered per 'R' chunk before it is framed and flushed.
  std::size_t records_per_chunk = 4096;
};

class Writer {
 public:
  /// Writes the header and metadata chunk immediately.
  Writer(std::ostream& out, const TraceMeta& meta, WriterOptions options = {});

  /// close() must be called to emit the end chunk; a destroyed-but-unclosed
  /// Writer leaves a file that readers reject as truncated (by design).
  ~Writer() = default;

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void add(const sniffer::TraceRecord& record);

  /// Flushes buffered records and writes the 'E' chunk. Idempotent.
  void close();

  std::size_t records_written() const { return total_records_; }
  /// Bytes emitted so far (header + framed chunks).
  std::size_t bytes_written() const { return bytes_written_; }

 private:
  void flush_chunk();
  void write_chunk(std::uint8_t kind, const ByteWriter& payload);

  std::ostream& out_;
  WriterOptions options_;
  ByteWriter chunk_;
  std::size_t chunk_records_ = 0;
  std::size_t total_records_ = 0;
  std::size_t bytes_written_ = 0;
  bool closed_ = false;

  // Cross-chunk compression state.
  TimeMs prev_time_ = 0;
  lte::CellId prev_cell_ = 0;
  std::unordered_map<lte::Rnti, std::uint32_t> rnti_dict_;
};

/// One-shot convenience: header + records + end chunk. Returns bytes written.
std::size_t write_trace(std::ostream& out, const TraceMeta& meta, const sniffer::Trace& trace,
                        WriterOptions options = {});

}  // namespace ltefp::tracestore
