// LEB128 varint byte-buffer codec used by the tracestore chunks.
//
// Unsigned values are little-endian base-128 with a continuation bit;
// signed values are zigzag-folded first so small negatives stay small.
// The reader is fully bounds-checked and rejects overlong encodings —
// every decode failure throws TraceStoreError rather than reading garbage.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tracestore/format.hpp"

namespace ltefp::tracestore {

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Appends encoded values to a byte buffer (one per chunk payload).
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_signed(std::int64_t v) { put_varint(zigzag_encode(v)); }

  void put_string(const std::string& s) {
    put_varint(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  void append(std::span<const std::uint8_t> raw) {
    bytes_.insert(bytes_.end(), raw.begin(), raw.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }
  void clear() { bytes_.clear(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Decodes values from a chunk payload; throws TraceStoreError (with
/// `context` in the message) on any out-of-bounds or malformed read.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  std::uint8_t get_u8() {
    require(1, "byte");
    return bytes_[pos_++];
  }

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      require(1, "varint");
      const std::uint8_t byte = bytes_[pos_++];
      if (shift == 63 && (byte & 0x7E) != 0) fail("varint overflows 64 bits");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        if (byte == 0 && shift > 0) fail("overlong varint encoding");
        return value;
      }
      shift += 7;
      if (shift > 63) fail("varint longer than 10 bytes");
    }
  }

  std::int64_t get_signed() { return zigzag_decode(get_varint()); }

  std::string get_string() {
    const std::uint64_t len = get_varint();
    require(len, "string body");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  bool at_end() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw TraceStoreError(context_ + ": " + what);
  }

 private:
  void require(std::uint64_t n, const char* what) const {
    if (n > bytes_.size() - pos_) {
      fail(std::string("truncated ") + what + " (need " + std::to_string(n) + " bytes, have " +
           std::to_string(bytes_.size() - pos_) + ")");
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::string context_;
};

}  // namespace ltefp::tracestore
