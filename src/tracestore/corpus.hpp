// Directory-level trace corpus: many .ltt files plus a manifest index.
//
// The manifest (manifest.csv) mirrors each trace's metadata — app code,
// label, operator, day, seed, cell, session start, record/byte counts —
// so experiments filter and schedule loads WITHOUT decoding any trace
// file. This is the capture-once/replay-many layer: `attacks::` spills
// collected sessions here and the pipeline replays them bit-identically
// instead of re-running the radio simulation.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sniffer/trace.hpp"
#include "tracestore/format.hpp"
#include "tracestore/writer.hpp"

namespace ltefp::tracestore {

/// One manifest row: a trace file and its capture metadata.
struct CorpusEntry {
  std::size_t seq = 0;       // insertion order; replay iterates in seq order
  std::string file;          // filename relative to the corpus directory
  TraceMeta meta;
  std::size_t records = 0;
  std::size_t bytes = 0;     // encoded size of the trace file
};

/// Metadata predicate for filtered loading. Unset fields match anything.
struct CorpusFilter {
  std::optional<std::uint16_t> app;
  std::optional<lte::Operator> op;
  std::optional<std::int32_t> day_min;
  std::optional<std::int32_t> day_max;

  bool matches(const TraceMeta& meta) const;
};

/// Appends traces to a corpus directory (created if absent) and writes the
/// manifest on finish(). An unfinished corpus has no manifest, so readers
/// treat it as absent — interrupted captures are never half-visible.
class CorpusWriter {
 public:
  explicit CorpusWriter(std::string directory);
  ~CorpusWriter();

  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  /// Writes one trace file and records its manifest row.
  const CorpusEntry& add(const TraceMeta& meta, const sniffer::Trace& trace);

  /// Writes manifest.csv. Idempotent.
  void finish();

  const std::vector<CorpusEntry>& entries() const { return entries_; }
  std::size_t total_bytes() const;

 private:
  std::string directory_;
  std::vector<CorpusEntry> entries_;
  bool finished_ = false;
};

/// Read-only view of a finished corpus.
class Corpus {
 public:
  /// True when `directory` holds a corpus manifest.
  static bool exists(const std::string& directory);

  /// Parses the manifest; throws TraceStoreError when absent or malformed.
  static Corpus open(const std::string& directory);

  const std::string& directory() const { return directory_; }
  const std::vector<CorpusEntry>& entries() const { return entries_; }

  /// Entries matching `filter`, in seq order — metadata only, no decoding.
  std::vector<CorpusEntry> select(const CorpusFilter& filter) const;

  /// Decodes one entry's trace file, verifying CRC framing and that the
  /// file's embedded metadata matches the manifest row.
  sniffer::Trace load(const CorpusEntry& entry) const;

  /// One decoded trace paired with its manifest entry.
  struct LoadedTrace {
    CorpusEntry entry;
    sniffer::Trace trace;
  };

  /// Decodes every entry matching `filter`, in seq order. The .ltt files
  /// decode concurrently on the global pool (each task owns its own stream
  /// and output slot); the first decode error is rethrown. Result order is
  /// select() order at any thread count.
  std::vector<LoadedTrace> load_all(const CorpusFilter& filter = {}) const;

 private:
  std::string directory_;
  std::vector<CorpusEntry> entries_;
};

}  // namespace ltefp::tracestore
