#include "tracestore/reader.hpp"

#include <algorithm>
#include <istream>
#include <string>

#include "lte/crc.hpp"
#include "tracestore/varint.hpp"

namespace ltefp::tracestore {
namespace {

[[noreturn]] void fail(const std::string& what) { throw TraceStoreError("trace file: " + what); }

}  // namespace

struct Reader::Impl {
  explicit Impl(std::istream& in) : in(in) {}

  std::istream& in;
  std::size_t chunk_index = 0;   // 0 = metadata chunk
  bool saw_end = false;

  // Decoded-but-undelivered records of the current 'R' chunk.
  std::vector<sniffer::TraceRecord> pending;
  std::size_t pending_pos = 0;

  // Cross-chunk decompression state (mirrors Writer).
  TimeMs prev_time = 0;
  lte::CellId prev_cell = 0;
  std::vector<lte::Rnti> rnti_dict;

  /// Reads one byte; returns false on clean EOF (only legal between chunks).
  bool get_byte(std::uint8_t& byte) {
    const int c = in.get();
    if (c == std::istream::traits_type::eof()) return false;
    byte = static_cast<std::uint8_t>(c);
    return true;
  }

  std::uint8_t require_byte(const char* what) {
    std::uint8_t byte = 0;
    if (!get_byte(byte)) fail(std::string("truncated ") + what);
    return byte;
  }

  std::uint64_t read_frame_varint(const char* what) {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      const std::uint8_t byte = require_byte(what);
      if (shift == 63 && (byte & 0x7E) != 0) fail(std::string(what) + ": varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        if (byte == 0 && shift > 0) fail(std::string(what) + ": overlong varint");
        return value;
      }
      shift += 7;
      if (shift > 63) fail(std::string(what) + ": varint longer than 10 bytes");
    }
  }

  /// Reads and CRC-verifies the next chunk. Returns false on clean EOF.
  bool read_chunk(std::uint8_t& kind, std::vector<std::uint8_t>& payload) {
    if (!get_byte(kind)) return false;
    const std::string where = "chunk " + std::to_string(chunk_index);
    const std::uint64_t len = read_frame_varint("chunk length");
    if (len > kMaxChunkPayload) {
      fail(where + ": implausible payload length " + std::to_string(len));
    }
    payload.resize(len);
    if (len > 0) {
      in.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(len));
      if (static_cast<std::uint64_t>(in.gcount()) != len) {
        fail(where + ": truncated payload (expected " + std::to_string(len) + " bytes, got " +
             std::to_string(in.gcount()) + ")");
      }
    }
    const std::uint8_t lo = require_byte("chunk CRC");
    const std::uint8_t hi = require_byte("chunk CRC");
    const std::uint16_t stored = static_cast<std::uint16_t>(lo | (hi << 8));
    const std::uint16_t computed = lte::crc16(payload);
    if (stored != computed) {
      fail(where + ": CRC mismatch (stored " + std::to_string(stored) + ", computed " +
           std::to_string(computed) + ")");
    }
    ++chunk_index;
    return true;
  }

  void decode_records(std::span<const std::uint8_t> payload) {
    ByteReader r(payload, "records chunk " + std::to_string(chunk_index - 1));
    const std::uint64_t count = r.get_varint();
    if (count == 0) r.fail("empty records chunk");
    // Each record encodes to at least 4 bytes; a count claiming more is a
    // corrupted varint and must not drive the reserve() below.
    if (count > payload.size()) r.fail("record count " + std::to_string(count) +
                                       " exceeds chunk payload size");
    pending.clear();
    pending.reserve(count);
    pending_pos = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      sniffer::TraceRecord rec;
      rec.time = prev_time + r.get_signed();
      prev_time = rec.time;

      const std::uint64_t rnti_code = r.get_varint();
      if (rnti_code < rnti_dict.size()) {
        rec.rnti = rnti_dict[rnti_code];
      } else if (rnti_code == rnti_dict.size()) {
        const std::uint64_t raw = r.get_varint();
        if (raw > 0xFFFF) r.fail("RNTI value " + std::to_string(raw) + " out of range");
        rec.rnti = static_cast<lte::Rnti>(raw);
        rnti_dict.push_back(rec.rnti);
      } else {
        r.fail("RNTI dictionary index " + std::to_string(rnti_code) + " out of range (dict size " +
               std::to_string(rnti_dict.size()) + ")");
      }

      const std::uint64_t tb_dir = r.get_varint();
      rec.direction = (tb_dir & 1) ? lte::Direction::kUplink : lte::Direction::kDownlink;
      const std::int64_t tb = zigzag_decode(tb_dir >> 1);
      if (tb < INT32_MIN || tb > INT32_MAX) r.fail("TBS out of int range");
      rec.tb_bytes = static_cast<int>(tb);

      const std::int64_t cell = static_cast<std::int64_t>(prev_cell) + r.get_signed();
      if (cell < 0 || cell > 0xFFFF) r.fail("cell id " + std::to_string(cell) + " out of range");
      rec.cell = static_cast<lte::CellId>(cell);
      prev_cell = rec.cell;

      pending.push_back(rec);
    }
    if (!r.at_end()) {
      r.fail(std::to_string(r.remaining()) + " trailing bytes after last record");
    }
  }
};

Reader::Reader(std::istream& in) : impl_(std::make_unique<Impl>(in)) {
  char magic[sizeof(kMagic)] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      !std::equal(std::begin(magic), std::end(magic), std::begin(kMagic))) {
    fail("bad magic (not an LTT trace file)");
  }
  const std::uint8_t version = impl_->require_byte("version byte");
  if (version != kFormatVersion) {
    fail("unsupported format version " + std::to_string(version) + " (supported: " +
         std::to_string(kFormatVersion) + ")");
  }

  std::uint8_t kind = 0;
  std::vector<std::uint8_t> payload;
  if (!impl_->read_chunk(kind, payload)) fail("missing metadata chunk");
  if (kind != kChunkMeta) fail("first chunk must be metadata");
  ByteReader r(payload, "metadata chunk");
  const std::uint8_t op = r.get_u8();
  if (op > static_cast<std::uint8_t>(lte::Operator::kTmobile)) {
    r.fail("unknown operator code " + std::to_string(op));
  }
  meta_.op = static_cast<lte::Operator>(op);
  const std::uint64_t app = r.get_varint();
  if (app > 0xFFFF) r.fail("app code out of range");
  meta_.app = static_cast<std::uint16_t>(app);
  meta_.day = static_cast<std::int32_t>(r.get_signed());
  meta_.seed = r.get_varint();
  const std::uint64_t cell = r.get_varint();
  if (cell > 0xFFFF) r.fail("cell id out of range");
  meta_.cell = static_cast<lte::CellId>(cell);
  meta_.session_start = r.get_signed();
  meta_.label = r.get_string();
  if (!r.at_end()) r.fail("trailing bytes");
}

Reader::~Reader() = default;

bool Reader::next(sniffer::TraceRecord& record) {
  Impl& im = *impl_;
  while (im.pending_pos >= im.pending.size()) {
    if (im.saw_end) return false;
    std::uint8_t kind = 0;
    std::vector<std::uint8_t> payload;
    if (!im.read_chunk(kind, payload)) {
      fail("missing end chunk (file truncated after " + std::to_string(records_read_) +
           " records)");
    }
    if (kind == kChunkRecords) {
      im.decode_records(payload);
    } else if (kind == kChunkEnd) {
      ByteReader r(payload, "end chunk");
      const std::uint64_t declared = r.get_varint();
      if (!r.at_end()) r.fail("trailing bytes");
      if (declared != records_read_) {
        fail("record count mismatch (end chunk declares " + std::to_string(declared) +
             ", decoded " + std::to_string(records_read_) + ")");
      }
      std::uint8_t extra = 0;
      if (im.get_byte(extra)) fail("trailing data after end chunk");
      im.saw_end = true;
      return false;
    } else if (kind == kChunkMeta) {
      fail("duplicate metadata chunk");
    } else {
      fail("unknown chunk kind " + std::to_string(kind));
    }
  }
  record = im.pending[im.pending_pos++];
  ++records_read_;
  return true;
}

sniffer::Trace Reader::read_all() {
  sniffer::Trace trace;
  sniffer::TraceRecord record;
  while (next(record)) trace.push_back(record);
  return trace;
}

sniffer::Trace read_trace(std::istream& in, TraceMeta* meta) {
  Reader reader(in);
  if (meta != nullptr) *meta = reader.meta();
  return reader.read_all();
}

}  // namespace ltefp::tracestore
