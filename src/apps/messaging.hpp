// Instant-messaging traffic model.
//
// Replays a ChatScript from one endpoint's perspective: outgoing messages
// are uplink packets at script time, incoming ones arrive downlink after a
// network delay. Media attachments drain as multi-subframe bursts. Idle
// gaps in the script routinely outlast the RRC inactivity timer, so a UE
// running this source exhibits the frequent RNTI refreshes the paper
// highlights for IM apps.
#pragma once

#include <memory>

#include "apps/conversation.hpp"
#include "common/rng.hpp"
#include "lte/traffic.hpp"

namespace ltefp::apps {

enum class Endpoint { kA, kB };

class MessagingSource final : public lte::TrafficSource {
 public:
  /// Standalone chat session: generates a private script (this UE is
  /// endpoint A; the peer is outside the observed cell).
  MessagingSource(AppId app, MessagingParams params, TimeMs session_duration, Rng rng);

  /// One endpoint of a shared conversation (for correlation experiments).
  MessagingSource(AppId app, MessagingParams params, std::shared_ptr<const ChatScript> script,
                  Endpoint endpoint, TimeMs network_delay, Rng rng);

  void step(TimeMs now, std::vector<lte::AppPacket>& out) override;
  const char* name() const override { return to_string(app_); }
  AppId app() const { return app_; }

 private:
  bool outgoing(const ChatEvent& ev) const {
    return endpoint_ == Endpoint::kA ? ev.a_to_b : !ev.a_to_b;
  }
  void start_burst(lte::Direction dir, int bytes);
  void drain_bursts(std::vector<lte::AppPacket>& out);

  /// Auxiliary protocol packet tied to a script event: typing indicators
  /// preceding a message, or protocol chatter following it. Times are
  /// script-relative; `from_sender` is relative to the event's sender.
  struct AuxPacket {
    TimeMs time = 0;
    bool sender_is_a = true;
    bool from_sender = true;
    int bytes = 0;
  };
  void build_aux_schedule();
  void enqueue_delayed(TimeMs at, lte::Direction dir, int bytes);
  void flush_delayed(TimeMs rel, std::vector<lte::AppPacket>& out);

  AppId app_;
  MessagingParams params_;
  Rng rng_;
  std::shared_ptr<const ChatScript> script_;
  std::vector<AuxPacket> aux_;
  std::size_t aux_idx_ = 0;
  struct Delayed {
    TimeMs at = 0;
    lte::Direction dir = lte::Direction::kDownlink;
    int bytes = 0;
  };
  std::vector<Delayed> delayed_;  // small, scanned linearly
  Endpoint endpoint_ = Endpoint::kA;
  TimeMs network_delay_ = 70;
  TimeMs start_time_ = -1;
  std::size_t out_idx_ = 0;  // next script event to check for sending
  std::size_t in_idx_ = 0;   // next script event to check for receiving
  double ul_burst_remaining_ = 0.0;
  double dl_burst_remaining_ = 0.0;
  TimeMs next_keepalive_at_ = 0;
};

}  // namespace ltefp::apps
