#include "apps/factory.hpp"

#include <stdexcept>

#include "apps/messaging.hpp"
#include "apps/streaming.hpp"
#include "apps/voip.hpp"

namespace ltefp::apps {

std::unique_ptr<lte::TrafficSource> make_app_source(AppId app, TimeMs duration, Rng rng,
                                                    SessionContext ctx,
                                                    const DriftModel& drift) {
  const DriftFactors f = drift.at(app, ctx.day);
  const double adapt = ctx.adapt_jitter > 0.0 ? rng.lognormal(0.0, ctx.adapt_jitter) : 1.0;
  switch (category_of(app)) {
    case AppCategory::kStreaming: {
      StreamingParams p = streaming_params(app);
      apply_drift(p, f);
      // ABR ladder: the player picks a rendition for current throughput.
      p.segment_kb_mean *= adapt;
      p.startup_rate_kbps *= adapt;
      p.burst_rate_kbps *= adapt;
      return std::make_unique<StreamingSource>(app, p, rng);
    }
    case AppCategory::kMessaging: {
      MessagingParams p = messaging_params(app);
      apply_drift(p, f);
      p.burst_rate_kbps *= adapt;  // media transfers track link quality
      return std::make_unique<MessagingSource>(app, p, duration, rng);
    }
    case AppCategory::kVoip: {
      VoipParams p = voip_params(app);
      apply_drift(p, f);
      // Adaptive codec: bitrate (hence frame size) follows link quality.
      p.frame_bytes_mean *= adapt;
      p.frame_bytes_jitter *= adapt;
      return std::make_unique<VoipSource>(app, p, duration, rng);
    }
  }
  throw std::logic_error("make_app_source: unreachable");
}

std::unique_ptr<lte::TrafficSource> make_app_source(AppId app, TimeMs duration, Rng rng, int day,
                                                    const DriftModel& drift) {
  return make_app_source(app, duration, rng, SessionContext{day, 0.0}, drift);
}

std::pair<std::unique_ptr<lte::TrafficSource>, std::unique_ptr<lte::TrafficSource>>
make_paired_sources(AppId app, TimeMs duration, Rng rng, TimeMs network_delay, int day,
                    const DriftModel& drift) {
  const DriftFactors f = drift.at(app, day);
  switch (category_of(app)) {
    case AppCategory::kMessaging: {
      MessagingParams p = messaging_params(app);
      apply_drift(p, f);
      auto script = std::make_shared<const ChatScript>(
          generate_chat_script(p, duration, rng));
      auto a = std::make_unique<MessagingSource>(app, p, script, Endpoint::kA, network_delay,
                                                 rng.fork());
      auto b = std::make_unique<MessagingSource>(app, p, script, Endpoint::kB, network_delay,
                                                 rng.fork());
      return {std::move(a), std::move(b)};
    }
    case AppCategory::kVoip: {
      VoipParams p = voip_params(app);
      apply_drift(p, f);
      auto script = std::make_shared<const CallScript>(
          generate_call_script(p, duration, rng));
      auto a = std::make_unique<VoipSource>(app, p, script, VoipEndpoint::kA, network_delay,
                                            rng.fork());
      auto b = std::make_unique<VoipSource>(app, p, script, VoipEndpoint::kB, network_delay,
                                            rng.fork());
      return {std::move(a), std::move(b)};
    }
    case AppCategory::kStreaming:
      throw std::invalid_argument("make_paired_sources: streaming apps are not conversational");
  }
  throw std::logic_error("make_paired_sources: unreachable");
}

}  // namespace ltefp::apps
