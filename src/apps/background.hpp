// Background / noise traffic.
//
// Two uses, both from the paper:
//  - Section VIII-A "Impacts of noise traffic": the victim's own UE runs
//    5-10 additional apps in the background while the foreground app is
//    fingerprinted (Fig. 9). BackgroundAppMix models that churn.
//  - Real-world cells serve many other subscribers; each OperatorProfile
//    specifies a count of competing UEs whose web-like load shapes the
//    scheduler's behaviour (WebBrowsingSource + populate_background_ues).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app_id.hpp"
#include "common/rng.hpp"
#include "lte/network.hpp"
#include "lte/traffic.hpp"

namespace ltefp::apps {

/// Generic bursty request/response source (web browsing, feed refresh,
/// sync): exponential think times, uplink request, downlink response burst.
class WebBrowsingSource final : public lte::TrafficSource {
 public:
  struct Params {
    double think_mean_s = 6.0;      // gap between fetches
    double response_kb_mean = 60;   // DL response size (KB), lognormal
    double response_kb_sigma = 0.9;
    double request_bytes = 450;
    double burst_rate_kbps = 5000;
  };

  WebBrowsingSource(Params params, Rng rng);
  void step(TimeMs now, std::vector<lte::AppPacket>& out) override;
  const char* name() const override { return "web"; }

 private:
  Params params_;
  Rng rng_;
  TimeMs next_fetch_at_ = 0;
  double burst_remaining_ = 0.0;
};

/// A rotating mix of background apps on a single UE, as in the paper's
/// noise experiment: `app_count` apps drawn from the top-10 pool run
/// "sequentially with a delay of 3-4 seconds" each, overlaying the
/// foreground app's traffic.
class BackgroundAppMix final : public lte::TrafficSource {
 public:
  BackgroundAppMix(int app_count, Rng rng);
  void step(TimeMs now, std::vector<lte::AppPacket>& out) override;
  const char* name() const override { return "background-mix"; }

 private:
  void rotate(TimeMs now);

  int app_count_;
  Rng rng_;
  std::vector<std::unique_ptr<lte::TrafficSource>> active_;
  TimeMs next_rotation_at_ = 0;
};

/// Combines a foreground source with background noise on the same UE.
class CompositeSource final : public lte::TrafficSource {
 public:
  CompositeSource(std::unique_ptr<lte::TrafficSource> foreground,
                  std::unique_ptr<lte::TrafficSource> background);
  void step(TimeMs now, std::vector<lte::AppPacket>& out) override;
  const char* name() const override;

 private:
  std::unique_ptr<lte::TrafficSource> foreground_;
  std::unique_ptr<lte::TrafficSource> background_;
};

/// Adds `profile.background_ues` competing subscribers to `cell`, each with
/// web-like load scaled to `profile.background_load_bps`. Returns their ids.
std::vector<lte::UeId> populate_background_ues(lte::Simulation& sim, lte::CellId cell,
                                               const lte::OperatorProfile& profile,
                                               lte::Imsi imsi_base);

}  // namespace ltefp::apps
