// Parameter sets for the three traffic-model families, with the per-app
// values that encode the paper's Section IV-B observations:
//
//  - Netflix: "frame sizes distribute almost uniformly between 0 and 4000
//    bytes, and the intervals between traffic bursts are relatively long";
//    heavy initial buffering.
//  - Amazon Prime / YouTube: "more continuous frame transmission pattern
//    with much shorter intervals between bursts".
//  - Messaging: "dynamic nature", application-layer sessions close after
//    seconds-to-tens-of-seconds of silence, so RNTIs refresh often.
//  - VoIP: "continuous transmission and a more constant usage of radio
//    resources", and "the only class ... with a significant and similar
//    amount of data transmitted in both directions".
#pragma once

#include "apps/app_id.hpp"
#include "apps/drift.hpp"

namespace ltefp::apps {

struct StreamingParams {
  double initial_buffer_s = 12.0;   // startup buffering phase duration
  double startup_rate_kbps = 8000;  // DL rate while buffering
  double segment_period_s = 4.0;    // steady-state fetch interval
  double segment_kb_mean = 1400;    // per-segment bytes (KB), lognormal
  double segment_kb_sigma = 0.25;   // lognormal sigma of segment size
  double burst_rate_kbps = 16000;   // drain rate within a burst
  bool uniform_packets = false;     // Netflix-style uniform packet sizes
  double packet_min_b = 400;        // if uniform
  double packet_max_b = 4000;       // if uniform
  double packet_mu = 7.1;           // else lognormal(mu, sigma) bytes
  double packet_sigma = 0.35;
  double ul_ack_ratio = 0.022;      // TCP ack bytes per DL byte
  double ack_flush_ms = 40;         // ack pacing (client TCP stack + player)
  double request_mu = 5.7;          // lognormal HTTP request size (bytes)
  double request_sigma = 0.15;
};

struct MessagingParams {
  double msg_rate_hz = 0.45;       // Poisson message events while active
  double recv_fraction = 0.5;      // fraction of events that are incoming
  double text_mu = 5.6;            // lognormal text payload (bytes)
  double text_sigma = 0.7;
  double media_prob = 0.08;        // message carries a media attachment
  double media_kb_mean = 180;      // attachment size (KB)
  double media_kb_sigma = 0.6;
  double burst_rate_kbps = 6000;   // media transfer drain rate
  double media_chunk_bytes = 1400; // app-specific media chunking on the wire
  double idle_prob = 0.10;         // chat pauses after a message...
  double idle_mean_s = 14.0;       // ...for this long on average (can
                                   // exceed the 10 s RRC timeout -> RNTI
                                   // refresh, as the paper observes)
  double keepalive_period_s = 0;   // 0 = none
  double keepalive_bytes = 90;
  double protocol_overhead_b = 60; // framing added to each payload
  double receipt_bytes = 50;       // delivery/read receipt size
  double receipt_delay_ms = 60;    // server round-trip before the receipt
  bool split_header = false;       // emit a separate protocol-header packet
  double header_bytes = 48;        // ...of this size, right before payload
  double typing_prob = 0.0;        // typing indicators precede a message...
  int typing_packets = 0;          // ...this many per message
  double typing_bytes = 70;
  int chatter_packets = 0;         // protocol chatter packets per event
  double chatter_bytes = 80;       // (presence updates, containers, acks)
};

struct VoipParams {
  double frame_period_ms = 20;     // packetisation interval (codec frames
                                   // may be bundled: 20/40/60 ms on the wire)
  double frame_bytes_mean = 80;    // voice payload per packet
  double frame_bytes_jitter = 6;   // stddev (VBR codecs jitter more)
  double talk_spurt_mean_s = 2.2;  // voice-activity on period
  double silence_mean_s = 1.4;     // off period (listening)
  double sid_period_ms = 160;      // comfort-noise frame interval in silence
  double sid_bytes = 14;
  double fec_prob = 0.0;           // per-frame redundancy probability
  double fec_bytes = 40;
  double rtcp_period_s = 5.0;      // control report interval
  double rtcp_bytes = 120;
};

StreamingParams streaming_params(AppId app);
MessagingParams messaging_params(AppId app);
VoipParams voip_params(AppId app);

/// Applies drift factors in place (sizes scaled by size_scale, periods by
/// interval_scale, jitters widened by shape_shift).
void apply_drift(StreamingParams& p, const DriftFactors& f);
void apply_drift(MessagingParams& p, const DriftFactors& f);
void apply_drift(VoipParams& p, const DriftFactors& f);

}  // namespace ltefp::apps
