// The nine mobile apps studied by the paper (Section IV-A) and their
// categories. These topped the Google Play charts in their categories at
// the time of the study: streaming (Netflix, YouTube, Amazon Prime Video),
// messaging (Facebook Messenger, WhatsApp, Telegram), and VoIP
// (Facebook Call, WhatsApp Call, Skype).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ltefp::apps {

enum class AppCategory : std::uint8_t { kStreaming = 0, kMessaging = 1, kVoip = 2 };

enum class AppId : std::uint8_t {
  kNetflix = 0,
  kYoutube,
  kAmazonPrime,
  kFacebookMessenger,
  kWhatsApp,
  kTelegram,
  kFacebookCall,
  kWhatsAppCall,
  kSkype,
};

constexpr int kNumApps = 9;
constexpr int kNumCategories = 3;

constexpr std::array<AppId, kNumApps> kAllApps = {
    AppId::kNetflix,          AppId::kYoutube,  AppId::kAmazonPrime,
    AppId::kFacebookMessenger, AppId::kWhatsApp, AppId::kTelegram,
    AppId::kFacebookCall,     AppId::kWhatsAppCall, AppId::kSkype,
};

AppCategory category_of(AppId app);
const char* to_string(AppId app);
const char* to_string(AppCategory category);

/// Apps belonging to one category, in canonical order.
std::array<AppId, 3> apps_in_category(AppCategory category);

/// Inverse of to_string(AppId); nullopt for unknown names.
std::optional<AppId> app_from_string(std::string_view name);

}  // namespace ltefp::apps
