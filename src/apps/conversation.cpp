#include "apps/conversation.hpp"

#include <algorithm>
#include <cmath>

namespace ltefp::apps {

ChatScript generate_chat_script(const MessagingParams& params, TimeMs duration, Rng& rng) {
  ChatScript script;
  TimeMs t = static_cast<TimeMs>(rng.exponential(1000.0 / params.msg_rate_hz));
  while (t < duration) {
    ChatEvent ev;
    ev.time = t;
    ev.a_to_b = !rng.bernoulli(params.recv_fraction);
    ev.media = rng.bernoulli(params.media_prob);
    if (ev.media) {
      ev.bytes = static_cast<int>(
          rng.lognormal(std::log(params.media_kb_mean), params.media_kb_sigma) * 1000.0);
    } else {
      ev.bytes = static_cast<int>(rng.lognormal(params.text_mu, params.text_sigma));
    }
    ev.bytes = std::max(ev.bytes, 1);
    script.push_back(ev);

    TimeMs gap = static_cast<TimeMs>(rng.exponential(1000.0 / params.msg_rate_hz));
    if (rng.bernoulli(params.idle_prob)) {
      // Conversation lull; often long enough for the RRC connection to
      // time out and the RNTI to be refreshed on resume.
      gap += static_cast<TimeMs>(rng.exponential(params.idle_mean_s * 1000.0));
    }
    t += std::max<TimeMs>(gap, 1);
  }
  return script;
}

CallScript generate_call_script(const VoipParams& params, TimeMs duration, Rng& rng) {
  CallScript script;
  TimeMs t = 0;
  bool a_talking = rng.bernoulli(0.5);
  while (t < duration) {
    const TimeMs spurt =
        std::max<TimeMs>(200, static_cast<TimeMs>(rng.exponential(params.talk_spurt_mean_s * 1000.0)));
    const TimeMs end = std::min(t + spurt, duration);
    script.push_back(TalkInterval{t, end, a_talking});
    t = end;
    // Short mutual-silence gap before the other party answers.
    t += std::max<TimeMs>(60, static_cast<TimeMs>(rng.exponential(params.silence_mean_s * 1000.0)));
    a_talking = !a_talking;
  }
  return script;
}

}  // namespace ltefp::apps
