#include "apps/app_id.hpp"

namespace ltefp::apps {

AppCategory category_of(AppId app) {
  switch (app) {
    case AppId::kNetflix:
    case AppId::kYoutube:
    case AppId::kAmazonPrime:
      return AppCategory::kStreaming;
    case AppId::kFacebookMessenger:
    case AppId::kWhatsApp:
    case AppId::kTelegram:
      return AppCategory::kMessaging;
    case AppId::kFacebookCall:
    case AppId::kWhatsAppCall:
    case AppId::kSkype:
      return AppCategory::kVoip;
  }
  return AppCategory::kStreaming;
}

const char* to_string(AppId app) {
  switch (app) {
    case AppId::kNetflix: return "Netflix";
    case AppId::kYoutube: return "YouTube";
    case AppId::kAmazonPrime: return "Amazon Prime";
    case AppId::kFacebookMessenger: return "Facebook";
    case AppId::kWhatsApp: return "WhatsApp";
    case AppId::kTelegram: return "Telegram";
    case AppId::kFacebookCall: return "Facebook Call";
    case AppId::kWhatsAppCall: return "WhatsApp Call";
    case AppId::kSkype: return "Skype";
  }
  return "?";
}

const char* to_string(AppCategory category) {
  switch (category) {
    case AppCategory::kStreaming: return "Streaming";
    case AppCategory::kMessaging: return "Messaging";
    case AppCategory::kVoip: return "VoIP";
  }
  return "?";
}

std::array<AppId, 3> apps_in_category(AppCategory category) {
  switch (category) {
    case AppCategory::kStreaming:
      return {AppId::kNetflix, AppId::kYoutube, AppId::kAmazonPrime};
    case AppCategory::kMessaging:
      return {AppId::kFacebookMessenger, AppId::kWhatsApp, AppId::kTelegram};
    case AppCategory::kVoip:
      return {AppId::kFacebookCall, AppId::kWhatsAppCall, AppId::kSkype};
  }
  return {AppId::kNetflix, AppId::kYoutube, AppId::kAmazonPrime};
}

std::optional<AppId> app_from_string(std::string_view name) {
  for (const AppId app : kAllApps) {
    if (name == to_string(app)) return app;
  }
  // VoIP and messaging share brand names in the paper's tables; accept
  // category-qualified aliases.
  if (name == "Facebook Messenger") return AppId::kFacebookMessenger;
  return std::nullopt;
}

}  // namespace ltefp::apps
