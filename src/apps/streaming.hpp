// Video-streaming traffic model (DASH/HLS-like segmented delivery).
//
// Two phases, matching the paper's observation that "video streaming apps
// seem to use much more radio resources at the beginning of each session
// (intuitively, due to video buffering)":
//  1. startup buffering — sustained high-rate downlink;
//  2. steady state — periodic segment fetches (bursts) separated by
//     app-specific think intervals.
// Uplink carries only TCP-ack-scale feedback.
#pragma once

#include "apps/params.hpp"
#include "common/rng.hpp"
#include "lte/traffic.hpp"

namespace ltefp::apps {

class StreamingSource final : public lte::TrafficSource {
 public:
  StreamingSource(AppId app, StreamingParams params, Rng rng);

  void step(ltefp::TimeMs now, std::vector<lte::AppPacket>& out) override;
  const char* name() const override { return to_string(app_); }
  AppId app() const { return app_; }

 private:
  int sample_packet_size();
  void emit_downlink(double budget_bytes, ltefp::TimeMs now,
                     std::vector<lte::AppPacket>& out);

  AppId app_;
  StreamingParams params_;
  Rng rng_;
  ltefp::TimeMs start_time_ = -1;
  ltefp::TimeMs next_segment_at_ = 0;
  double segment_remaining_ = 0.0;  // bytes still to drain in current burst
  double dl_carry_ = 0.0;           // sub-packet byte remainder across ms
  double ack_debt_ = 0.0;           // UL ack bytes accumulated, flushed periodically
  ltefp::TimeMs next_ack_at_ = 0;
};

}  // namespace ltefp::apps
