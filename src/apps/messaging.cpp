#include "apps/messaging.hpp"

#include <algorithm>
#include <cmath>

namespace ltefp::apps {
namespace {

constexpr double kBytesPerMsPerKbps = 1000.0 / 8.0 / 1000.0;

}  // namespace

MessagingSource::MessagingSource(AppId app, MessagingParams params, TimeMs session_duration,
                                 Rng rng)
    : app_(app), params_(params), rng_(rng) {
  auto script = std::make_shared<ChatScript>(
      generate_chat_script(params_, session_duration, rng_));
  script_ = std::move(script);
  endpoint_ = Endpoint::kA;
  network_delay_ = 70;
  build_aux_schedule();
}

MessagingSource::MessagingSource(AppId app, MessagingParams params,
                                 std::shared_ptr<const ChatScript> script, Endpoint endpoint,
                                 TimeMs network_delay, Rng rng)
    : app_(app),
      params_(params),
      rng_(rng),
      script_(std::move(script)),
      endpoint_(endpoint),
      network_delay_(network_delay) {
  build_aux_schedule();
}

void MessagingSource::build_aux_schedule() {
  // Typing indicators precede, protocol chatter follows, each message.
  // Decisions are derived deterministically from (app, event index, script
  // size) so both endpoints of a shared script agree on every aux packet.
  const auto& script = *script_;
  for (std::size_t i = 0; i < script.size(); ++i) {
    const ChatEvent& ev = script[i];
    Rng aux_rng(0xA0515ULL ^ (static_cast<std::uint64_t>(app_) << 40) ^
                (static_cast<std::uint64_t>(script.size()) << 20) ^ i);
    if (!ev.media && params_.typing_prob > 0 && aux_rng.bernoulli(params_.typing_prob)) {
      for (int k = 0; k < params_.typing_packets; ++k) {
        AuxPacket pkt;
        pkt.time = ev.time - 400 - static_cast<TimeMs>(aux_rng.uniform(0.0, 600.0) * (k + 1));
        if (pkt.time < 0) continue;
        pkt.sender_is_a = ev.a_to_b;
        pkt.from_sender = true;
        pkt.bytes = std::max(16, static_cast<int>(aux_rng.normal(params_.typing_bytes,
                                                                 params_.typing_bytes * 0.1)));
        aux_.push_back(pkt);
      }
    }
    for (int k = 0; k < params_.chatter_packets; ++k) {
      AuxPacket pkt;
      pkt.time = ev.time + 30 + static_cast<TimeMs>(aux_rng.uniform(0.0, 220.0));
      pkt.sender_is_a = ev.a_to_b;
      // Chatter alternates: server ack toward the sender, then follow-up.
      pkt.from_sender = (k % 2) == 1;
      pkt.bytes = std::max(16, static_cast<int>(aux_rng.normal(params_.chatter_bytes,
                                                               params_.chatter_bytes * 0.15)));
      aux_.push_back(pkt);
    }
  }
  std::sort(aux_.begin(), aux_.end(),
            [](const AuxPacket& a, const AuxPacket& b) { return a.time < b.time; });
}

void MessagingSource::enqueue_delayed(TimeMs at, lte::Direction dir, int bytes) {
  delayed_.push_back(Delayed{at, dir, bytes});
}

void MessagingSource::flush_delayed(TimeMs rel, std::vector<lte::AppPacket>& out) {
  for (std::size_t i = 0; i < delayed_.size();) {
    if (delayed_[i].at <= rel) {
      out.push_back(lte::AppPacket{delayed_[i].dir, delayed_[i].bytes});
      delayed_[i] = delayed_.back();
      delayed_.pop_back();
    } else {
      ++i;
    }
  }
}

void MessagingSource::start_burst(lte::Direction dir, int bytes) {
  if (dir == lte::Direction::kUplink) {
    ul_burst_remaining_ += bytes;
  } else {
    dl_burst_remaining_ += bytes;
  }
}

void MessagingSource::drain_bursts(std::vector<lte::AppPacket>& out) {
  // Media transfers drain as trains of app-specific chunk-sized packets.
  const double budget = params_.burst_rate_kbps * kBytesPerMsPerKbps;
  const int chunk = std::max(64, static_cast<int>(params_.media_chunk_bytes));
  if (ul_burst_remaining_ > 0.0) {
    double b = std::min(ul_burst_remaining_, budget);
    while (b > 0.0) {
      const int pkt = std::min(chunk, static_cast<int>(std::ceil(b)));
      out.push_back(lte::AppPacket{lte::Direction::kUplink, pkt});
      b -= pkt;
      ul_burst_remaining_ -= pkt;
    }
    ul_burst_remaining_ = std::max(0.0, ul_burst_remaining_);
  }
  if (dl_burst_remaining_ > 0.0) {
    double b = std::min(dl_burst_remaining_, budget);
    while (b > 0.0) {
      const int pkt = std::min(chunk, static_cast<int>(std::ceil(b)));
      out.push_back(lte::AppPacket{lte::Direction::kDownlink, pkt});
      b -= pkt;
      dl_burst_remaining_ -= pkt;
    }
    dl_burst_remaining_ = std::max(0.0, dl_burst_remaining_);
  }
}

void MessagingSource::step(TimeMs now, std::vector<lte::AppPacket>& out) {
  if (start_time_ < 0) {
    start_time_ = now;
    if (params_.keepalive_period_s > 0) {
      next_keepalive_at_ = now + static_cast<TimeMs>(params_.keepalive_period_s * 1000.0);
    }
  }
  const TimeMs rel = now - start_time_;
  const auto& script = *script_;

  flush_delayed(rel, out);

  // Auxiliary protocol packets (typing indicators, chatter).
  const bool i_am_a = endpoint_ == Endpoint::kA;
  while (aux_idx_ < aux_.size() && aux_[aux_idx_].time <= rel) {
    const AuxPacket& pkt = aux_[aux_idx_++];
    const bool sender_is_me = pkt.sender_is_a == i_am_a;
    if (sender_is_me) {
      // My typing indicator goes uplink; the server's response comes down.
      out.push_back(lte::AppPacket{
          pkt.from_sender ? lte::Direction::kUplink : lte::Direction::kDownlink, pkt.bytes});
    } else if (pkt.from_sender) {
      // Peer's typing indicator is relayed to me downlink; the server's
      // leg toward the peer never crosses my radio.
      out.push_back(lte::AppPacket{lte::Direction::kDownlink, pkt.bytes});
    }
  }

  // Outgoing messages: uplink at script time.
  while (out_idx_ < script.size() && script[out_idx_].time <= rel) {
    const ChatEvent& ev = script[out_idx_++];
    if (!outgoing(ev)) continue;
    const int total = ev.bytes + static_cast<int>(params_.protocol_overhead_b);
    if (ev.media) {
      start_burst(lte::Direction::kUplink, total);
    } else {
      if (params_.split_header) {
        out.push_back(lte::AppPacket{lte::Direction::kUplink,
                                     static_cast<int>(params_.header_bytes)});
      }
      out.push_back(lte::AppPacket{lte::Direction::kUplink, total});
      // The delivery receipt returns after the app's server round-trip —
      // a timing signature of the operator of that messaging backend.
      enqueue_delayed(rel + static_cast<TimeMs>(
                                params_.receipt_delay_ms * rng_.uniform(0.85, 1.25)),
                      lte::Direction::kDownlink, static_cast<int>(params_.receipt_bytes));
    }
  }

  // Incoming messages: downlink after the network delay.
  while (in_idx_ < script.size() && script[in_idx_].time + network_delay_ <= rel) {
    const ChatEvent& ev = script[in_idx_++];
    if (outgoing(ev)) continue;
    const int total = ev.bytes + static_cast<int>(params_.protocol_overhead_b);
    if (ev.media) {
      start_burst(lte::Direction::kDownlink, total);
    } else {
      if (params_.split_header) {
        out.push_back(lte::AppPacket{lte::Direction::kDownlink,
                                     static_cast<int>(params_.header_bytes)});
      }
      out.push_back(lte::AppPacket{lte::Direction::kDownlink, total});
      // Read receipt goes back uplink after the user notices (+ server hop).
      enqueue_delayed(rel + static_cast<TimeMs>(
                                params_.receipt_delay_ms * rng_.uniform(0.85, 1.25)),
                      lte::Direction::kUplink, static_cast<int>(params_.receipt_bytes));
    }
  }

  drain_bursts(out);

  if (params_.keepalive_period_s > 0 && now >= next_keepalive_at_) {
    out.push_back(lte::AppPacket{lte::Direction::kUplink,
                                 static_cast<int>(params_.keepalive_bytes)});
    out.push_back(lte::AppPacket{lte::Direction::kDownlink,
                                 static_cast<int>(params_.keepalive_bytes * 0.6)});
    next_keepalive_at_ = now + static_cast<TimeMs>(params_.keepalive_period_s * 1000.0);
  }
}

}  // namespace ltefp::apps
