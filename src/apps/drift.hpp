// App traffic drift over calendar days.
//
// Section VIII-A ("Time effect"): app updates and CDN/back-end changes
// shift traffic patterns day by day, which is why a classifier trained on
// day 1 degrades over the following days (Fig. 8) and must be retrained
// (Section VII-D cost model). We model drift as a deterministic per-app
// random walk over day indices: on day d, an app's packet sizes are scaled
// by size_scale(d) and its event intervals by interval_scale(d). Day 0
// means "as trained".
#pragma once

#include <cstdint>

#include "apps/app_id.hpp"

namespace ltefp::apps {

struct DriftFactors {
  double size_scale = 1.0;      // multiplies payload sizes
  double interval_scale = 1.0;  // multiplies inter-event times
  double shape_shift = 0.0;     // additive jitter widening, grows with |d|
};

class DriftModel {
 public:
  /// `daily_step` is the stddev of the per-day log-scale increments;
  /// the paper's Fig. 8 decay corresponds to roughly 8-9 % per day.
  explicit DriftModel(double daily_step = 0.085, std::uint64_t seed = 0xD1F7);

  /// Drift factors for `app` on day `day` (cumulative from day 0).
  /// Deterministic: the same (app, day) always yields the same factors.
  DriftFactors at(AppId app, int day) const;

 private:
  double daily_step_;
  std::uint64_t seed_;
};

}  // namespace ltefp::apps
