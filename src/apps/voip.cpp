#include "apps/voip.hpp"

#include <algorithm>

namespace ltefp::apps {
namespace {

bool talking_at(const CallScript& script, TimeMs rel, bool want_a, std::size_t& cursor) {
  while (cursor < script.size() && script[cursor].end <= rel) ++cursor;
  if (cursor >= script.size()) return false;
  const TalkInterval& iv = script[cursor];
  return iv.start <= rel && rel < iv.end && iv.a_talking == want_a;
}

}  // namespace

VoipSource::VoipSource(AppId app, VoipParams params, TimeMs call_duration, Rng rng)
    : app_(app), params_(params), rng_(rng) {
  script_ = std::make_shared<CallScript>(generate_call_script(params_, call_duration, rng_));
  endpoint_ = VoipEndpoint::kA;
}

VoipSource::VoipSource(AppId app, VoipParams params, std::shared_ptr<const CallScript> script,
                       VoipEndpoint endpoint, TimeMs network_delay, Rng rng)
    : app_(app),
      params_(params),
      rng_(rng),
      script_(std::move(script)),
      endpoint_(endpoint),
      network_delay_(network_delay) {}

bool VoipSource::local_talking(TimeMs rel) const {
  const bool want_a = endpoint_ == VoipEndpoint::kA;
  return talking_at(*script_, rel, want_a, ul_cursor_);
}

bool VoipSource::remote_talking(TimeMs rel) const {
  const bool want_a = endpoint_ == VoipEndpoint::kA;
  return talking_at(*script_, rel - network_delay_, !want_a, dl_cursor_);
}

int VoipSource::voice_frame_bytes() {
  const double b = rng_.normal(params_.frame_bytes_mean, params_.frame_bytes_jitter);
  return std::max(8, static_cast<int>(b));
}

void VoipSource::step(TimeMs now, std::vector<lte::AppPacket>& out) {
  if (start_time_ < 0) {
    start_time_ = now;
    next_rtcp_ = now + static_cast<TimeMs>(params_.rtcp_period_s * 1000.0);
  }
  const TimeMs rel = now - start_time_;
  const auto frame_period = static_cast<TimeMs>(params_.frame_period_ms);
  const auto sid_period = static_cast<TimeMs>(params_.sid_period_ms);

  // Uplink: voice frames while the local user talks, SID frames otherwise.
  if (local_talking(rel)) {
    if (rel >= next_ul_frame_) {
      int bytes = voice_frame_bytes();
      if (params_.fec_prob > 0 && rng_.bernoulli(params_.fec_prob)) {
        bytes += static_cast<int>(params_.fec_bytes);
      }
      out.push_back(lte::AppPacket{lte::Direction::kUplink, bytes});
      next_ul_frame_ = rel + frame_period;
      next_ul_sid_ = rel + sid_period;
    }
  } else if (rel >= next_ul_sid_) {
    out.push_back(lte::AppPacket{lte::Direction::kUplink,
                                 static_cast<int>(params_.sid_bytes)});
    next_ul_sid_ = rel + sid_period;
  }

  // Downlink mirrors the remote party, delay-shifted.
  if (remote_talking(rel)) {
    if (rel >= next_dl_frame_) {
      int bytes = voice_frame_bytes();
      if (params_.fec_prob > 0 && rng_.bernoulli(params_.fec_prob)) {
        bytes += static_cast<int>(params_.fec_bytes);
      }
      out.push_back(lte::AppPacket{lte::Direction::kDownlink, bytes});
      next_dl_frame_ = rel + frame_period;
      next_dl_sid_ = rel + sid_period;
    }
  } else if (rel >= next_dl_sid_) {
    out.push_back(lte::AppPacket{lte::Direction::kDownlink,
                                 static_cast<int>(params_.sid_bytes)});
    next_dl_sid_ = rel + sid_period;
  }

  // Periodic RTCP sender/receiver reports, both directions.
  if (now >= next_rtcp_) {
    out.push_back(lte::AppPacket{lte::Direction::kUplink,
                                 static_cast<int>(params_.rtcp_bytes)});
    out.push_back(lte::AppPacket{lte::Direction::kDownlink,
                                 static_cast<int>(params_.rtcp_bytes)});
    next_rtcp_ = now + static_cast<TimeMs>(params_.rtcp_period_s * 1000.0);
  }
}

}  // namespace ltefp::apps
