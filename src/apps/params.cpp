#include "apps/params.hpp"

#include <cmath>
#include <stdexcept>

namespace ltefp::apps {

StreamingParams streaming_params(AppId app) {
  StreamingParams p;
  switch (app) {
    case AppId::kNetflix:
      // Long inter-burst intervals, near-uniform 0..4000 B frame sizes.
      p.initial_buffer_s = 16.0;
      p.startup_rate_kbps = 9000;
      p.segment_period_s = 4.5;
      p.segment_kb_mean = 1700;
      p.segment_kb_sigma = 0.22;
      p.burst_rate_kbps = 15000;
      p.uniform_packets = true;
      p.packet_min_b = 200;
      p.packet_max_b = 4000;
      p.ul_ack_ratio = 0.021;
      p.ack_flush_ms = 55;   // lazy ack pacing between long bursts
      p.request_mu = 6.1;    // ~450 B ranged GETs with DRM/session headers
      p.request_sigma = 0.12;
      break;
    case AppId::kYoutube:
      // Much shorter gaps between bursts; near-continuous delivery.
      p.initial_buffer_s = 8.0;
      p.startup_rate_kbps = 7000;
      p.segment_period_s = 1.6;
      p.segment_kb_mean = 520;
      p.segment_kb_sigma = 0.30;
      p.burst_rate_kbps = 9000;
      p.uniform_packets = false;
      p.packet_mu = 7.15;   // ~1270 B median
      p.packet_sigma = 0.30;
      p.ul_ack_ratio = 0.026;
      p.ack_flush_ms = 22;   // QUIC-style chatty feedback
      p.request_mu = 5.5;    // ~245 B lean segment requests
      p.request_sigma = 0.20;
      break;
    case AppId::kAmazonPrime:
      // Continuous pattern at a higher sustained rate than YouTube.
      p.initial_buffer_s = 11.0;
      p.startup_rate_kbps = 8200;
      p.segment_period_s = 2.4;
      p.segment_kb_mean = 980;
      p.segment_kb_sigma = 0.26;
      p.burst_rate_kbps = 11500;
      p.uniform_packets = false;
      p.packet_mu = 6.85;   // ~940 B median
      p.packet_sigma = 0.42;
      p.ul_ack_ratio = 0.018;
      p.ack_flush_ms = 75;   // coarse delayed acks
      p.request_mu = 5.9;    // ~365 B requests
      p.request_sigma = 0.15;
      break;
    default:
      throw std::invalid_argument("streaming_params: not a streaming app");
  }
  return p;
}

MessagingParams messaging_params(AppId app) {
  MessagingParams p;
  switch (app) {
    case AppId::kFacebookMessenger:
      p.msg_rate_hz = 0.80;  // auto-clicker-driven dense session
      p.text_mu = 6.04;      // ~420 B median (rich payloads, attachments inline)
      p.text_sigma = 0.32;
      p.media_prob = 0.24;   // files / voice notes / emoticon packs
      p.media_kb_mean = 210;
      p.burst_rate_kbps = 7500;
      p.media_chunk_bytes = 1378;  // MQTT chunk stream
      p.idle_prob = 0.085;
      p.idle_mean_s = 13.0;
      p.keepalive_period_s = 55.0;  // MQTT keepalive
      p.keepalive_bytes = 200;
      p.protocol_overhead_b = 90;
      p.receipt_bytes = 95;    // rich delivery + seen receipts
      p.receipt_delay_ms = 35; // fast edge POPs
      p.typing_prob = 0.85;    // Messenger streams typing indicators
      p.typing_packets = 4;
      p.typing_bytes = 100;
      p.chatter_packets = 1;   // MQTT puback + presence blob per message
      p.chatter_bytes = 175;
      break;
    case AppId::kWhatsApp:
      p.msg_rate_hz = 0.65;  // auto-clicker-driven dense session
      p.text_mu = 5.48;      // ~240 B median, lean wire protocol
      p.text_sigma = 0.36;
      p.media_prob = 0.21;   // files / voice notes
      p.media_kb_mean = 150;
      p.burst_rate_kbps = 4500;
      p.media_chunk_bytes = 1264;  // E2E-encrypted 1.25 KB blocks
      p.idle_prob = 0.11;
      p.idle_mean_s = 15.5;
      p.keepalive_period_s = 0;
      p.protocol_overhead_b = 48;
      p.receipt_bytes = 140;   // bundled double-tick + read status blob
      p.receipt_delay_ms = 95; // single relay data centre
      p.typing_prob = 0.35;    // occasional "typing..." updates
      p.typing_packets = 1;
      p.typing_bytes = 30;
      p.chatter_packets = 0;
      break;
    case AppId::kTelegram:
      p.msg_rate_hz = 1.05;  // chattier protocol (MTProto container updates)
      p.text_mu = 4.87;      // ~130 B median
      p.text_sigma = 0.40;
      p.media_prob = 0.17;   // stickers / files
      p.media_kb_mean = 120;
      p.burst_rate_kbps = 9500;
      p.media_chunk_bytes = 1024;  // MTProto 1 KB parts
      p.idle_prob = 0.13;
      p.idle_mean_s = 11.0;
      p.keepalive_period_s = 25.0;
      p.keepalive_bytes = 64;
      p.protocol_overhead_b = 40;
      p.receipt_bytes = 62;    // MTProto msgs_ack container
      p.receipt_delay_ms = 60;
      p.split_header = true;   // MTProto container header precedes payload
      p.header_bytes = 46;
      p.typing_prob = 0.55;
      p.typing_packets = 2;
      p.typing_bytes = 56;
      p.chatter_packets = 2;   // container updates / seq acks per event
      p.chatter_bytes = 58;
      break;
    default:
      throw std::invalid_argument("messaging_params: not a messaging app");
  }
  return p;
}

VoipParams voip_params(AppId app) {
  VoipParams p;
  switch (app) {
    case AppId::kFacebookCall:
      p.frame_period_ms = 20;    // one opus frame per RTP packet
      p.frame_bytes_mean = 62;
      p.frame_bytes_jitter = 5;
      p.talk_spurt_mean_s = 2.4;
      p.silence_mean_s = 1.5;
      p.sid_period_ms = 160;
      p.sid_bytes = 14;
      p.rtcp_period_s = 5.0;
      break;
    case AppId::kWhatsAppCall:
      p.frame_period_ms = 40;    // bundles two opus frames per packet
      p.frame_bytes_mean = 172;  // 2 x VBR frame + SRTP overhead
      p.frame_bytes_jitter = 26;
      p.talk_spurt_mean_s = 2.0;
      p.silence_mean_s = 1.2;
      p.sid_period_ms = 320;
      p.sid_bytes = 22;
      p.rtcp_period_s = 4.0;
      break;
    case AppId::kSkype:
      p.frame_period_ms = 20;
      p.frame_bytes_mean = 128;  // SILK wideband
      p.frame_bytes_jitter = 10;
      p.fec_prob = 0.25;         // in-band FEC bursts
      p.fec_bytes = 46;
      p.talk_spurt_mean_s = 2.8;
      p.silence_mean_s = 1.6;
      p.sid_period_ms = 100;     // chatty even in silence (probing)
      p.sid_bytes = 34;
      p.rtcp_period_s = 6.0;
      break;
    default:
      throw std::invalid_argument("voip_params: not a VoIP app");
  }
  return p;
}

void apply_drift(StreamingParams& p, const DriftFactors& f) {
  p.segment_kb_mean *= f.size_scale;
  p.startup_rate_kbps *= f.size_scale;
  p.burst_rate_kbps *= f.size_scale;
  p.packet_mu += std::log(f.size_scale) * 0.5;
  p.segment_period_s *= f.interval_scale;
  p.packet_sigma += f.shape_shift * 0.5;
  p.segment_kb_sigma += f.shape_shift * 0.3;
}

void apply_drift(MessagingParams& p, const DriftFactors& f) {
  p.text_mu += std::log(f.size_scale);
  p.media_kb_mean *= f.size_scale;
  p.protocol_overhead_b *= f.size_scale;
  p.msg_rate_hz /= f.interval_scale;
  p.idle_mean_s *= f.interval_scale;
  p.text_sigma += f.shape_shift;
}

void apply_drift(VoipParams& p, const DriftFactors& f) {
  p.frame_bytes_mean *= f.size_scale;
  p.sid_bytes *= f.size_scale;
  p.talk_spurt_mean_s *= f.interval_scale;
  p.silence_mean_s *= f.interval_scale;
  p.frame_bytes_jitter += f.shape_shift * 20.0;
}

}  // namespace ltefp::apps
