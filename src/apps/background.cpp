#include "apps/background.hpp"

#include <algorithm>
#include <cmath>

#include "apps/factory.hpp"

namespace ltefp::apps {
namespace {

constexpr double kBytesPerMsPerKbps = 1000.0 / 8.0 / 1000.0;
constexpr int kMtu = 1400;

}  // namespace

WebBrowsingSource::WebBrowsingSource(Params params, Rng rng)
    : params_(params), rng_(rng) {}

void WebBrowsingSource::step(TimeMs now, std::vector<lte::AppPacket>& out) {
  if (burst_remaining_ > 0.0) {
    double budget = std::min(burst_remaining_, params_.burst_rate_kbps * kBytesPerMsPerKbps);
    while (budget > 0.0) {
      const int pkt = std::min(kMtu, static_cast<int>(std::ceil(budget)));
      out.push_back(lte::AppPacket{lte::Direction::kDownlink, pkt});
      budget -= pkt;
      burst_remaining_ -= pkt;
    }
    burst_remaining_ = std::max(0.0, burst_remaining_);
    return;
  }
  if (next_fetch_at_ == 0) {
    // Desynchronise the population of background UEs.
    next_fetch_at_ = now + static_cast<TimeMs>(rng_.exponential(params_.think_mean_s * 1000.0));
    return;
  }
  if (now >= next_fetch_at_) {
    out.push_back(lte::AppPacket{lte::Direction::kUplink,
                                 static_cast<int>(params_.request_bytes)});
    burst_remaining_ =
        rng_.lognormal(std::log(params_.response_kb_mean), params_.response_kb_sigma) * 1000.0;
    next_fetch_at_ = now + static_cast<TimeMs>(rng_.exponential(params_.think_mean_s * 1000.0));
  }
}

BackgroundAppMix::BackgroundAppMix(int app_count, Rng rng)
    : app_count_(std::max(1, app_count)), rng_(rng) {}

void BackgroundAppMix::rotate(TimeMs now) {
  // The paper launches background apps "sequentially with a delay of 3-4
  // seconds"; we refresh one slot of the mix at that cadence.
  next_rotation_at_ =
      now + static_cast<TimeMs>(rng_.uniform(3000.0, 4000.0));
  std::unique_ptr<lte::TrafficSource> fresh;
  // A quarter of the pool are the nine fingerprinted apps (the paper's
  // background pool includes them); the rest are generic top-chart apps
  // modelled as web-like sources. Android throttles backgrounded apps, so
  // web-like sync bursts dominate.
  if (rng_.bernoulli(0.25)) {
    const AppId app = kAllApps[rng_.index(kAllApps.size())];
    fresh = make_app_source(app, 600'000, rng_.fork());
  } else {
    WebBrowsingSource::Params wp;
    wp.think_mean_s = rng_.uniform(3.0, 10.0);
    wp.response_kb_mean = rng_.uniform(20.0, 150.0);
    fresh = std::make_unique<WebBrowsingSource>(wp, rng_.fork());
  }
  if (static_cast<int>(active_.size()) < app_count_) {
    active_.push_back(std::move(fresh));
  } else {
    active_[rng_.index(active_.size())] = std::move(fresh);
  }
}

void BackgroundAppMix::step(TimeMs now, std::vector<lte::AppPacket>& out) {
  if (now >= next_rotation_at_) rotate(now);
  for (auto& src : active_) src->step(now, out);
}

CompositeSource::CompositeSource(std::unique_ptr<lte::TrafficSource> foreground,
                                 std::unique_ptr<lte::TrafficSource> background)
    : foreground_(std::move(foreground)), background_(std::move(background)) {}

void CompositeSource::step(TimeMs now, std::vector<lte::AppPacket>& out) {
  foreground_->step(now, out);
  if (background_) background_->step(now, out);
}

const char* CompositeSource::name() const { return foreground_->name(); }

std::vector<lte::UeId> populate_background_ues(lte::Simulation& sim, lte::CellId cell,
                                               const lte::OperatorProfile& profile,
                                               lte::Imsi imsi_base) {
  std::vector<lte::UeId> ues;
  ues.reserve(static_cast<std::size_t>(profile.background_ues));
  for (int i = 0; i < profile.background_ues; ++i) {
    const lte::UeId ue = sim.add_ue(imsi_base + static_cast<lte::Imsi>(i));
    WebBrowsingSource::Params wp;
    // Scale think time so mean offered load matches the profile.
    const double load_bps = std::max(1000.0, profile.background_load_bps);
    wp.response_kb_mean = 55.0;
    wp.think_mean_s = wp.response_kb_mean * 1000.0 * 8.0 / load_bps;
    ues.push_back(ue);
    sim.set_traffic_source(ue, std::make_unique<WebBrowsingSource>(wp, sim.rng().fork()));
    sim.camp(ue, cell);
  }
  return ues;
}

}  // namespace ltefp::apps
