#include "apps/drift.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace ltefp::apps {

DriftModel::DriftModel(double daily_step, std::uint64_t seed)
    : daily_step_(daily_step), seed_(seed) {}

DriftFactors DriftModel::at(AppId app, int day) const {
  DriftFactors f;
  if (day == 0) return f;
  // Cumulative log-scale walk: each day's increment comes from an Rng
  // keyed on (seed, app, day) so factors are random-looking but stable.
  double log_size = 0.0;
  double log_interval = 0.0;
  const int steps = day >= 0 ? day : -day;
  for (int d = 1; d <= steps; ++d) {
    Rng rng(seed_ ^ (static_cast<std::uint64_t>(app) << 32) ^
            static_cast<std::uint64_t>(d) * 0x9E3779B97F4A7C15ULL);
    log_size += rng.normal(0.0, daily_step_);
    log_interval += rng.normal(0.0, daily_step_);
  }
  f.size_scale = std::exp(log_size);
  f.interval_scale = std::exp(log_interval);
  f.shape_shift = 0.02 * static_cast<double>(steps);
  return f;
}

}  // namespace ltefp::apps
