#include "apps/streaming.hpp"

#include <algorithm>
#include <cmath>

namespace ltefp::apps {
namespace {

constexpr double kBytesPerMsPerKbps = 1000.0 / 8.0 / 1000.0;  // kbps -> bytes/ms

}  // namespace

StreamingSource::StreamingSource(AppId app, StreamingParams params, Rng rng)
    : app_(app), params_(params), rng_(rng) {}

int StreamingSource::sample_packet_size() {
  double size;
  if (params_.uniform_packets) {
    size = rng_.uniform(params_.packet_min_b, params_.packet_max_b);
  } else {
    size = rng_.lognormal(params_.packet_mu, params_.packet_sigma);
  }
  return std::max(1, static_cast<int>(size));
}

void StreamingSource::emit_downlink(double budget_bytes, ltefp::TimeMs now,
                                    std::vector<lte::AppPacket>& out) {
  dl_carry_ += budget_bytes;
  while (dl_carry_ > 0.0 && segment_remaining_ > 0.0) {
    const int pkt = std::min({sample_packet_size(),
                              static_cast<int>(std::ceil(dl_carry_)),
                              static_cast<int>(std::ceil(segment_remaining_))});
    if (pkt <= 0) break;
    out.push_back(lte::AppPacket{lte::Direction::kDownlink, pkt});
    dl_carry_ -= pkt;
    segment_remaining_ -= pkt;
    ack_debt_ += pkt * params_.ul_ack_ratio;
  }
  if (segment_remaining_ <= 0.0) dl_carry_ = 0.0;
  // Flush acks on a timer so uplink shows the sparse, tiny-frame pattern
  // typical of one-way streaming.
  if (ack_debt_ >= 1.0 && now >= next_ack_at_) {
    out.push_back(lte::AppPacket{lte::Direction::kUplink,
                                 static_cast<int>(ack_debt_)});
    ack_debt_ -= static_cast<int>(ack_debt_);
    next_ack_at_ = now + static_cast<ltefp::TimeMs>(params_.ack_flush_ms);
  }
}

void StreamingSource::step(ltefp::TimeMs now, std::vector<lte::AppPacket>& out) {
  if (start_time_ < 0) {
    start_time_ = now;
    next_segment_at_ = now + static_cast<ltefp::TimeMs>(params_.initial_buffer_s * 1000.0);
    segment_remaining_ = 0.0;
  }
  const bool buffering = now < next_segment_at_ && segment_remaining_ <= 0.0 &&
                         now - start_time_ < static_cast<ltefp::TimeMs>(params_.initial_buffer_s * 1000.0);
  if (buffering) {
    // Startup phase: drain at the startup rate as one long burst.
    segment_remaining_ = params_.startup_rate_kbps * kBytesPerMsPerKbps + 1.0;
    emit_downlink(params_.startup_rate_kbps * kBytesPerMsPerKbps, now, out);
    return;
  }

  if (segment_remaining_ > 0.0) {
    emit_downlink(params_.burst_rate_kbps * kBytesPerMsPerKbps, now, out);
    return;
  }

  if (now >= next_segment_at_) {
    // Fetch the next media segment.
    const double kb = rng_.lognormal(std::log(params_.segment_kb_mean), params_.segment_kb_sigma);
    segment_remaining_ = kb * 1000.0;
    // Request goes uplink first (HTTP GET / QUIC stream open).
    out.push_back(lte::AppPacket{
        lte::Direction::kUplink,
        std::max(64, static_cast<int>(rng_.lognormal(params_.request_mu, params_.request_sigma)))});
    const double period_ms = params_.segment_period_s * 1000.0;
    next_segment_at_ = now + static_cast<ltefp::TimeMs>(
                                 std::max(100.0, rng_.normal(period_ms, period_ms * 0.15)));
    emit_downlink(params_.burst_rate_kbps * kBytesPerMsPerKbps, now, out);
  }
}

}  // namespace ltefp::apps
