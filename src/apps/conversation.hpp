// Shared conversation scripts.
//
// The correlation attack (Section III-D / VII-C) rests on the fact that
// when two users talk through the same app, their radio traffic patterns
// mirror each other: A's uplink burst becomes B's downlink burst a network
// round-trip later. We therefore generate one *script* per conversation
// and let both endpoint traffic sources replay it from their own side —
// exactly the ground truth the attack is trying to detect.
#pragma once

#include <memory>
#include <vector>

#include "apps/params.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace ltefp::apps {

/// One message in a chat. Times are relative to conversation start.
struct ChatEvent {
  TimeMs time = 0;
  bool a_to_b = true;  // direction: true = endpoint A sends
  int bytes = 0;       // application payload (text or media)
  bool media = false;  // large attachment (transferred as a burst)
};

using ChatScript = std::vector<ChatEvent>;

/// Generates a chat script of the given duration: Poisson message arrivals
/// with think-time idle gaps (which routinely exceed the RRC inactivity
/// timeout — the cause of messaging's frequent RNTI refreshes).
ChatScript generate_chat_script(const MessagingParams& params, TimeMs duration, Rng& rng);

/// One voice-activity interval in a call; endpoints alternate speaking.
struct TalkInterval {
  TimeMs start = 0;
  TimeMs end = 0;
  bool a_talking = true;
};

using CallScript = std::vector<TalkInterval>;

/// Generates alternating talk spurts / pauses covering `duration`.
CallScript generate_call_script(const VoipParams& params, TimeMs duration, Rng& rng);

}  // namespace ltefp::apps
