// VoIP call traffic model.
//
// Replays a CallScript from one endpoint: 20 ms codec frames uplink while
// this user talks, downlink (delay-shifted) while the peer talks, comfort-
// noise (SID) frames during silence, optional per-frame FEC, and periodic
// RTCP reports. This yields the paper's VoIP signature: continuous,
// near-constant radio usage with "a significant and similar amount of data
// transmitted in both directions".
#pragma once

#include <memory>

#include "apps/conversation.hpp"
#include "common/rng.hpp"
#include "lte/traffic.hpp"

namespace ltefp::apps {

enum class VoipEndpoint { kA, kB };

class VoipSource final : public lte::TrafficSource {
 public:
  /// Standalone call (peer outside the observed cell).
  VoipSource(AppId app, VoipParams params, TimeMs call_duration, Rng rng);

  /// One endpoint of a shared call script (for correlation experiments).
  VoipSource(AppId app, VoipParams params, std::shared_ptr<const CallScript> script,
             VoipEndpoint endpoint, TimeMs network_delay, Rng rng);

  void step(TimeMs now, std::vector<lte::AppPacket>& out) override;
  const char* name() const override { return to_string(app_); }
  AppId app() const { return app_; }

 private:
  /// Whether the local (uplink) or remote (downlink) party is speaking at
  /// script-relative time `rel`.
  bool local_talking(TimeMs rel) const;
  bool remote_talking(TimeMs rel) const;
  int voice_frame_bytes();

  AppId app_;
  VoipParams params_;
  Rng rng_;
  std::shared_ptr<const CallScript> script_;
  VoipEndpoint endpoint_ = VoipEndpoint::kA;
  TimeMs network_delay_ = 60;
  TimeMs start_time_ = -1;
  TimeMs next_ul_frame_ = 0;
  TimeMs next_dl_frame_ = 0;
  TimeMs next_ul_sid_ = 0;
  TimeMs next_dl_sid_ = 0;
  TimeMs next_rtcp_ = 0;
  mutable std::size_t ul_cursor_ = 0;  // monotone scan positions in script
  mutable std::size_t dl_cursor_ = 0;
};

}  // namespace ltefp::apps
