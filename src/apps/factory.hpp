// Factory entry points tying app ids to their traffic models, with the
// drift model applied for day-indexed experiments.
#pragma once

#include <memory>
#include <utility>

#include "apps/app_id.hpp"
#include "apps/conversation.hpp"
#include "apps/drift.hpp"
#include "common/rng.hpp"
#include "lte/traffic.hpp"

namespace ltefp::apps {

/// Session-level adaptation: adaptive codecs (opus/SILK) and ABR players
/// react to the radio conditions of the moment, scaling payload sizes and
/// rates per session. 0 disables (controlled lab), ~0.1 for live networks.
struct SessionContext {
  int day = 0;                // drift day (0 = training day)
  double adapt_jitter = 0.0;  // lognormal sigma of the session's rate scale
};

/// Standalone session of `app` lasting `duration` ms.
std::unique_ptr<lte::TrafficSource> make_app_source(AppId app, TimeMs duration, Rng rng,
                                                    SessionContext ctx = {},
                                                    const DriftModel& drift = DriftModel());

/// Back-compat convenience: day only.
std::unique_ptr<lte::TrafficSource> make_app_source(AppId app, TimeMs duration, Rng rng,
                                                    int day,
                                                    const DriftModel& drift = DriftModel());

/// A correlated pair of endpoint sources sharing one conversation/call
/// script (messaging or VoIP apps only; throws std::invalid_argument for
/// streaming). `network_delay` is the one-way path latency between them.
std::pair<std::unique_ptr<lte::TrafficSource>, std::unique_ptr<lte::TrafficSource>>
make_paired_sources(AppId app, TimeMs duration, Rng rng, TimeMs network_delay = 70, int day = 0,
                    const DriftModel& drift = DriftModel());

}  // namespace ltefp::apps
