// Reusable buffers for the banded DTW dynamic program (dtw.cpp).
//
// One workspace serves any number of sequential dtw_distance /
// dtw_distance_pruned calls without reallocating: the six flat diagonal
// buffers are sized once to the longest first series seen and only grow.
// Before this existed, every pair evaluated by the correlation attack's
// candidate engine paid four vector allocations plus a full-row fill per
// DP row; the workspace plus the kernel's carried band windows remove both.
//
// Not thread-safe — give each worker its own instance (the pair loop in
// similarity_matrix carries one per chunk; series_similarity keeps one per
// thread).
#pragma once

#include <cstddef>
#include <vector>

namespace ltefp::dtw {

class DtwWorkspace {
 public:
  /// Grows the diagonal buffers to hold n+2 cells each (one sentinel slot
  /// on each side of the band window). Called by the kernel on entry; a
  /// no-op once the high-water mark is reached.
  void ensure(std::size_t n) {
    if (cost_a.size() < n + 2) {
      cost_a.resize(n + 2);
      cost_b.resize(n + 2);
      cost_c.resize(n + 2);
      len_a.resize(n + 2);
      len_b.resize(n + 2);
      len_c.resize(n + 2);
    }
  }

  // Three accumulated-cost anti-diagonals and three path-length
  // anti-diagonals (the DP recurrence reads two diagonals back). Path
  // lengths are kept as doubles so the three-way min compiles to
  // branch-free selects (they stay exact: lengths never exceed 2^53). The
  // kernel rotates the a/b/c roles every diagonal; contents are scratch
  // between calls.
  std::vector<double> cost_a, cost_b, cost_c, len_a, len_b, len_c;
};

}  // namespace ltefp::dtw
