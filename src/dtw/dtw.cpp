#include "dtw/dtw.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <vector>

// SSE2 is part of the x86-64 baseline ABI, so the vector path below needs
// no extra compile flags and no runtime dispatch there; other
// architectures take the portable scalar loop.
#if defined(__SSE2__)
#include <emmintrin.h>
#define LTEFP_DTW_SSE2 1
#endif

#include "common/parallel.hpp"
#include "dtw/envelope.hpp"

namespace ltefp::dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMaxDistance = std::numeric_limits<double>::max();

std::atomic<std::uint64_t> g_dp_calls{0};
std::atomic<std::uint64_t> g_dp_cells{0};
std::atomic<std::uint64_t> g_dp_abandoned{0};

/// Effective Sakoe-Chiba half-width: at least |n - m| so a path exists.
long long effective_band(int band, std::size_t n, std::size_t m) {
  if (band < 0) return -1;
  return std::max<long long>(band, std::llabs(static_cast<long long>(n) -
                                              static_cast<long long>(m)));
}

struct KernelOut {
  double raw = 0.0;       // accumulated cost at (n, m)
  double path_len = 0.0;  // cells of the optimal path
  bool reachable = false;
  bool abandoned = false;
};

/// take ? x : y through an integer mask — guaranteed branchless (the
/// compiler's own if-conversion of a ternary is not), so a data-dependent
/// select never costs a pipeline flush in the DP inner loop.
inline double bit_select(bool take, double x, double y) {
  std::uint64_t xb, yb;
  std::memcpy(&xb, &x, sizeof xb);
  std::memcpy(&yb, &y, sizeof yb);
  const std::uint64_t mask = 0ULL - static_cast<std::uint64_t>(take);
  const std::uint64_t out = (xb & mask) | (yb & ~mask);
  double r;
  std::memcpy(&r, &out, sizeof r);
  return r;
}

/// The banded DP, evaluated one ANTI-DIAGONAL (constant i+j) at a time
/// over the workspace's flat diagonal buffers. `band` must be the
/// EFFECTIVE half-width (>= |n-m|; effective_band guarantees this — it
/// keeps every diagonal's in-band interval non-empty, which the sentinel
/// scheme below relies on), or < 0 for unconstrained.
///
/// Why diagonals and not rows: a row-major inner loop carries curr[j-1]
/// through the three-way min, a serial minsd+addsd dependency chain that
/// caps throughput at ~8 cycles per cell (or worse once the data-dependent
/// select branches start mispredicting on real corpora). Cells on one
/// anti-diagonal are mutually independent — cell (i, d-i) reads only
/// diagonals d-1 (up, left) and d-2 (diag) — so the inner loop has no
/// loop-carried dependency at all: selects if-convert to branchless
/// cmov/blend and the FP latency overlaps across the whole band width.
/// Each cell still computes |a_i - b_j| + min(diag, up, left) with the
/// same strict-< tie order (diagonal, then up, then left) as the row
/// form, so every cell value — and therefore every distance and path
/// length — is reproduced bit-for-bit.
///
/// Band bookkeeping: on diagonal d the in-band cells form one contiguous
/// i-interval [lo, hi] whose edges advance by at most one per diagonal, so
/// they are carried across diagonals (amortised O(1)) and one +inf
/// sentinel on each side of the interval makes every stale buffer cell
/// read as unreachable — no full fills, no allocation.
///
/// Early abandoning: when cutoff < inf, every warping path must cross
/// diagonal d or d-1 (path steps advance i+j by 1 or 2), and costs along a
/// path are non-decreasing, so min over the last two diagonals is a lower
/// bound on the final accumulated cost. Dividing by the maximum path
/// length and cutoff_scale (both divisions monotone in IEEE arithmetic)
/// lower-bounds the final reported key, and once that exceeds `cutoff` no
/// continuation can matter — an abandon never contradicts a completed run.
KernelOut banded_kernel(std::span<const double> a, std::span<const double> b, long long band,
                        double cutoff, double cutoff_scale, double max_path,
                        DtwWorkspace& ws) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  ws.ensure(n);
  double* d2 = ws.cost_a.data();  // diagonal d-2
  double* d1 = ws.cost_b.data();  // diagonal d-1
  double* d0 = ws.cost_c.data();  // diagonal being filled
  double* l2 = ws.len_a.data();
  double* l1 = ws.len_b.data();
  double* l0 = ws.len_c.data();
  const double* av = a.data();
  const double* bv = b.data();

  // Frontier: only cell (0,0) on diagonal 0 is a real origin; the rest of
  // the d < 2 border is unreachable.
  d2[0] = 0.0;
  l2[0] = 0.0;
  d2[1] = kInf;
  d1[0] = kInf;
  d1[1] = kInf;
  d1[2] = kInf;

  const bool bounded = cutoff < kInf;
  long long lo_band = 1;  // carried band edges (monotone in d)
  long long hi_band = 0;
  double min_d1 = kInf;  // min cost over the previous diagonal
  std::uint64_t cells = 0;
  bool abandoned = false;

  for (std::size_t d = 2; d <= n + m; ++d) {
    std::size_t lo = d > m ? d - m : 1;
    std::size_t hi = std::min(n, d - 1);
    if (band >= 0) {
      // In-band on diagonal d: center(i)-band <= d-i <= center(i)+band
      // with center(i) = i*m/n, exactly the row-form membership test.
      // d-i-center(i) is strictly decreasing in i, so the in-band set is
      // one interval; both its edges only ever advance as d grows.
      if (lo_band < static_cast<long long>(lo)) lo_band = static_cast<long long>(lo);
      while (lo_band <= static_cast<long long>(hi) &&
             static_cast<long long>(d) - lo_band >
                 lo_band * static_cast<long long>(m) / static_cast<long long>(n) + band) {
        ++lo_band;
      }
      lo = static_cast<std::size_t>(lo_band);
      while (hi_band < static_cast<long long>(n) &&
             static_cast<long long>(d) - (hi_band + 1) >=
                 (hi_band + 1) * static_cast<long long>(m) / static_cast<long long>(n) -
                     band) {
        ++hi_band;
      }
      hi = std::min(hi, static_cast<std::size_t>(hi_band));
    }

    // Every cell evaluates |a_i - b_j| + min(diag, up, left), path length
    // following the winner with the strict-< tie order diagonal -> up ->
    // left; the lane math below is that exact expression, two cells at a
    // time, with mask blends instead of branches.
    std::size_t i = lo;
#if LTEFP_DTW_SSE2
    const __m128d sign_bit = _mm_set1_pd(-0.0);
    const __m128d one = _mm_set1_pd(1.0);
    for (; i + 1 <= hi; i += 2) {
      const __m128d va = _mm_loadu_pd(av + (i - 1));
      __m128d vb = _mm_loadu_pd(bv + (d - i - 2));  // cells walk b backwards
      vb = _mm_shuffle_pd(vb, vb, 1);
      const __m128d cost = _mm_andnot_pd(sign_bit, _mm_sub_pd(va, vb));
      const __m128d diag = _mm_loadu_pd(d2 + (i - 1));
      const __m128d up = _mm_loadu_pd(d1 + (i - 1));
      const __m128d left = _mm_loadu_pd(d1 + i);
      const __m128d len_dg = _mm_loadu_pd(l2 + (i - 1));
      const __m128d len_up = _mm_loadu_pd(l1 + (i - 1));
      const __m128d len_lf = _mm_loadu_pd(l1 + i);
      const __m128d take_up = _mm_cmplt_pd(up, diag);
      __m128d best = _mm_min_pd(up, diag);  // = up < diag ? up : diag
      __m128d best_len =
          _mm_or_pd(_mm_and_pd(take_up, len_up), _mm_andnot_pd(take_up, len_dg));
      const __m128d take_left = _mm_cmplt_pd(left, best);
      best = _mm_min_pd(left, best);
      best_len =
          _mm_or_pd(_mm_and_pd(take_left, len_lf), _mm_andnot_pd(take_left, best_len));
      _mm_storeu_pd(d0 + i, _mm_add_pd(cost, best));
      _mm_storeu_pd(l0 + i, _mm_add_pd(best_len, one));
    }
#endif
    for (; i <= hi; ++i) {
      const double cost = std::abs(av[i - 1] - bv[d - i - 1]);
      const double diag = d2[i - 1];
      const double up = d1[i - 1];
      const double left = d1[i];
      const bool take_up = up < diag;
      double best = std::min(diag, up);  // = up < diag ? up : diag
      double best_len = bit_select(take_up, l1[i - 1], l2[i - 1]);
      const bool take_left = left < best;
      best = std::min(best, left);
      best_len = bit_select(take_left, l1[i], best_len);
      d0[i] = cost + best;
      l0[i] = best_len + 1.0;
    }
    d0[lo - 1] = kInf;
    d0[hi + 1] = kInf;
    cells += hi - lo + 1;

    if (bounded) {
      double min_d0 = kInf;
      std::size_t r = lo;
#if LTEFP_DTW_SSE2
      __m128d vmin = _mm_set1_pd(kInf);
      for (; r + 1 <= hi; r += 2) vmin = _mm_min_pd(vmin, _mm_loadu_pd(d0 + r));
      min_d0 = std::min(_mm_cvtsd_f64(vmin),
                        _mm_cvtsd_f64(_mm_unpackhi_pd(vmin, vmin)));
#endif
      for (; r <= hi; ++r) min_d0 = d0[r] < min_d0 ? d0[r] : min_d0;
      const double reach = min_d0 < min_d1 ? min_d0 : min_d1;
      if (d > 2 && (reach / max_path) / cutoff_scale > cutoff) {
        abandoned = true;
        break;
      }
      min_d1 = min_d0;
    }

    double* t = d2;
    d2 = d1;
    d1 = d0;
    d0 = t;
    t = l2;
    l2 = l1;
    l1 = l0;
    l0 = t;
  }

  g_dp_calls.fetch_add(1, std::memory_order_relaxed);
  g_dp_cells.fetch_add(cells, std::memory_order_relaxed);
  KernelOut out;
  if (abandoned) {
    g_dp_abandoned.fetch_add(1, std::memory_order_relaxed);
    out.abandoned = true;
    return out;
  }
  // The final cell (n, m) sits at index n of the last diagonal, which the
  // end-of-loop rotation just moved into d1.
  if (d1[n] < kInf) {
    out.reachable = true;
    out.raw = d1[n];
    out.path_len = l1[n];
  }
  return out;
}

DtwResult finish(const KernelOut& out, const DtwOptions& options) {
  DtwResult result;
  if (!out.reachable) {
    result.distance = kMaxDistance;
    return result;
  }
  result.path_length = static_cast<std::size_t>(out.path_len);
  result.distance = options.normalize_by_path && out.path_len > 0.0
                        ? out.raw / out.path_len
                        : out.raw;
  return result;
}

double sum_abs(std::span<const double> s) {
  double total = 0.0;
  for (const double v : s) total += std::abs(v);
  return total;
}

/// series_similarity with the per-series mean-abs numerators precomputed —
/// the cached form the pair loops use. The level check runs BEFORE the DP:
/// all-zero (or empty) series short-circuit to similarity 0 without paying
/// the quadratic kernel.
double pair_similarity(std::span<const double> a, std::span<const double> b, double sum_a,
                       double sum_b, const DtwOptions& options, DtwWorkspace& ws) {
  if (a.empty() || b.empty()) return 0.0;
  // Scale by the mean absolute level so similarity reflects *shape*
  // agreement, not raw magnitude: sim = exp(-d / mean_level), which maps
  // the realistic capture confounders (HARQ duplicates, sniffer clock
  // skew, ambient device noise) onto the paper's observed (0.6, 0.95)
  // operating range.
  const double level = (sum_a + sum_b) / static_cast<double>(a.size() + b.size());
  if (level <= 0.0) return 0.0;
  const DtwResult r = dtw_distance(a, b, options, ws);
  if (r.path_length == 0) return 0.0;
  return similarity_from_distance(r.distance, level);
}

DtwWorkspace& thread_workspace() {
  static thread_local DtwWorkspace ws;
  return ws;
}

}  // namespace

DtwResult dtw_distance(std::span<const double> a, std::span<const double> b,
                       const DtwOptions& options, DtwWorkspace& workspace) {
  if (a.empty() || b.empty()) {
    DtwResult result;
    result.distance = kMaxDistance;
    return result;
  }
  const long long band = effective_band(options.band, a.size(), b.size());
  const double max_path =
      options.normalize_by_path ? static_cast<double>(a.size() + b.size() - 1) : 1.0;
  return finish(banded_kernel(a, b, band, kInf, 1.0, max_path, workspace), options);
}

DtwResult dtw_distance(std::span<const double> a, std::span<const double> b,
                       const DtwOptions& options) {
  return dtw_distance(a, b, options, thread_workspace());
}

PrunedDtwResult dtw_distance_pruned(std::span<const double> a, std::span<const double> b,
                                    const DtwOptions& options, double cutoff,
                                    double cutoff_scale, DtwWorkspace& workspace) {
  PrunedDtwResult out;
  if (a.empty() || b.empty()) {
    out.result.distance = kMaxDistance;
    return out;
  }
  const long long band = effective_band(options.band, a.size(), b.size());
  const double max_path =
      options.normalize_by_path ? static_cast<double>(a.size() + b.size() - 1) : 1.0;
  const double scale = cutoff_scale > 0.0 ? cutoff_scale : 1.0;
  const KernelOut k = banded_kernel(a, b, band, cutoff, scale, max_path, workspace);
  if (k.abandoned) {
    out.abandoned = true;
    out.result.distance = kMaxDistance;
    return out;
  }
  out.result = finish(k, options);
  return out;
}

double similarity_from_distance(double distance, double scale) {
  if (scale <= 0.0) return 0.0;
  return std::exp(-distance / scale);
}

double series_similarity(std::span<const double> a, std::span<const double> b,
                         const DtwOptions& options) {
  return pair_similarity(a, b, sum_abs(a), sum_abs(b), options, thread_workspace());
}

std::vector<double> similarity_matrix(std::span<const std::vector<double>> series,
                                      const DtwOptions& options) {
  const std::size_t n = series.size();
  std::vector<double> matrix(n * n, 0.0);
  if (n == 0) return matrix;
  // Cached once per series instead of once per pair: the mean-abs level
  // numerators the similarity scaling divides by.
  std::vector<double> sums(n);
  for (std::size_t i = 0; i < n; ++i) sums[i] = sum_abs(series[i]);
  // Flattened upper-triangle row offsets: offsets[i] is the pair index of
  // (i, i), so task dispatch inverts k -> (i, j) with one binary search
  // per chunk instead of a linear row scan per pair.
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + (n - i);
  const std::size_t pairs = offsets[n];
  // Chunked so each worker amortises one workspace across many pairs.
  const std::size_t chunk =
      std::max<std::size_t>(1, pairs / (8 * static_cast<std::size_t>(thread_count())));
  // Each task owns slots (i,j) and (j,i); no two tasks share a slot.
  parallel_for(pairs, chunk, [&](std::size_t begin, std::size_t end) {
    DtwWorkspace ws;
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.end(), begin) - offsets.begin() - 1);
    for (std::size_t k = begin; k < end; ++k) {
      while (offsets[i + 1] <= k) ++i;  // advance row; amortised O(1)
      const std::size_t j = i + (k - offsets[i]);
      const double sim = pair_similarity(series[i], series[j], sums[i], sums[j], options, ws);
      matrix[i * n + j] = sim;
      matrix[j * n + i] = sim;
    }
  });
  return matrix;
}

// --- pruned candidate search ----------------------------------------------

namespace {

/// A candidate that survived to scoring. Ranking key is dist / level (what
/// the similarity exponent negates): minimising the key maximises the
/// similarity, and comparing keys instead of exp(-key) keeps winner
/// selection exact even where libm's exp rounds two distinct keys to the
/// same similarity.
struct Scored {
  double key = kInf;
  double sim = 0.0;
  double dist = kMaxDistance;
  std::size_t index = kNoMatch;
};

/// Strict "ranks ahead of": lower key, ties to the lower index — the same
/// winner an index-order brute-force scan with strict improvement picks.
bool ranks_ahead(const Scored& x, const Scored& y) {
  return x.key < y.key || (x.key == y.key && x.index < y.index);
}

/// Keeps `sel` the sorted k-best set under ranks_ahead.
void insert_scored(std::vector<Scored>& sel, std::size_t k, const Scored& s) {
  if (sel.size() == k) {
    if (!ranks_ahead(s, sel.back())) return;
    sel.pop_back();
  }
  sel.insert(std::lower_bound(sel.begin(), sel.end(), s, ranks_ahead), s);
}

}  // namespace

std::vector<Match> top_k(std::span<const double> query,
                         std::span<const std::vector<double>> candidates, std::size_t k,
                         const SearchOptions& options, SearchStats* stats) {
  SearchStats local;
  SearchStats& st = stats ? *stats : local;
  st = SearchStats{};
  st.candidates = candidates.size();
  if (k == 0 || candidates.empty()) return {};

  const std::size_t n = candidates.size();
  const std::size_t qn = query.size();
  const double sum_q = sum_abs(query);

  // O(1)-per-candidate precomputation: cached mean-abs levels and the
  // LB_Kim endpoint bound, in key units (bound / level). Zero-level and
  // empty pairs short-circuit to similarity 0 with no DP at all.
  std::vector<double> level(n, 0.0);
  std::vector<double> lb(n, kInf);
  std::vector<unsigned char> shortcut(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cand = candidates[i];
    if (qn == 0 || cand.empty()) {
      shortcut[i] = 1;
      continue;
    }
    const double lvl =
        (sum_q + sum_abs(cand)) / static_cast<double>(qn + cand.size());
    if (lvl <= 0.0) {
      shortcut[i] = 1;
      continue;
    }
    level[i] = lvl;
    lb[i] = lb_kim(query, cand, options.dtw) / lvl;
  }

  // Screen candidates cheapest-looking first: ascending LB_Kim key, ties
  // by index. The order only affects how fast the cutoff tightens — the
  // admissible skip rules below keep the RESULT identical to evaluating
  // everything (short-circuits sort last; their key is exactly +inf).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return lb[x] < lb[y] || (lb[x] == lb[y] && x < y);
  });

  DtwEnvelope query_env;
  bool have_env = false;
  std::vector<Scored> sel;
  sel.reserve(std::min(k, n));
  DtwWorkspace ws;

  for (const std::size_t idx : order) {
    if (shortcut[idx]) {
      ++st.short_circuits;
      insert_scored(sel, k, Scored{kInf, 0.0, kMaxDistance, idx});
      continue;
    }
    const bool full = sel.size() == k;
    // A candidate may be skipped only when it provably cannot enter the
    // k-best set: its bound (<= its true key, see envelope.hpp) already
    // ranks behind the current worst member, index tie included.
    if (options.prune && full) {
      const Scored& worst = sel.back();
      double bound = lb[idx];
      if (bound > worst.key || (bound == worst.key && idx > worst.index)) {
        ++st.lb_kim_pruned;
        continue;
      }
      const auto& cand = candidates[idx];
      if (cand.size() == qn) {
        if (!have_env) {
          query_env = make_envelope(query, options.dtw.band);
          have_env = true;
        }
        const double keogh = lb_keogh(cand, query_env, options.dtw) / level[idx];
        if (keogh > bound) bound = keogh;
        if (bound > worst.key || (bound == worst.key && idx > worst.index)) {
          ++st.lb_keogh_pruned;
          continue;
        }
      }
    }
    // Full DP, abandoning once the key provably exceeds the current worst
    // key (a tie could still enter on a lower index, so only a STRICT
    // exceedance abandons — dtw_distance_pruned's cutoff is strict).
    const double cutoff = options.prune && full ? sel.back().key : kInf;
    const PrunedDtwResult r =
        dtw_distance_pruned(query, candidates[idx], options.dtw, cutoff, level[idx], ws);
    if (r.abandoned) {
      ++st.abandoned;
      continue;
    }
    ++st.full_dp;
    Scored s;
    s.index = idx;
    if (r.result.path_length > 0) {
      s.dist = r.result.distance;
      s.key = s.dist / level[idx];
      s.sim = std::exp(-s.key);
    }
    insert_scored(sel, k, s);
  }

  std::vector<Match> out;
  out.reserve(sel.size());
  for (const Scored& s : sel) out.push_back(Match{s.index, s.sim, s.dist});
  return out;
}

Match best_match(std::span<const double> query,
                 std::span<const std::vector<double>> candidates,
                 const SearchOptions& options, SearchStats* stats) {
  const auto matches = top_k(query, candidates, 1, options, stats);
  return matches.empty() ? Match{} : matches.front();
}

KernelCounters kernel_counters() {
  KernelCounters c;
  c.dp_calls = g_dp_calls.load(std::memory_order_relaxed);
  c.dp_cells = g_dp_cells.load(std::memory_order_relaxed);
  c.dp_abandoned = g_dp_abandoned.load(std::memory_order_relaxed);
  return c;
}

void reset_kernel_counters() {
  g_dp_calls.store(0, std::memory_order_relaxed);
  g_dp_cells.store(0, std::memory_order_relaxed);
  g_dp_abandoned.store(0, std::memory_order_relaxed);
}

}  // namespace ltefp::dtw
