#include "dtw/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/parallel.hpp"

namespace ltefp::dtw {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

DtwResult dtw_distance(std::span<const double> a, std::span<const double> b,
                       const DtwOptions& options) {
  DtwResult result;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) {
    result.distance = std::numeric_limits<double>::max();
    return result;
  }

  // Effective band: at least |n - m| so a path exists.
  long long band = options.band;
  if (band >= 0) {
    band = std::max<long long>(band, std::llabs(static_cast<long long>(n) -
                                                static_cast<long long>(m)));
  }

  // Two-row DP over accumulated cost; parallel rows track path length.
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  std::vector<std::size_t> prev_len(m + 1, 0), curr_len(m + 1, 0);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    curr[0] = kInf;
    std::size_t j_lo = 1, j_hi = m;
    if (band >= 0) {
      const long long center = static_cast<long long>(i) * static_cast<long long>(m) /
                               static_cast<long long>(n);
      j_lo = static_cast<std::size_t>(std::max<long long>(1, center - band));
      j_hi = static_cast<std::size_t>(std::min<long long>(static_cast<long long>(m), center + band));
    }
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::abs(a[i - 1] - b[j - 1]);  // Euclidean in 1-D
      double best = prev[j - 1];
      std::size_t best_len = prev_len[j - 1];
      if (prev[j] < best) {
        best = prev[j];
        best_len = prev_len[j];
      }
      if (curr[j - 1] < best) {
        best = curr[j - 1];
        best_len = curr_len[j - 1];
      }
      if (best == kInf) continue;
      curr[j] = cost + best;
      curr_len[j] = best_len + 1;
    }
    std::swap(prev, curr);
    std::swap(prev_len, curr_len);
  }

  if (prev[m] == kInf) {
    result.distance = std::numeric_limits<double>::max();
    return result;
  }
  result.path_length = prev_len[m];
  result.distance = options.normalize_by_path && result.path_length > 0
                        ? prev[m] / static_cast<double>(result.path_length)
                        : prev[m];
  return result;
}

double similarity_from_distance(double distance, double scale) {
  if (scale <= 0.0) return 0.0;
  return std::exp(-distance / scale);
}

std::vector<double> similarity_matrix(std::span<const std::vector<double>> series,
                                      const DtwOptions& options) {
  const std::size_t n = series.size();
  std::vector<double> matrix(n * n, 0.0);
  // Upper-triangle pair k -> (i, j), i <= j. Each task owns slots (i,j)
  // and (j,i); no two tasks share a slot.
  const std::size_t pairs = n * (n + 1) / 2;
  parallel_for(pairs, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      // Invert k = i*n - i*(i-1)/2 + (j - i) by scanning rows: cheap next
      // to the O(len²) DTW each cell costs.
      std::size_t i = 0, row_start = 0;
      while (row_start + (n - i) <= k) {
        row_start += n - i;
        ++i;
      }
      const std::size_t j = i + (k - row_start);
      const double sim = series_similarity(series[i], series[j], options);
      matrix[i * n + j] = sim;
      matrix[j * n + i] = sim;
    }
  });
  return matrix;
}

double series_similarity(std::span<const double> a, std::span<const double> b,
                         const DtwOptions& options) {
  const DtwResult r = dtw_distance(a, b, options);
  if (r.path_length == 0) return 0.0;
  // Scale by the mean absolute level so similarity reflects *shape*
  // agreement, not raw magnitude: sim = exp(-d / mean_level), which maps
  // the realistic capture confounders (HARQ duplicates, sniffer clock
  // skew, ambient device noise) onto the paper's observed (0.6, 0.95)
  // operating range.
  double level = 0.0;
  for (double v : a) level += std::abs(v);
  for (double v : b) level += std::abs(v);
  level /= static_cast<double>(a.size() + b.size());
  if (level <= 0.0) return 0.0;
  return similarity_from_distance(r.distance, level);
}

}  // namespace ltefp::dtw
