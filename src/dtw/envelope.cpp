#include "dtw/envelope.hpp"

#include <algorithm>
#include <cmath>

namespace ltefp::dtw {
namespace {

/// Sliding-window extreme via a monotonic deque (Lemire's streaming
/// min-max): every element is pushed and popped at most once, O(n) total
/// regardless of the window radius.
void sliding_extreme(std::span<const double> s, std::size_t radius, bool want_max,
                     std::vector<double>& out) {
  const std::size_t n = s.size();
  out.resize(n);
  std::vector<std::size_t> deque(n);
  std::size_t head = 0, tail = 0, added = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t win_end = std::min(n - 1, i + radius);
    for (; added <= win_end; ++added) {
      while (tail > head && (want_max ? s[deque[tail - 1]] <= s[added]
                                      : s[deque[tail - 1]] >= s[added])) {
        --tail;
      }
      deque[tail++] = added;
    }
    const std::size_t win_begin = i > radius ? i - radius : 0;
    while (deque[head] < win_begin) ++head;
    out[i] = s[deque[head]];
  }
}

/// Raw accumulated-cost bound -> DtwResult.distance units: divide by the
/// maximum path length so the bound never exceeds the path-normalised
/// distance (see envelope.hpp header comment for the admissibility
/// argument).
double derate(double raw, std::size_t n, std::size_t m, const DtwOptions& options) {
  if (!options.normalize_by_path) return raw;
  return raw / static_cast<double>(n + m - 1);
}

}  // namespace

DtwEnvelope make_envelope(std::span<const double> series, int band) {
  DtwEnvelope env;
  env.band = band;
  const std::size_t n = series.size();
  if (n == 0) return env;
  const std::size_t radius =
      band < 0 ? n - 1 : std::min<std::size_t>(static_cast<std::size_t>(band), n - 1);
  sliding_extreme(series, radius, /*want_max=*/true, env.upper);
  sliding_extreme(series, radius, /*want_max=*/false, env.lower);
  return env;
}

double lb_kim(std::span<const double> a, std::span<const double> b,
              const DtwOptions& options) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return 0.0;
  double raw = std::abs(a[0] - b[0]);
  // The end cell is distinct from the start cell whenever the path has
  // more than one cell; for 1x1 the single cell must not be counted twice.
  if (n + m > 2) raw += std::abs(a[n - 1] - b[m - 1]);
  return derate(raw, n, m, options);
}

double lb_keogh(std::span<const double> series, const DtwEnvelope& envelope,
                const DtwOptions& options) {
  const std::size_t n = series.size();
  if (n == 0 || envelope.upper.size() != n) return 0.0;
  double raw = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = series[i];
    if (v > envelope.upper[i]) {
      raw += v - envelope.upper[i];
    } else if (v < envelope.lower[i]) {
      raw += envelope.lower[i] - v;
    }
  }
  return derate(raw, n, n, options);
}

}  // namespace ltefp::dtw
