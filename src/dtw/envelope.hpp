// Sakoe-Chiba envelopes and the cascading lower bounds of the UCR-style
// DTW candidate search (LB_Kim -> LB_Keogh -> early-abandoning DP).
//
// Both bounds are returned in the same units as DtwResult.distance: when
// DtwOptions::normalize_by_path is set, the raw bound is derated by the
// MAXIMUM warping-path length n+m-1. The true normalised distance divides
// the (larger) accumulated cost by the ACTUAL path length (<= n+m-1), and
// IEEE division is monotone, so bound <= distance holds as computed
// doubles, not just in exact arithmetic — pruning on these bounds is
// admissible bit-for-bit (pinned by tests/test_dtw_search.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dtw/dtw.hpp"

namespace ltefp::dtw {

/// Per-series upper/lower running extremes over the Sakoe-Chiba window:
/// upper[i] = max(series[i-band .. i+band]), lower[i] = the min. Computed
/// once per series (O(L) via monotonic deques) and reused against every
/// candidate of the same length.
struct DtwEnvelope {
  std::vector<double> upper, lower;
  int band = -1;  // radius the envelope was built for (-1 = unconstrained)
};

DtwEnvelope make_envelope(std::span<const double> series, int band);

/// O(1) endpoint bound: every warping path starts at cell (1,1) and ends
/// at (n,m), so it pays at least |a0-b0| + |a_end-b_end| (the single
/// shared cell when both series have length 1). Valid for any pair of
/// lengths. Empty series => 0 (no bound).
double lb_kim(std::span<const double> a, std::span<const double> b,
              const DtwOptions& options = {});

/// O(L) envelope bound: each series[i] must align to at least one point of
/// the envelope's source inside the band, paying at least its distance to
/// the [lower[i], upper[i]] tube. Requires series.size() ==
/// envelope.upper.size() and an envelope band covering the DP band (equal
/// lengths keep the effective DP band at options.band, so an envelope
/// built with the same band is always valid); returns 0 (no bound) on a
/// size mismatch.
double lb_keogh(std::span<const double> series, const DtwEnvelope& envelope,
                const DtwOptions& options = {});

}  // namespace ltefp::dtw
