// Dynamic Time Warping (paper Section VII-C, Equation 1).
//
// The correlation attack compares two users' per-T_w frame-count series:
// D(i,j) = d(i,j) + min(D(i-1,j-1), D(i-1,j), D(i,j-1)) with Euclidean
// local cost, as in Berndt & Clifford. We additionally support a
// Sakoe-Chiba band constraint and a path-length-normalised distance so
// similarity scores are comparable across trace lengths.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ltefp::dtw {

struct DtwOptions {
  /// Sakoe-Chiba band half-width; negative = unconstrained.
  int band = -1;
  /// Normalise the accumulated distance by warping-path length.
  bool normalize_by_path = true;
};

struct DtwResult {
  double distance = 0.0;        // accumulated (optionally path-normalised)
  std::size_t path_length = 0;  // warping path cells
};

/// DTW distance between two series. Either series empty => infinity-like
/// large distance with path_length 0.
DtwResult dtw_distance(std::span<const double> a, std::span<const double> b,
                       const DtwOptions& options = {});

/// Maps a (path-normalised) DTW distance to a similarity score in (0, 1]:
/// exp(-distance / scale). `scale` tunes the contrast; the attack
/// calibrates it per series magnitude.
double similarity_from_distance(double distance, double scale);

/// One-call similarity of two series with per-magnitude scaling: distance
/// is normalised by the mean absolute level of the two series, so a pair
/// of high-volume traces is not penalised for absolute size.
double series_similarity(std::span<const double> a, std::span<const double> b,
                         const DtwOptions& options = {});

/// Flattened row-major n×n matrix of series_similarity over every pair —
/// the correlation attack's candidate-pair engine (Tables VI/VII at corpus
/// scale). Symmetric: pairs (i <= j) are computed concurrently on the
/// global pool, each task writing only its own mirrored slots, so the
/// matrix is bit-identical at any thread count.
std::vector<double> similarity_matrix(std::span<const std::vector<double>> series,
                                      const DtwOptions& options = {});

}  // namespace ltefp::dtw
