// Dynamic Time Warping (paper Section VII-C, Equation 1) and the exact
// acceleration engine around it.
//
// The correlation attack compares two users' per-T_w frame-count series:
// D(i,j) = d(i,j) + min(D(i-1,j-1), D(i-1,j), D(i,j-1)) with Euclidean
// local cost, as in Berndt & Clifford. We additionally support a
// Sakoe-Chiba band constraint and a path-length-normalised distance so
// similarity scores are comparable across trace lengths.
//
// At corpus scale the attack is quadratic twice over (every pair is one
// DTW, each DTW is O(L^2)), so the kernel here is built UCR-Suite style:
// an allocation-free banded DP (evaluated along anti-diagonals, whose
// cells are mutually independent and therefore SIMD-friendly) over a
// reusable DtwWorkspace, early abandoning against a caller-supplied
// cutoff at every DP frontier, and a cascade of
// cheap lower bounds (envelope.hpp) that lets best_match / top_k skip most
// full DP evaluations while returning bit-identical winners and distances
// to brute force — the pruning is exact, never approximate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dtw/workspace.hpp"

namespace ltefp::dtw {

struct DtwOptions {
  /// Sakoe-Chiba band half-width; negative = unconstrained.
  int band = -1;
  /// Normalise the accumulated distance by warping-path length.
  bool normalize_by_path = true;
};

struct DtwResult {
  double distance = 0.0;        // accumulated (optionally path-normalised)
  std::size_t path_length = 0;  // warping path cells
};

/// DTW distance between two series. Either series empty => infinity-like
/// large distance with path_length 0.
DtwResult dtw_distance(std::span<const double> a, std::span<const double> b,
                       const DtwOptions& options = {});

/// Same, but runs the DP in the caller's workspace — the allocation-free
/// form the pair loops use. Results are bit-identical to the overload
/// above (which keeps one workspace per thread internally).
DtwResult dtw_distance(std::span<const double> a, std::span<const double> b,
                       const DtwOptions& options, DtwWorkspace& workspace);

struct PrunedDtwResult {
  DtwResult result;
  /// True when the DP was cut short because no continuation could reach
  /// final `distance / cutoff_scale <= cutoff`; `result` is then the
  /// empty-series sentinel (max distance, path_length 0).
  bool abandoned = false;
};

/// Early-abandoning DTW: after each anti-diagonal, abandons as soon as the
/// frontier proves the final distance must satisfy
/// `distance / cutoff_scale > cutoff` (admissible — every warping path
/// crosses one of the last two diagonals, costs are non-negative, the
/// frontier minimum is divided by the maximum path length n+m-1, and IEEE
/// division is monotone, so a completed run never contradicts an abandon).
/// Pass cutoff = +infinity to disable abandoning; cutoff_scale is the
/// per-pair similarity level for searches (1.0 for plain distance cutoffs).
PrunedDtwResult dtw_distance_pruned(std::span<const double> a, std::span<const double> b,
                                    const DtwOptions& options, double cutoff,
                                    double cutoff_scale, DtwWorkspace& workspace);

/// Maps a (path-normalised) DTW distance to a similarity score in (0, 1]:
/// exp(-distance / scale). `scale` tunes the contrast; the attack
/// calibrates it per series magnitude.
double similarity_from_distance(double distance, double scale);

/// One-call similarity of two series with per-magnitude scaling: distance
/// is normalised by the mean absolute level of the two series, so a pair
/// of high-volume traces is not penalised for absolute size.
double series_similarity(std::span<const double> a, std::span<const double> b,
                         const DtwOptions& options = {});

/// Flattened row-major n×n matrix of series_similarity over every pair —
/// the correlation attack's candidate-pair engine (Tables VI/VII at corpus
/// scale). Symmetric: pairs (i <= j) are computed concurrently on the
/// global pool, each task writing only its own mirrored slots, so the
/// matrix is bit-identical at any thread count. Per-series mean-abs levels
/// are cached once per series (not once per pair), and each worker chunk
/// reuses one DtwWorkspace.
std::vector<double> similarity_matrix(std::span<const std::vector<double>> series,
                                      const DtwOptions& options = {});

// --- pruned candidate search ---------------------------------------------

/// Sentinel index for "no candidate" (empty candidate set).
inline constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

struct Match {
  std::size_t index = kNoMatch;
  double similarity = 0.0;  // series_similarity of (query, candidates[index])
  double distance = 0.0;    // its DTW distance (max double when undefined)
};

struct SearchOptions {
  DtwOptions dtw;
  /// false = evaluate every candidate with the full DP (the brute-force
  /// reference the exactness tests pin pruned results against).
  bool prune = true;
};

/// Where the candidate evaluations went. `candidates` always equals
/// short_circuits + lb_kim_pruned + lb_keogh_pruned + abandoned + full_dp.
struct SearchStats {
  std::size_t candidates = 0;
  std::size_t full_dp = 0;          // DPs run to completion
  std::size_t lb_kim_pruned = 0;    // skipped by the O(1) endpoint bound
  std::size_t lb_keogh_pruned = 0;  // skipped by the O(L) envelope bound
  std::size_t abandoned = 0;        // DPs cut short by the best-so-far cutoff
  std::size_t short_circuits = 0;   // empty series / zero level: similarity
                                    // is 0 by definition, no DP needed
  std::size_t pruned() const { return lb_kim_pruned + lb_keogh_pruned + abandoned; }
};

/// Highest-similarity candidate for `query` (ties broken by lowest index).
/// Candidates are screened cheapest-bound-first — LB_Kim endpoints, then
/// LB_Keogh against the query's Sakoe-Chiba envelope, then the early-
/// abandoning DP against the best similarity so far — and the result is
/// bit-identical to evaluating every candidate (SearchOptions::prune =
/// false), at any thread count.
Match best_match(std::span<const double> query,
                 std::span<const std::vector<double>> candidates,
                 const SearchOptions& options = {}, SearchStats* stats = nullptr);

/// The k best candidates, ordered by descending similarity (ties by
/// ascending index). Same exactness contract as best_match; pruning cuts
/// against the current k-th best. Returns min(k, candidates.size())
/// matches.
std::vector<Match> top_k(std::span<const double> query,
                         std::span<const std::vector<double>> candidates, std::size_t k,
                         const SearchOptions& options = {}, SearchStats* stats = nullptr);

// --- kernel counters ------------------------------------------------------

/// Process-wide tallies of DP kernel work, for bench reporting (relaxed
/// atomics; never part of any computed result).
struct KernelCounters {
  std::uint64_t dp_calls = 0;
  std::uint64_t dp_cells = 0;      // band cells actually evaluated
  std::uint64_t dp_abandoned = 0;  // calls cut short by a cutoff
};
KernelCounters kernel_counters();
void reset_kernel_counters();

}  // namespace ltefp::dtw
