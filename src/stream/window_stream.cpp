#include "stream/window_stream.hpp"

#include <algorithm>

namespace ltefp::stream {

StreamingWindower::StreamingWindower(TimeMs session_start,
                                     const features::WindowConfig& config)
    : config_(config), session_start_(session_start), ws_(session_start) {}

void StreamingWindower::feed(const sniffer::TraceRecord& r, std::vector<WindowSlice>& out) {
  if (!lte::direction_passes(config_.link, r.direction)) return;
  // Records before the session anchor are consumed but never windowed (the
  // batch extractor skips them without touching the interarrival seam).
  if (r.time < session_start_) return;

  while (r.time >= ws_ + config_.window_ms) close_window(out);

  // Interarrival seam: the previous frame is the last frame in this window,
  // or — for the window's first frame — the last frame of the previous
  // non-empty window (window_features' prev_frame_time parameter).
  const TimeMs prev = win_last_ >= 0 ? win_last_ : prev_frame_time_;
  if (prev >= 0) inter_.add(static_cast<double>(r.time - prev));

  size_all_.add(r.tb_bytes);
  if (r.direction == lte::Direction::kDownlink) {
    size_dl_.add(r.tb_bytes);
    ++dl_count_;
    dl_bytes_ += r.tb_bytes;
  } else {
    size_ul_.add(r.tb_bytes);
    ++ul_count_;
    ul_bytes_ += r.tb_bytes;
  }
  if (r.time != win_last_) ++active_ms_;  // sorted input: duplicates are adjacent
  rntis_.insert(r.rnti);
  if (r.tb_bytes <= 50) {
    ++tiny_;
  } else if (r.tb_bytes <= 150) {
    ++small_;
  } else if (r.tb_bytes <= 400) {
    ++mid_;
  } else if (r.tb_bytes <= 1000) {
    ++large_;
  } else {
    ++huge_;
  }
  sizes_.push_back(static_cast<double>(r.tb_bytes));
  win_last_ = r.time;
  last_time_ = r.time;
  ++accepted_;
}

void StreamingWindower::close_until(TimeMs watermark, std::vector<WindowSlice>& out) {
  while (ws_ + config_.window_ms <= watermark) close_window(out);
}

void StreamingWindower::finish(std::vector<WindowSlice>& out) {
  // extract_windows iterates `ws <= last_time`: the window containing the
  // last frame is the final one emitted.
  while (accepted_ > 0 && ws_ <= last_time_) close_window(out);
  pending_empty_.clear();
}

WindowSlice StreamingWindower::make_slice() const {
  WindowSlice slice;
  slice.window_end = ws_ + config_.window_ms;
  slice.last_record = win_last_;
  slice.frames = sizes_.size();

  const double total_frames = static_cast<double>(sizes_.size());
  const double total_bytes = static_cast<double>(dl_bytes_ + ul_bytes_);
  const double gap_before =
      prev_frame_time_ >= 0 ? static_cast<double>(ws_ - prev_frame_time_)
                            : static_cast<double>(ws_ - session_start_);

  features::FeatureVector f(features::kFeatureCount, 0.0);
  f[0] = total_frames;
  f[1] = total_bytes;
  f[2] = size_all_.mean();
  f[3] = size_all_.stddev();
  f[4] = sizes_.empty() ? 0.0 : size_all_.min();
  f[5] = size_all_.max();
  f[6] = sizes_.size() >= 2 ? inter_.mean() : static_cast<double>(config_.window_ms);
  f[7] = inter_.stddev();
  f[8] = static_cast<double>(ws_ - session_start_) / 1000.0;
  f[9] = total_frames > 0 ? dl_count_ / total_frames : 0.0;
  f[10] = total_bytes > 0 ? static_cast<double>(dl_bytes_) / total_bytes : 0.0;
  f[11] = static_cast<double>(dl_count_);
  f[12] = static_cast<double>(ul_count_);
  f[13] = static_cast<double>(active_ms_) / static_cast<double>(config_.window_ms);
  f[14] = static_cast<double>(rntis_.size());
  f[15] = std::min(gap_before, 60'000.0);
  if (!sizes_.empty()) {
    f[16] = tiny_ / total_frames;
    f[17] = small_ / total_frames;
    f[18] = mid_ / total_frames;
    f[19] = large_ / total_frames;
    f[20] = huge_ / total_frames;
    median_scratch_.assign(sizes_.begin(), sizes_.end());
    std::nth_element(median_scratch_.begin(),
                     median_scratch_.begin() +
                         static_cast<std::ptrdiff_t>(median_scratch_.size() / 2),
                     median_scratch_.end());
    f[21] = median_scratch_[median_scratch_.size() / 2];
  }
  slice.features = std::move(f);
  return slice;
}

void StreamingWindower::close_window(std::vector<WindowSlice>& out) {
  if (!sizes_.empty()) {
    // Flush buffered interior empties first: they precede this window in
    // the batch extractor's emission order.
    for (auto& e : pending_empty_) out.push_back(std::move(e));
    emitted_ += pending_empty_.size();
    pending_empty_.clear();
    out.push_back(make_slice());
    ++emitted_;
    prev_frame_time_ = win_last_;
  } else if (config_.include_empty) {
    pending_empty_.push_back(make_slice());
  }
  ws_ += config_.window_ms;
  reset_window();
}

void StreamingWindower::reset_window() {
  size_all_ = RunningStats();
  size_dl_ = RunningStats();
  size_ul_ = RunningStats();
  inter_ = RunningStats();
  dl_count_ = ul_count_ = 0;
  dl_bytes_ = ul_bytes_ = 0;
  active_ms_ = 0;
  rntis_.clear();
  tiny_ = small_ = mid_ = large_ = huge_ = 0;
  sizes_.clear();
  win_last_ = -1;
}

}  // namespace ltefp::stream
