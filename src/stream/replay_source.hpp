// Record sources for the streaming daemon.
//
// A StreamSource yields StreamRecords in merged (time, lane) order — the
// global arrival order the driver shards over its workers. ReplaySource is
// the corpus-backed implementation: it opens every .ltt entry of a
// tracestore corpus as an incremental Reader and k-way merges them, so a
// multi-gigabyte corpus streams at O(lanes) memory instead of being decoded
// whole. The speed multiplier is carried as metadata for the CLI pacer; the
// source itself is clock-free (src/ determinism contract).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "stream/session.hpp"
#include "tracestore/corpus.hpp"
#include "tracestore/reader.hpp"

namespace ltefp::stream {

class StreamSource {
 public:
  virtual ~StreamSource() = default;
  /// Yields the next record; false at end of stream. Records arrive in
  /// non-decreasing time order, ties broken by ascending lane.
  virtual bool next(StreamRecord& out) = 0;
};

/// Streams an in-memory record list (tests, benchmarks). The records must
/// already be in (time, lane) order.
class VectorSource final : public StreamSource {
 public:
  explicit VectorSource(std::vector<StreamRecord> records)
      : records_(std::move(records)) {}
  bool next(StreamRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }

 private:
  std::vector<StreamRecord> records_;
  std::size_t pos_ = 0;
};

/// K-way merges every entry of a tracestore corpus; lane = entry seq.
class ReplaySource final : public StreamSource {
 public:
  /// Opens `directory` (throws TraceStoreError when absent/corrupt).
  /// `speed` is the sim-time-per-wall-time multiplier the CLI pacer will
  /// honor; 0 means unpaced (as fast as the pipeline drains), negative
  /// throws.
  explicit ReplaySource(const std::string& directory, double speed = 0.0);
  ~ReplaySource() override;

  bool next(StreamRecord& out) override;

  double speed() const { return speed_; }
  std::size_t lanes() const { return streams_.size(); }
  std::size_t records_emitted() const { return emitted_; }

 private:
  struct LaneStream {
    std::uint32_t lane = 0;
    std::unique_ptr<std::ifstream> file;
    std::unique_ptr<tracestore::Reader> reader;
    StreamRecord head;  // next record of this lane, already decoded
  };

  bool refill(LaneStream& s);  // loads s.head; false at lane end

  double speed_;
  std::vector<LaneStream> streams_;
  // Min-heap of indices into streams_, ordered by (head.time, lane); kept
  // with std::make_heap/std::push_heap on a plain vector — stream code must
  // not grow unbounded std:: queues (see ltefp-lint "bounded-queues").
  std::vector<std::size_t> heap_;
  std::size_t emitted_ = 0;
};

}  // namespace ltefp::stream
