#include "stream/daemon.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "apps/app_id.hpp"
#include "common/parallel.hpp"
#include "common/spsc.hpp"
#include "features/matrix.hpp"

namespace ltefp::stream {
namespace {

/// In-band queue item: a record, a watermark marker, or end-of-stream.
struct Item {
  enum class Kind : std::uint8_t { kRecord, kWatermark, kFlush };
  Kind kind = Kind::kRecord;
  StreamRecord rec;
  TimeMs watermark = 0;
};

/// Strict total order over verdicts: times strictly increase within a
/// lane, so (time, cell, lane) never ties across distinct verdicts.
bool verdict_before(const VerdictRecord& a, const VerdictRecord& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.lane < b.lane;
}

/// Per-session vote accumulator, keyed by (lane, session).
using VoteKey = std::pair<std::uint32_t, std::uint32_t>;

struct VoteState {
  std::vector<std::size_t> votes = std::vector<std::size_t>(apps::kNumApps, 0);
  std::uint32_t windows = 0;
};

struct Worker {
  explicit Worker(const StreamConfig& config)
      : queue(config.queue_capacity),
        assembler(config.window, config.idle_cutoff),
        latency(Histogram::linear(0.0, static_cast<double>(kSubframeBatchMs), 64)) {}

  SpscQueue<Item> queue;
  SessionAssembler assembler;

  // Published state (worker writes, driver reads) — guarded by m.
  std::mutex m;
  std::vector<VerdictRecord> outbox;
  TimeMs acked = -1;

  // Worker-private until join.
  Histogram latency;
  std::size_t window_verdicts = 0;
  std::size_t final_verdicts = 0;
  std::map<VoteKey, VoteState> votes;
  std::vector<PendingWindow> pending_windows;
  std::vector<SessionEnd> pending_ends;
  std::vector<VerdictRecord> batch_out;
  std::thread thread;
};

}  // namespace

StreamDaemon::StreamDaemon(const ml::Classifier& model, StreamConfig config)
    : model_(model), config_(std::move(config)) {
  if (config_.batch_ms < 1) throw std::invalid_argument("StreamDaemon: batch_ms must be >= 1");
  if (config_.idle_cutoff <= config_.window.window_ms) {
    throw std::invalid_argument("StreamDaemon: idle_cutoff must exceed the window");
  }
  if (config_.workers < 0) throw std::invalid_argument("StreamDaemon: workers must be >= 0");
  // Queue capacity is validated by SpscQueue at run().
}

namespace {

/// Classifies one batch's pending windows, folds them into the session
/// votes, appends the batch's verdicts (sorted), and publishes them with
/// the acknowledged watermark.
void process_batch(Worker& w, const ml::Classifier& model, const StreamConfig& config,
                   TimeMs ack) {
  w.batch_out.clear();
  if (!w.pending_windows.empty()) {
    features::Dataset batch;
    for (const auto& pw : w.pending_windows) batch.add(pw.features, 0);
    const features::DatasetMatrix matrix(batch);
    const auto rows = matrix.all_rows();
    const std::vector<int> predictions = model.predict_rows(matrix, rows);
    for (std::size_t i = 0; i < w.pending_windows.size(); ++i) {
      const PendingWindow& pw = w.pending_windows[i];
      VoteState& vs = w.votes[VoteKey{pw.lane, pw.session}];
      ++vs.votes[static_cast<std::size_t>(predictions[i])];
      ++vs.windows;
      if (pw.last_record >= 0) {
        w.latency.add(static_cast<double>(pw.window_end - pw.last_record));
      }
      if (!config.emit_window_verdicts) continue;
      const auto winner = static_cast<std::size_t>(
          std::max_element(vs.votes.begin(), vs.votes.end()) - vs.votes.begin());
      VerdictRecord v;
      v.time = pw.window_end;
      v.cell = pw.cell;
      v.lane = pw.lane;
      v.rnti = pw.rnti;
      v.session = pw.session;
      v.app = static_cast<apps::AppId>(winner);
      v.confidence = static_cast<double>(vs.votes[winner]) / static_cast<double>(vs.windows);
      v.windows = vs.windows;
      v.final_verdict = false;
      w.batch_out.push_back(v);
      ++w.window_verdicts;
    }
  }
  for (const SessionEnd& e : w.pending_ends) {
    // A session whose records were all link-filtered away has no vote
    // entry; the all-zero vote mirrors classify_trace's default verdict.
    VoteState vs;
    const auto it = w.votes.find(VoteKey{e.lane, e.session});
    if (it != w.votes.end()) {
      vs = std::move(it->second);
      w.votes.erase(it);
    }
    const auto winner = static_cast<std::size_t>(
        std::max_element(vs.votes.begin(), vs.votes.end()) - vs.votes.begin());
    VerdictRecord v;
    v.time = e.end_time;
    v.cell = e.cell;
    v.lane = e.lane;
    v.rnti = e.rnti;
    v.session = e.session;
    v.app = static_cast<apps::AppId>(winner);
    v.confidence = vs.windows > 0 ? static_cast<double>(vs.votes[winner]) /
                                        static_cast<double>(vs.windows)
                                  : 0.0;
    v.windows = vs.windows;
    v.final_verdict = true;
    w.batch_out.push_back(v);
    ++w.final_verdicts;
  }
  w.pending_windows.clear();
  w.pending_ends.clear();
  std::sort(w.batch_out.begin(), w.batch_out.end(), verdict_before);
  {
    const std::lock_guard<std::mutex> lock(w.m);
    w.outbox.insert(w.outbox.end(), w.batch_out.begin(), w.batch_out.end());
    w.acked = ack;
  }
}

void worker_main(Worker& w, const ml::Classifier& model, const StreamConfig& config) {
  Item item;
  for (;;) {
    w.queue.pop(item);
    switch (item.kind) {
      case Item::Kind::kRecord:
        w.assembler.feed(item.rec, w.pending_windows, w.pending_ends);
        break;
      case Item::Kind::kWatermark:
        w.assembler.advance(item.watermark, w.pending_windows, w.pending_ends);
        process_batch(w, model, config, item.watermark);
        break;
      case Item::Kind::kFlush:
        w.assembler.finish(w.pending_windows, w.pending_ends);
        process_batch(w, model, config, std::numeric_limits<TimeMs>::max());
        return;
    }
  }
}

/// Driver-side progressive merge state: verdicts pulled from a worker's
/// outbox, consumed front to back.
struct MergeLane {
  std::vector<VerdictRecord> pending;
  std::size_t pos = 0;
};

}  // namespace

StreamStats StreamDaemon::run(StreamSource& source, VerdictSink& sink) {
  const int n = config_.workers > 0 ? config_.workers : thread_count();
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers.push_back(std::make_unique<Worker>(config_));

  StreamStats stats;
  std::vector<MergeLane> merge(workers.size());

  // Pulls newly published verdicts from every worker, then emits the merged
  // prefix whose times are <= the minimum acknowledged watermark. The merge
  // order is the strict total (time, cell, lane) order, so WHEN batches are
  // drained affects only emission batching, never the verdict sequence.
  const auto drain = [&] {
    TimeMs min_acked = std::numeric_limits<TimeMs>::max();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = *workers[i];
      const std::lock_guard<std::mutex> lock(w.m);
      if (!w.outbox.empty()) {
        merge[i].pending.insert(merge[i].pending.end(), w.outbox.begin(), w.outbox.end());
        w.outbox.clear();
      }
      min_acked = std::min(min_acked, w.acked);
    }
    for (;;) {
      std::size_t best = merge.size();
      for (std::size_t i = 0; i < merge.size(); ++i) {
        if (merge[i].pos >= merge[i].pending.size()) continue;
        const VerdictRecord& head = merge[i].pending[merge[i].pos];
        if (head.time > min_acked) continue;
        if (best == merge.size() ||
            verdict_before(head, merge[best].pending[merge[best].pos])) {
          best = i;
        }
      }
      if (best == merge.size()) break;
      sink.emit(merge[best].pending[merge[best].pos++]);
    }
    for (auto& lane : merge) {
      if (lane.pos == lane.pending.size()) {
        lane.pending.clear();
        lane.pos = 0;
      }
    }
  };

  for (auto& w : workers) {
    Worker* raw = w.get();
    w->thread = std::thread([raw, this] { worker_main(*raw, model_, config_); });
  }

  const TimeMs batch = config_.batch_ms;
  TimeMs next_wm = batch;
  StreamRecord rec;
  while (source.next(rec)) {
    if (rec.record.time >= next_wm) {
      // Skip straight to the last grid point covered by this record: the
      // intermediate watermarks would close the same windows cumulatively,
      // so collapsing them changes batching, never verdict content/order.
      const TimeMs wm = (rec.record.time / batch) * batch;
      if (config_.pacer) config_.pacer(wm);
      Item mark;
      mark.kind = Item::Kind::kWatermark;
      mark.watermark = wm;
      for (auto& w : workers) w->queue.push(mark);
      ++stats.batches;
      next_wm = wm + batch;
      drain();
    }
    Item item;
    item.kind = Item::Kind::kRecord;
    item.rec = rec;
    const std::size_t shard = rec.lane % workers.size();
    workers[shard]->queue.push(std::move(item));
    ++stats.records;
  }

  Item flush;
  flush.kind = Item::Kind::kFlush;
  for (auto& w : workers) w->queue.push(flush);
  for (auto& w : workers) w->thread.join();
  drain();  // all workers acked TimeMs max: emits everything left

  stats.queue_high_water.reserve(workers.size());
  for (auto& w : workers) {
    stats.sessions += w->assembler.sessions_started();
    stats.window_verdicts += w->window_verdicts;
    stats.final_verdicts += w->final_verdicts;
    stats.latency.merge(w->latency);
    stats.queue_high_water.push_back(w->queue.high_water());
  }
  return stats;
}

}  // namespace ltefp::stream
