// Incremental session assembly: the per-victim state machine between the
// decode queues and the inference stage.
//
// Each victim stream ("lane" — under replay, the corpus seq) carries a
// sequence of sessions separated by idle gaps of at least
// attacks::kSessionIdleCutoffMs. The assembler mirrors what batch
// collection produces implicitly: a session starts at its first record
// (the classify_trace session_start anchor) and ends once the gap since
// its last record reaches the cutoff — detected either by the next record
// arriving late or by the watermark advancing past last + cutoff. Windows
// stream out of the per-session StreamingWindower as they close, so
// feature extraction never rescans the trace.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "features/window.hpp"
#include "lte/types.hpp"
#include "sniffer/trace.hpp"
#include "stream/window_stream.hpp"

namespace ltefp::stream {

/// One decoded record tagged with its victim stream.
struct StreamRecord {
  std::uint32_t lane = 0;
  sniffer::TraceRecord record;

  bool operator==(const StreamRecord&) const = default;
};

/// A closed window awaiting classification, with the session coordinates
/// the verdict will carry.
struct PendingWindow {
  std::uint32_t lane = 0;
  lte::CellId cell = 0;
  lte::Rnti rnti = 0;          // session's first RNTI binding
  std::uint32_t session = 0;   // per-lane session index
  TimeMs window_end = 0;
  TimeMs last_record = -1;     // last frame in the window (-1: empty window)
  features::FeatureVector features;

  bool operator==(const PendingWindow&) const = default;
};

/// A session that has ended (idle cutoff reached or stream finished).
struct SessionEnd {
  std::uint32_t lane = 0;
  lte::CellId cell = 0;
  lte::Rnti rnti = 0;
  std::uint32_t session = 0;
  TimeMs end_time = 0;  // last record time + idle cutoff

  bool operator==(const SessionEnd&) const = default;
};

class SessionAssembler {
 public:
  /// `idle_cutoff` must exceed the window length, so a session always ends
  /// strictly after its last window closes.
  SessionAssembler(const features::WindowConfig& window, TimeMs idle_cutoff);

  /// Feeds one record (times non-decreasing per lane — and globally, when
  /// driven from the merged stream). May first end the lane's previous
  /// session if the record arrives after the idle cutoff.
  void feed(const StreamRecord& r, std::vector<PendingWindow>& windows,
            std::vector<SessionEnd>& ends);

  /// Watermark tick: every record with time < `watermark` has been fed.
  /// Closes windows ending at or before the watermark and cuts sessions
  /// whose idle gap has provably elapsed. Lanes are visited in lane order.
  void advance(TimeMs watermark, std::vector<PendingWindow>& windows,
               std::vector<SessionEnd>& ends);

  /// End of stream: flushes every live session (its end_time still uses
  /// last record + cutoff, keeping verdict times source-determined).
  void finish(std::vector<PendingWindow>& windows, std::vector<SessionEnd>& ends);

  std::size_t records() const { return records_; }
  std::size_t sessions_started() const { return sessions_; }

 private:
  struct Lane {
    std::uint32_t next_session = 0;
    std::uint32_t session = 0;
    lte::CellId cell = 0;
    lte::Rnti rnti = 0;
    TimeMs last_raw = -1;  // last record of the live session, pre-filter
    std::optional<StreamingWindower> windower;  // engaged while live
  };

  void append_windows(std::uint32_t lane_id, const Lane& lane,
                      std::vector<WindowSlice>& slices,
                      std::vector<PendingWindow>& windows);
  void close_session(std::uint32_t lane_id, Lane& lane,
                     std::vector<PendingWindow>& windows, std::vector<SessionEnd>& ends);

  features::WindowConfig window_;
  TimeMs idle_cutoff_;
  // Ordered by lane id: advance()/finish() emission order is deterministic.
  std::map<std::uint32_t, Lane> lanes_;
  std::vector<WindowSlice> scratch_;
  std::size_t records_ = 0;
  std::size_t sessions_ = 0;
};

}  // namespace ltefp::stream
