// Verdict stream — the streaming daemon's output product.
//
// Where the batch pipeline ends in a confusion matrix, the daemon emits a
// timestamped per-victim verdict stream: one interim verdict per classified
// window (the vote converging live) and one final verdict per session (the
// majority vote, equal to batch classify_trace on the same records). The
// stream is totally ordered by (time, cell, lane) and byte-identical at any
// worker count — see DESIGN.md "Streaming attack daemon".
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "apps/app_id.hpp"
#include "common/sim_time.hpp"
#include "lte/types.hpp"

namespace ltefp::stream {

/// One classification verdict for a victim stream. A "lane" is the stable
/// victim identity the assembler tracks (under replay: the corpus seq); the
/// RNTI recorded is the session's first binding, kept for operator-side
/// cross-referencing even though the victim's RNTI churns.
struct VerdictRecord {
  TimeMs time = 0;            // sim time the decision became knowable
  lte::CellId cell = 0;
  std::uint32_t lane = 0;     // victim stream id
  lte::Rnti rnti = 0;         // first RNTI of the session
  std::uint32_t session = 0;  // per-lane session index
  apps::AppId app = apps::AppId::kNetflix;
  double confidence = 0.0;    // leading-app votes / windows voted so far
  std::uint32_t windows = 0;  // windows voted so far
  bool final_verdict = false; // session majority vote vs interim window vote

  bool operator==(const VerdictRecord&) const = default;
};

/// Header for the fixed CSV verdict format (no trailing newline).
std::string verdict_csv_header();

/// One verdict as a CSV line matching verdict_csv_header(); fixed-precision
/// confidence, so equal verdict streams render to equal bytes.
std::string to_csv(const VerdictRecord& v);

/// Where verdicts go. emit() is called on the daemon's driver thread, in
/// final merged (time, cell, lane) order.
class VerdictSink {
 public:
  virtual ~VerdictSink() = default;
  virtual void emit(const VerdictRecord& v) = 0;
};

/// Invokes a callback per verdict (alert hooks, downstream pipelines).
class CallbackSink final : public VerdictSink {
 public:
  explicit CallbackSink(std::function<void(const VerdictRecord&)> fn) : fn_(std::move(fn)) {}
  void emit(const VerdictRecord& v) override {
    if (fn_) fn_(v);
  }

 private:
  std::function<void(const VerdictRecord&)> fn_;
};

/// Streams the CSV form (header first) to an ostream the caller owns.
class CsvSink final : public VerdictSink {
 public:
  explicit CsvSink(std::ostream& out);
  void emit(const VerdictRecord& v) override;

 private:
  std::ostream& out_;
};

/// Collects verdicts in memory (tests, CLI summaries).
class CollectorSink final : public VerdictSink {
 public:
  void emit(const VerdictRecord& v) override { verdicts_.push_back(v); }
  const std::vector<VerdictRecord>& verdicts() const { return verdicts_; }

 private:
  std::vector<VerdictRecord> verdicts_;
};

}  // namespace ltefp::stream
