#include "stream/session.hpp"

#include <stdexcept>

namespace ltefp::stream {

SessionAssembler::SessionAssembler(const features::WindowConfig& window, TimeMs idle_cutoff)
    : window_(window), idle_cutoff_(idle_cutoff) {
  if (idle_cutoff_ <= window_.window_ms) {
    throw std::invalid_argument("SessionAssembler: idle cutoff must exceed the window");
  }
}

void SessionAssembler::append_windows(std::uint32_t lane_id, const Lane& lane,
                                      std::vector<WindowSlice>& slices,
                                      std::vector<PendingWindow>& windows) {
  for (auto& s : slices) {
    PendingWindow w;
    w.lane = lane_id;
    w.cell = lane.cell;
    w.rnti = lane.rnti;
    w.session = lane.session;
    w.window_end = s.window_end;
    w.last_record = s.last_record;
    w.features = std::move(s.features);
    windows.push_back(std::move(w));
  }
  slices.clear();
}

void SessionAssembler::close_session(std::uint32_t lane_id, Lane& lane,
                                     std::vector<PendingWindow>& windows,
                                     std::vector<SessionEnd>& ends) {
  scratch_.clear();
  lane.windower->finish(scratch_);
  append_windows(lane_id, lane, scratch_, windows);
  ends.push_back(SessionEnd{lane_id, lane.cell, lane.rnti, lane.session,
                            lane.last_raw + idle_cutoff_});
  lane.windower.reset();
}

void SessionAssembler::feed(const StreamRecord& r, std::vector<PendingWindow>& windows,
                            std::vector<SessionEnd>& ends) {
  Lane& lane = lanes_[r.lane];
  if (lane.windower && r.record.time - lane.last_raw >= idle_cutoff_) {
    close_session(r.lane, lane, windows, ends);
  }
  if (!lane.windower) {
    lane.session = lane.next_session++;
    lane.cell = r.record.cell;
    lane.rnti = r.record.rnti;
    lane.windower.emplace(r.record.time, window_);
    ++sessions_;
  }
  scratch_.clear();
  lane.windower->feed(r.record, scratch_);
  append_windows(r.lane, lane, scratch_, windows);
  lane.last_raw = r.record.time;
  ++records_;
}

void SessionAssembler::advance(TimeMs watermark, std::vector<PendingWindow>& windows,
                               std::vector<SessionEnd>& ends) {
  for (auto& [lane_id, lane] : lanes_) {
    if (!lane.windower) continue;
    if (lane.last_raw + idle_cutoff_ <= watermark) {
      close_session(lane_id, lane, windows, ends);
      continue;
    }
    scratch_.clear();
    lane.windower->close_until(watermark, scratch_);
    append_windows(lane_id, lane, scratch_, windows);
  }
}

void SessionAssembler::finish(std::vector<PendingWindow>& windows,
                              std::vector<SessionEnd>& ends) {
  for (auto& [lane_id, lane] : lanes_) {
    if (lane.windower) close_session(lane_id, lane, windows, ends);
  }
}

}  // namespace ltefp::stream
