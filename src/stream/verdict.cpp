#include "stream/verdict.hpp"

#include <cstdio>
#include <ostream>

namespace ltefp::stream {

std::string verdict_csv_header() {
  return "time_ms,cell,lane,rnti,session,app,confidence,windows,final";
}

std::string to_csv(const VerdictRecord& v) {
  char line[160];
  std::snprintf(line, sizeof(line), "%lld,%u,%u,%u,%u,%s,%.6f,%u,%d",
                static_cast<long long>(v.time), static_cast<unsigned>(v.cell),
                static_cast<unsigned>(v.lane), static_cast<unsigned>(v.rnti),
                static_cast<unsigned>(v.session), apps::to_string(v.app), v.confidence,
                static_cast<unsigned>(v.windows), v.final_verdict ? 1 : 0);
  return line;
}

CsvSink::CsvSink(std::ostream& out) : out_(out) { out_ << verdict_csv_header() << '\n'; }

void CsvSink::emit(const VerdictRecord& v) { out_ << to_csv(v) << '\n'; }

}  // namespace ltefp::stream
