// Incremental sliding-window feature extraction for the streaming daemon.
//
// StreamingWindower is the online counterpart of features::extract_windows:
// it consumes one record at a time and keeps per-window running statistics
// (Welford accumulators, band counters, a reused frame-size scratch), so
// each arriving subframe costs O(1) amortized — no whole-trace rescan when
// a window closes. The contract is bit-identity: feeding a session's
// records through feed()/close_until()/finish() yields exactly the feature
// vectors extract_windows(trace, session_start, config) computes, in the
// same order, including the cross-window interarrival seam, the
// gap-before-window feature, and include_empty interior windows.
#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "features/dataset.hpp"
#include "features/window.hpp"
#include "lte/types.hpp"
#include "sniffer/trace.hpp"

namespace ltefp::stream {

/// A completed window: its feature vector plus the timing the daemon needs
/// for verdict stamping and decision-latency measurement.
struct WindowSlice {
  features::FeatureVector features;
  TimeMs window_end = 0;    // exclusive end of the window
  TimeMs last_record = -1;  // time of the window's last frame (-1: empty)
  std::size_t frames = 0;

  bool operator==(const WindowSlice&) const = default;
};

class StreamingWindower {
 public:
  /// Windows are anchored at `session_start`, exactly as extract_windows
  /// anchors window 0 and the cumulative-time feature.
  StreamingWindower(TimeMs session_start, const features::WindowConfig& config);

  /// Feeds one record (times must be non-decreasing). Windows the record
  /// closes by crossing their end are appended to `out` in window order.
  void feed(const sniffer::TraceRecord& r, std::vector<WindowSlice>& out);

  /// Closes every window whose end is <= `watermark` — callable once all
  /// records with time < watermark have been fed (the daemon's batch tick).
  void close_until(TimeMs watermark, std::vector<WindowSlice>& out);

  /// End of session: emits up to and including the window holding the last
  /// record, mirroring extract_windows' `ws <= last_time` loop bound
  /// (buffered trailing empty windows are discarded, as the batch extractor
  /// never emits them). The windower must not be fed afterwards.
  void finish(std::vector<WindowSlice>& out);

  /// Time of the last record accepted by the link filter (-1: none yet).
  TimeMs last_record_time() const { return last_time_; }
  std::size_t accepted() const { return accepted_; }
  std::size_t emitted() const { return emitted_; }

 private:
  void close_window(std::vector<WindowSlice>& out);
  WindowSlice make_slice() const;
  void reset_window();

  features::WindowConfig config_;
  TimeMs session_start_;
  TimeMs ws_;                      // current window start
  TimeMs prev_frame_time_ = -1;    // last frame before the current window
  TimeMs last_time_ = -1;          // last accepted record overall
  std::size_t accepted_ = 0;
  std::size_t emitted_ = 0;

  // Interior empty windows (include_empty only): buffered here and flushed
  // ahead of the next non-empty window, so trailing empties — which the
  // batch extractor never emits — can be dropped at finish().
  std::vector<WindowSlice> pending_empty_;

  // --- per-window accumulators (reset each window) -----------------------
  // Mirrors features::window_features field by field; additions happen in
  // record-arrival order, so every Welford update sequence is identical.
  RunningStats size_all_, size_dl_, size_ul_, inter_;
  int dl_count_ = 0, ul_count_ = 0;
  long long dl_bytes_ = 0, ul_bytes_ = 0;
  std::size_t active_ms_ = 0;      // distinct record times (input is sorted)
  std::unordered_set<lte::Rnti> rntis_;  // membership/size only, never iterated
  int tiny_ = 0, small_ = 0, mid_ = 0, large_ = 0, huge_ = 0;
  std::vector<double> sizes_;      // frame sizes, for min/median
  mutable std::vector<double> median_scratch_;
  TimeMs win_last_ = -1;           // last frame time within the window
};

}  // namespace ltefp::stream
