#include "stream/replay_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace ltefp::stream {

ReplaySource::ReplaySource(const std::string& directory, double speed) : speed_(speed) {
  if (speed_ < 0.0) throw std::invalid_argument("ReplaySource: speed must be positive");
  const tracestore::Corpus corpus = tracestore::Corpus::open(directory);
  streams_.reserve(corpus.entries().size());
  for (const auto& entry : corpus.entries()) {
    LaneStream s;
    s.lane = static_cast<std::uint32_t>(entry.seq);
    s.file = std::make_unique<std::ifstream>(directory + "/" + entry.file,
                                             std::ios::binary);
    if (!*s.file) {
      throw std::runtime_error("ReplaySource: cannot open " + entry.file);
    }
    s.reader = std::make_unique<tracestore::Reader>(*s.file);
    streams_.push_back(std::move(s));
  }
  const auto later = [this](std::size_t a, std::size_t b) {
    const StreamRecord& ra = streams_[a].head;
    const StreamRecord& rb = streams_[b].head;
    if (ra.record.time != rb.record.time) return ra.record.time > rb.record.time;
    return ra.lane > rb.lane;
  };
  heap_.reserve(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (refill(streams_[i])) heap_.push_back(i);
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
}

ReplaySource::~ReplaySource() = default;

bool ReplaySource::refill(LaneStream& s) {
  if (!s.reader->next(s.head.record)) return false;
  s.head.lane = s.lane;
  return true;
}

bool ReplaySource::next(StreamRecord& out) {
  if (heap_.empty()) return false;
  const auto later = [this](std::size_t a, std::size_t b) {
    const StreamRecord& ra = streams_[a].head;
    const StreamRecord& rb = streams_[b].head;
    if (ra.record.time != rb.record.time) return ra.record.time > rb.record.time;
    return ra.lane > rb.lane;
  };
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const std::size_t idx = heap_.back();
  out = streams_[idx].head;
  if (refill(streams_[idx])) {
    std::push_heap(heap_.begin(), heap_.end(), later);
  } else {
    heap_.pop_back();
  }
  ++emitted_;
  return true;
}

}  // namespace ltefp::stream
