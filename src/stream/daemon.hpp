// The streaming attack daemon: online classification while capturing.
//
// Batch-synchronous watermark pipeline. The driver (the thread calling
// run()) consumes the globally time-ordered record stream, shards it over
// K workers by lane (lane % K), and pushes records plus in-band watermark
// markers through bounded SPSC queues — a full queue applies backpressure
// instead of buffering without bound. Each worker owns a SessionAssembler
// over its lane shard, batch-classifies the windows that close each
// watermark interval through the shared trained classifier, accumulates
// per-session window votes, and publishes its verdicts sorted by
// (time, cell, lane). The driver progressively k-way merges worker
// outboxes up to the minimum acknowledged watermark, so the sink sees one
// totally ordered verdict stream.
//
// Determinism contract: each worker's output is a pure function of its
// in-band item sequence, which is a pure function of the source; and
// (time, cell, lane) is a strict total order over all verdicts (times
// strictly increase within a lane). Hence the merged stream is
// byte-identical at any worker count — the acceptance criterion the
// StreamEndToEnd test pins at 1/2/8 workers.
//
// Decision latency: an interim verdict is stamped at its window's end —
// the earliest sim time the decision is knowable — so per-window latency
// (window_end - last record in the window) is bounded by the window length
// (100 ms) and therefore below one subframe batch (128 ms) by
// construction. Real-time feasibility is evidenced separately by the queue
// high-water marks and ingest throughput in StreamStats.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "attacks/collect.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "features/window.hpp"
#include "ml/classifier.hpp"
#include "stream/replay_source.hpp"
#include "stream/session.hpp"
#include "stream/verdict.hpp"

namespace ltefp::stream {

/// The watermark grid pitch: one batch per 128 simulated subframes. A
/// power-of-two multiple of the 1 ms subframe, large enough to amortize
/// batch classification, small enough that interim verdicts lag the radio
/// by at most ~an eighth of a second of sim time.
inline constexpr TimeMs kSubframeBatchMs = 128;

struct StreamConfig {
  features::WindowConfig window;
  /// Idle gap that ends a session; must exceed window.window_ms.
  TimeMs idle_cutoff = attacks::kSessionIdleCutoffMs;
  /// Watermark pitch (>= 1).
  TimeMs batch_ms = kSubframeBatchMs;
  /// Per-worker SPSC queue capacity (power of two >= 2).
  std::size_t queue_capacity = 4096;
  /// Worker count; 0 uses the global pool's thread count.
  int workers = 0;
  /// Emit one interim verdict per classified window (the vote converging
  /// live). Final session verdicts are always emitted.
  bool emit_window_verdicts = true;
  /// Rate-control hook, called on the driver thread with each watermark's
  /// sim time before that batch is released. The CLI installs a wall-clock
  /// sleeper here (clocks are lint-banned in src/, so pacing lives with
  /// the caller); null runs unpaced.
  std::function<void(TimeMs)> pacer;
};

struct StreamStats {
  std::size_t records = 0;
  std::size_t sessions = 0;
  std::size_t window_verdicts = 0;
  std::size_t final_verdicts = 0;
  std::size_t batches = 0;  // watermarks broadcast
  /// Interim-decision latency (window_end - last record), ms sim time.
  /// Latency is bounded by the window length by construction, so 2 ms
  /// buckets across one subframe batch keep the conservative quantiles
  /// tight; anything larger lands in the overflow bucket (exact max).
  Histogram latency = Histogram::linear(0.0, static_cast<double>(kSubframeBatchMs), 64);
  /// Deepest each worker's ingest queue got (backpressure evidence).
  std::vector<std::size_t> queue_high_water;
};

class StreamDaemon {
 public:
  /// `model` must outlive the daemon and be trained; the daemon only calls
  /// const predict paths, through the global pool (concurrent top-level
  /// predict_rows calls serialize safely).
  StreamDaemon(const ml::Classifier& model, StreamConfig config);

  /// Drains `source` to completion, emitting the merged verdict stream
  /// into `sink` (called on this thread, in final order). Returns the
  /// run's statistics. Not reentrant.
  StreamStats run(StreamSource& source, VerdictSink& sink);

  const StreamConfig& config() const { return config_; }

 private:
  const ml::Classifier& model_;
  StreamConfig config_;
};

}  // namespace ltefp::stream
