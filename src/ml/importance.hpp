// Permutation feature importance: how much held-out accuracy drops when
// one feature column is shuffled. Used to explain *which* side-channel
// features (Table II vectors) carry the fingerprint — analysis the paper
// motivates when discussing why size/interval features differ per app.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace ltefp::ml {

struct FeatureImportance {
  std::size_t feature = 0;
  std::string name;
  /// Mean accuracy drop across repeats when this feature is permuted;
  /// higher = more load-bearing. Can be slightly negative for pure-noise
  /// features.
  double importance = 0.0;
};

/// Computes permutation importance of every feature of `data` for a
/// *fitted* model. Results are sorted by descending importance.
std::vector<FeatureImportance> permutation_importance(const Classifier& model,
                                                      const Dataset& data, int repeats = 3,
                                                      std::uint64_t seed = 17);

}  // namespace ltefp::ml
