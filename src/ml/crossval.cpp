#include "ml/crossval.hpp"

#include <cstdint>
#include <stdexcept>

#include "common/rng.hpp"
#include "features/matrix.hpp"

namespace ltefp::ml {

std::vector<int> stratified_folds(const Dataset& data, int folds, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("stratified_folds: need >= 2 folds");
  Rng rng(seed);
  const auto hist = data.class_histogram();
  std::vector<std::vector<std::size_t>> by_class(hist.size());
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    by_class[static_cast<std::size_t>(data.samples[i].label)].push_back(i);
  }
  std::vector<int> assignment(data.size(), 0);
  for (auto& group : by_class) {
    rng.shuffle(group);
    for (std::size_t j = 0; j < group.size(); ++j) {
      assignment[group[j]] = static_cast<int>(j % static_cast<std::size_t>(folds));
    }
  }
  return assignment;
}

double cross_val_accuracy(Classifier& model, const Dataset& data, int folds,
                          std::uint64_t seed) {
  const auto assignment = stratified_folds(data, folds, seed);
  // One columnar transpose up front; every fold is a pair of row-index
  // views into it. No per-fold feature copies.
  const features::DatasetMatrix matrix(data);
  std::size_t correct = 0, total = 0;
  std::vector<std::uint32_t> train_rows, test_rows;
  for (int fold = 0; fold < folds; ++fold) {
    train_rows.clear();
    test_rows.clear();
    for (std::size_t i = 0; i < matrix.rows(); ++i) {
      (assignment[i] == fold ? test_rows : train_rows).push_back(static_cast<std::uint32_t>(i));
    }
    if (train_rows.empty() || test_rows.empty()) continue;
    model.fit_rows(matrix, train_rows);
    const auto predicted = model.predict_rows(matrix, test_rows);
    for (std::size_t j = 0; j < test_rows.size(); ++j) {
      if (predicted[j] == matrix.label(test_rows[j])) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace ltefp::ml
