#include "ml/crossval.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace ltefp::ml {

std::vector<int> stratified_folds(const Dataset& data, int folds, std::uint64_t seed) {
  if (folds < 2) throw std::invalid_argument("stratified_folds: need >= 2 folds");
  Rng rng(seed);
  const auto hist = data.class_histogram();
  std::vector<std::vector<std::size_t>> by_class(hist.size());
  for (std::size_t i = 0; i < data.samples.size(); ++i) {
    by_class[static_cast<std::size_t>(data.samples[i].label)].push_back(i);
  }
  std::vector<int> assignment(data.size(), 0);
  for (auto& group : by_class) {
    rng.shuffle(group);
    for (std::size_t j = 0; j < group.size(); ++j) {
      assignment[group[j]] = static_cast<int>(j % static_cast<std::size_t>(folds));
    }
  }
  return assignment;
}

double cross_val_accuracy(Classifier& model, const Dataset& data, int folds,
                          std::uint64_t seed) {
  const auto assignment = stratified_folds(data, folds, seed);
  std::size_t correct = 0, total = 0;
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train, test;
    train.feature_names = test.feature_names = data.feature_names;
    train.label_names = test.label_names = data.label_names;
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
      (assignment[i] == fold ? test : train).samples.push_back(data.samples[i]);
    }
    if (train.empty() || test.empty()) continue;
    model.fit(train);
    for (const auto& s : test.samples) {
      if (model.predict(s.features) == s.label) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace ltefp::ml
