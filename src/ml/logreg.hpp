// Multinomial logistic regression (softmax) with L2 regularisation,
// trained by mini-batch gradient descent.
//
// Paper Table VIII evaluates it with C = 1 (inverse regularisation
// strength) and notes its linearity assumption is the main limitation on
// this data. Also reused by the correlation attack (Section VII-C), which
// runs logistic regression on DTW similarity features to decide whether
// two traces represent communicating users.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "features/dataset.hpp"
#include "ml/classifier.hpp"

namespace ltefp::ml {

struct LogRegConfig {
  double c = 1.0;           // inverse regularisation strength (paper: C = 1)
  double learning_rate = 0.1;
  int epochs = 120;
  int batch_size = 64;
  std::uint64_t seed = 1;
};

class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogRegConfig config = {});

  void fit(const Dataset& train) override;
  void fit_rows(const features::DatasetMatrix& train,
                std::span<const std::uint32_t> rows) override;
  int predict(const FeatureVector& x) const override;
  std::vector<double> predict_proba(const FeatureVector& x) const override;
  std::vector<int> predict_rows(const features::DatasetMatrix& data,
                                std::span<const std::uint32_t> rows) const override;
  const char* name() const override { return "LogisticRegression"; }

  /// Weight matrix row for a class (bias last), for inspection/tests.
  const std::vector<double>& weights(int cls) const { return weights_[static_cast<std::size_t>(cls)]; }

 private:
  /// Softmax over class scores of a standardised sample, written into
  /// caller-owned `scores` (size num_classes_). Allocation-free.
  void softmax_scores(std::span<const double> std_x, std::span<double> scores) const;
  std::vector<double> softmax_scores(const FeatureVector& std_x) const;
  /// SGD core over pre-standardised samples; xs.size() == labels.size().
  void fit_impl(const std::vector<FeatureVector>& xs, const std::vector<int>& labels,
                int num_classes);

  LogRegConfig config_;
  features::Standardizer standardizer_;
  std::vector<std::vector<double>> weights_;  // [class][dim + 1 bias]
  int num_classes_ = 0;
};

}  // namespace ltefp::ml
