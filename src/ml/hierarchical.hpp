// Hierarchical classifier (paper Section VI / Figure 6 "hierarchical
// classification method based on Random Forest"): a first-stage model
// predicts the coarse class (Streaming / Messaging / VoIP), then a
// per-class second stage identifies the individual app — "We first
// identify the class of the application and then identify individual apps
// subsequently."
//
// Training runs on columnar label views: the coarse stage and each
// per-group fine stage share the one DatasetMatrix's feature columns (and
// its cached per-column argsort) via DatasetMatrix::with_labels — no
// feature copies per stage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "features/dataset.hpp"
#include "ml/classifier.hpp"

namespace ltefp::ml {

class HierarchicalClassifier final : public Classifier {
 public:
  using Factory = std::function<std::unique_ptr<Classifier>()>;

  /// `group_of(label)` maps a fine label to its coarse group id in
  /// [0, num_groups). `factory` builds the stage models (default: caller
  /// provides, typically RandomForest).
  HierarchicalClassifier(std::function<int(int)> group_of, int num_groups, Factory factory);

  void fit(const Dataset& train) override;
  void fit_rows(const features::DatasetMatrix& train,
                std::span<const std::uint32_t> rows) override;
  int predict(const FeatureVector& x) const override;
  std::vector<int> predict_rows(const features::DatasetMatrix& data,
                                std::span<const std::uint32_t> rows) const override;
  std::vector<double> predict_proba(const FeatureVector& x) const override;
  const char* name() const override { return "Hierarchical"; }

  /// Predicted coarse group for one sample.
  int predict_group(const FeatureVector& x) const;

 private:
  std::function<int(int)> group_of_;
  int num_groups_;
  Factory factory_;
  std::unique_ptr<Classifier> group_model_;
  // Per group: the fine model and its local->global label mapping.
  struct Stage {
    std::unique_ptr<Classifier> model;
    std::vector<int> global_labels;  // local label -> global label
  };
  std::vector<Stage> stages_;
  int num_labels_ = 0;
};

}  // namespace ltefp::ml
