#include "ml/logreg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "features/matrix.hpp"

namespace ltefp::ml {

LogisticRegression::LogisticRegression(LogRegConfig config) : config_(config) {
  if (config_.c <= 0.0) throw std::invalid_argument("LogisticRegression: C must be positive");
}

void LogisticRegression::softmax_scores(std::span<const double> std_x,
                                        std::span<double> scores) const {
  for (int c = 0; c < num_classes_; ++c) {
    const auto& w = weights_[static_cast<std::size_t>(c)];
    double z = w.back();  // bias
    for (std::size_t d = 0; d < std_x.size(); ++d) z += w[d] * std_x[d];
    scores[static_cast<std::size_t>(c)] = z;
  }
  const double zmax = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (double& z : scores) {
    z = std::exp(z - zmax);
    sum += z;
  }
  for (double& z : scores) z /= sum;
}

std::vector<double> LogisticRegression::softmax_scores(const FeatureVector& std_x) const {
  std::vector<double> scores(static_cast<std::size_t>(num_classes_));
  softmax_scores(std_x, scores);
  return scores;
}

void LogisticRegression::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("LogisticRegression::fit: empty dataset");
  const features::DatasetMatrix matrix(train);
  fit_rows(matrix, matrix.all_rows());
}

void LogisticRegression::fit_rows(const features::DatasetMatrix& train,
                                  std::span<const std::uint32_t> rows) {
  if (rows.empty()) throw std::invalid_argument("LogisticRegression::fit: empty dataset");
  standardizer_.fit_rows(train, rows);

  std::vector<FeatureVector> xs;
  std::vector<int> labels;
  xs.reserve(rows.size());
  labels.reserve(rows.size());
  FeatureVector raw(train.cols());
  for (const std::uint32_t row : rows) {
    train.gather_row(row, raw);
    FeatureVector z(raw.size());
    standardizer_.transform(raw, z);
    xs.push_back(std::move(z));
    labels.push_back(train.label(row));
  }
  fit_impl(xs, labels, static_cast<int>(train.class_histogram(rows).size()));
}

void LogisticRegression::fit_impl(const std::vector<FeatureVector>& xs,
                                  const std::vector<int>& labels, int num_classes) {
  num_classes_ = num_classes;
  const std::size_t n = xs.size();
  const std::size_t dims = xs.front().size();
  weights_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(dims + 1, 0.0));

  const double lambda = 1.0 / config_.c;  // L2 strength
  Rng rng(config_.seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> proba(static_cast<std::size_t>(num_classes_));

  const auto batch = static_cast<std::size_t>(std::max(1, config_.batch_size));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    // Simple 1/sqrt(t) step-size decay keeps late epochs stable.
    const double lr = config_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t stop = std::min(order.size(), start + batch);
      // Accumulate gradient over the batch.
      std::vector<std::vector<double>> grad(static_cast<std::size_t>(num_classes_),
                                            std::vector<double>(dims + 1, 0.0));
      for (std::size_t i = start; i < stop; ++i) {
        const std::size_t idx = order[i];
        softmax_scores(xs[idx], proba);
        const int y = labels[idx];
        for (int c = 0; c < num_classes_; ++c) {
          const double err = proba[static_cast<std::size_t>(c)] - (c == y ? 1.0 : 0.0);
          auto& g = grad[static_cast<std::size_t>(c)];
          for (std::size_t d = 0; d < dims; ++d) g[d] += err * xs[idx][d];
          g[dims] += err;
        }
      }
      const double scale = lr / static_cast<double>(stop - start);
      for (int c = 0; c < num_classes_; ++c) {
        auto& w = weights_[static_cast<std::size_t>(c)];
        const auto& g = grad[static_cast<std::size_t>(c)];
        for (std::size_t d = 0; d < dims; ++d) {
          w[d] -= scale * (g[d] + lambda * w[d] / static_cast<double>(n));
        }
        w[dims] -= scale * g[dims];  // bias unregularised
      }
    }
  }
}

std::vector<double> LogisticRegression::predict_proba(const FeatureVector& x) const {
  if (weights_.empty()) throw std::logic_error("LogisticRegression: not trained");
  return softmax_scores(standardizer_.transform(x));
}

int LogisticRegression::predict(const FeatureVector& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> LogisticRegression::predict_rows(const features::DatasetMatrix& data,
                                                  std::span<const std::uint32_t> rows) const {
  if (weights_.empty()) throw std::logic_error("LogisticRegression: not trained");
  std::vector<int> out(rows.size());
  parallel_for(rows.size(), /*chunk=*/64, [&](std::size_t begin, std::size_t end) {
    FeatureVector raw(data.cols());
    FeatureVector z(data.cols());
    std::vector<double> scores(static_cast<std::size_t>(num_classes_));
    for (std::size_t i = begin; i < end; ++i) {
      data.gather_row(rows[i], raw);
      standardizer_.transform(raw, z);
      softmax_scores(z, scores);
      out[i] = static_cast<int>(std::max_element(scores.begin(), scores.end()) - scores.begin());
    }
  });
  return out;
}

}  // namespace ltefp::ml
