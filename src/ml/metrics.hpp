// Classification metrics: confusion matrix, per-class precision / recall /
// F-score, and the weighted accuracy used in the paper's Table VIII.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ltefp::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int truth, int predicted);

  /// counts[truth][predicted]
  std::size_t count(int truth, int predicted) const;
  std::size_t total() const { return total_; }
  int num_classes() const { return num_classes_; }

  double accuracy() const;
  double precision(int cls) const;  // 0 when the class was never predicted
  double recall(int cls) const;     // 0 when the class never occurred
  double f_score(int cls) const;

  /// Mean of per-class metrics weighted by class support.
  double weighted_precision() const;
  double weighted_recall() const;
  double weighted_f_score() const;

  std::size_t support(int cls) const;

  std::string to_string(const std::vector<std::string>& labels = {}) const;

 private:
  int num_classes_;
  std::vector<std::size_t> counts_;  // row-major [truth * n + predicted]
  std::size_t total_ = 0;
};

/// Builds a confusion matrix from parallel truth/prediction vectors.
ConfusionMatrix evaluate(const std::vector<int>& truth, const std::vector<int>& predicted,
                         int num_classes);

/// Binary-classification helper used by the correlation attack (Table VII):
/// precision and recall of the positive class.
struct BinaryMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
  double accuracy = 0.0;
};
BinaryMetrics binary_metrics(const std::vector<int>& truth, const std::vector<int>& predicted);

}  // namespace ltefp::ml
