#include "ml/importance.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "features/matrix.hpp"

namespace ltefp::ml {
namespace {

// Accuracy over the matrix with column `f` read through permutation
// `perm` (empty = unpermuted). Gathers each row into per-chunk scratch and
// swaps in the permuted value — no dataset copy per permutation round.
double accuracy_of(const Classifier& model, const features::DatasetMatrix& data, std::size_t f,
                   std::span<const std::size_t> perm) {
  const std::size_t n = data.rows();
  std::vector<unsigned char> hit(n, 0);
  parallel_for(n, /*chunk=*/16, [&](std::size_t begin, std::size_t end) {
    features::FeatureVector x(data.cols());
    for (std::size_t i = begin; i < end; ++i) {
      data.gather_row(i, x);
      if (!perm.empty()) x[f] = data.at(perm[i], f);
      hit[i] = model.predict(x) == data.label(i) ? 1 : 0;
    }
  });
  const auto correct = std::accumulate(hit.begin(), hit.end(), std::size_t{0});
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace

std::vector<FeatureImportance> permutation_importance(const Classifier& model,
                                                      const Dataset& data, int repeats,
                                                      std::uint64_t seed) {
  if (data.empty()) throw std::invalid_argument("permutation_importance: empty dataset");
  if (repeats < 1) throw std::invalid_argument("permutation_importance: repeats must be >= 1");

  const features::DatasetMatrix matrix(data);
  const double baseline = accuracy_of(model, matrix, 0, {});
  const std::size_t dims = matrix.cols();
  Rng rng(seed);

  std::vector<FeatureImportance> out;
  out.reserve(dims);
  for (std::size_t f = 0; f < dims; ++f) {
    double total_drop = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const auto perm = rng.permutation(matrix.rows());
      total_drop += baseline - accuracy_of(model, matrix, f, perm);
    }
    FeatureImportance fi;
    fi.feature = f;
    fi.name = f < data.feature_names.size() ? data.feature_names[f] : "f" + std::to_string(f);
    fi.importance = total_drop / repeats;
    out.push_back(fi);
  }
  std::sort(out.begin(), out.end(), [](const FeatureImportance& a, const FeatureImportance& b) {
    return a.importance > b.importance;
  });
  return out;
}

}  // namespace ltefp::ml
