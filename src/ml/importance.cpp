#include "ml/importance.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace ltefp::ml {
namespace {

double accuracy_of(const Classifier& model, const Dataset& data) {
  std::size_t correct = 0;
  for (const auto& s : data.samples) {
    if (model.predict(s.features) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace

std::vector<FeatureImportance> permutation_importance(const Classifier& model,
                                                      const Dataset& data, int repeats,
                                                      std::uint64_t seed) {
  if (data.empty()) throw std::invalid_argument("permutation_importance: empty dataset");
  if (repeats < 1) throw std::invalid_argument("permutation_importance: repeats must be >= 1");

  const double baseline = accuracy_of(model, data);
  const std::size_t dims = data.samples.front().features.size();
  Rng rng(seed);

  std::vector<FeatureImportance> out;
  out.reserve(dims);
  Dataset shuffled = data;
  for (std::size_t f = 0; f < dims; ++f) {
    double total_drop = 0.0;
    for (int r = 0; r < repeats; ++r) {
      // Permute column f.
      const auto perm = rng.permutation(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        shuffled.samples[i].features[f] = data.samples[perm[i]].features[f];
      }
      total_drop += baseline - accuracy_of(model, shuffled);
    }
    // Restore the column.
    for (std::size_t i = 0; i < data.size(); ++i) {
      shuffled.samples[i].features[f] = data.samples[i].features[f];
    }
    FeatureImportance fi;
    fi.feature = f;
    fi.name = f < data.feature_names.size() ? data.feature_names[f] : "f" + std::to_string(f);
    fi.importance = total_drop / repeats;
    out.push_back(fi);
  }
  std::sort(out.begin(), out.end(), [](const FeatureImportance& a, const FeatureImportance& b) {
    return a.importance > b.importance;
  });
  return out;
}

}  // namespace ltefp::ml
