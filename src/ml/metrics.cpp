#include "ml/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace ltefp::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * static_cast<std::size_t>(num_classes), 0) {
  if (num_classes <= 0) throw std::invalid_argument("ConfusionMatrix: need >= 1 class");
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || truth >= num_classes_ || predicted < 0 || predicted >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++counts_[static_cast<std::size_t>(truth) * static_cast<std::size_t>(num_classes_) +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return counts_[static_cast<std::size_t>(truth) * static_cast<std::size_t>(num_classes_) +
                 static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::size_t ConfusionMatrix::support(int cls) const {
  std::size_t n = 0;
  for (int p = 0; p < num_classes_; ++p) n += count(cls, p);
  return n;
}

double ConfusionMatrix::precision(int cls) const {
  std::size_t predicted = 0;
  for (int t = 0; t < num_classes_; ++t) predicted += count(t, cls);
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  const std::size_t n = support(cls);
  if (n == 0) return 0.0;
  return static_cast<double>(count(cls, cls)) / static_cast<double>(n);
}

double ConfusionMatrix::f_score(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r <= 0.0) return 0.0;  // both rates are non-negative
  return 2.0 * p * r / (p + r);
}

namespace {
template <typename Metric>
double weighted(const ConfusionMatrix& cm, Metric metric) {
  if (cm.total() == 0) return 0.0;
  double sum = 0.0;
  for (int c = 0; c < cm.num_classes(); ++c) {
    sum += metric(c) * static_cast<double>(cm.support(c));
  }
  return sum / static_cast<double>(cm.total());
}
}  // namespace

double ConfusionMatrix::weighted_precision() const {
  return weighted(*this, [this](int c) { return precision(c); });
}
double ConfusionMatrix::weighted_recall() const {
  return weighted(*this, [this](int c) { return recall(c); });
}
double ConfusionMatrix::weighted_f_score() const {
  return weighted(*this, [this](int c) { return f_score(c); });
}

std::string ConfusionMatrix::to_string(const std::vector<std::string>& labels) const {
  std::ostringstream out;
  out << "truth \\ predicted\n";
  for (int t = 0; t < num_classes_; ++t) {
    if (static_cast<std::size_t>(t) < labels.size()) out << labels[t] << ": ";
    for (int p = 0; p < num_classes_; ++p) out << count(t, p) << (p + 1 < num_classes_ ? ' ' : '\n');
  }
  return out.str();
}

ConfusionMatrix evaluate(const std::vector<int>& truth, const std::vector<int>& predicted,
                         int num_classes) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("evaluate: size mismatch");
  }
  ConfusionMatrix cm(num_classes);
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predicted[i]);
  return cm;
}

BinaryMetrics binary_metrics(const std::vector<int>& truth, const std::vector<int>& predicted) {
  const ConfusionMatrix cm = evaluate(truth, predicted, 2);
  BinaryMetrics m;
  m.precision = cm.precision(1);
  m.recall = cm.recall(1);
  m.f_score = cm.f_score(1);
  m.accuracy = cm.accuracy();
  return m;
}

}  // namespace ltefp::ml
