// Random Forest — the classifier the paper selects (Table VIII:
// "Number of tree = 100, Seed = 1"): bagged CART trees with per-node
// feature subsampling, probability averaging across trees.
//
// fit() transposes the dataset into one columnar DatasetMatrix and grows
// trees concurrently on the global pool: tree t's RNG is derived from
// (seed, t), so the forest is bit-identical at any thread count. The
// per-column argsort lives in the matrix and is computed once, shared by
// every tree.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"

namespace ltefp::ml {

struct ForestConfig {
  int num_trees = 100;
  TreeConfig tree;          // tree.mtry 0 = auto (sqrt of feature count)
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 1;   // the paper's stated seed
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {});

  void fit(const Dataset& train) override;
  void fit_rows(const features::DatasetMatrix& train,
                std::span<const std::uint32_t> rows) override;
  int predict(const FeatureVector& x) const override;
  std::vector<double> predict_proba(const FeatureVector& x) const override;
  std::vector<int> predict_rows(const features::DatasetMatrix& data,
                                std::span<const std::uint32_t> rows) const override;
  const char* name() const override { return "RandomForest"; }

  int tree_count() const { return static_cast<int>(trees_.size()); }
  int class_count() const { return num_classes_; }
  const std::vector<DecisionTree>& trees() const { return trees_; }

  /// Rebuilds a forest from deserialised trees (ml/serialize.hpp).
  static RandomForest from_trees(std::vector<DecisionTree> trees, int num_classes);

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace ltefp::ml
