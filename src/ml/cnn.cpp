#include "ml/cnn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace ltefp::ml {

Cnn1D::Cnn1D(CnnConfig config) : config_(config) {
  if (config_.kernel % 2 == 0) throw std::invalid_argument("Cnn1D: kernel must be odd");
}

void Cnn1D::forward(const FeatureVector& std_x, Activations& act) const {
  const int half = config_.kernel / 2;
  act.conv.assign(static_cast<std::size_t>(config_.channels * dims_), 0.0);
  for (int ch = 0; ch < config_.channels; ++ch) {
    const auto& w = conv_w_[static_cast<std::size_t>(ch)];
    for (int pos = 0; pos < dims_; ++pos) {
      double z = conv_b_[static_cast<std::size_t>(ch)];
      for (int k = 0; k < config_.kernel; ++k) {
        const int src = pos + k - half;
        if (src < 0 || src >= dims_) continue;  // zero padding
        z += w[static_cast<std::size_t>(k)] * std_x[static_cast<std::size_t>(src)];
      }
      act.conv[static_cast<std::size_t>(ch * dims_ + pos)] = std::max(0.0, z);  // ReLU
    }
  }
  act.logits.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    double z = dense_b_[static_cast<std::size_t>(c)];
    const auto& w = dense_w_[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < act.conv.size(); ++i) z += w[i] * act.conv[i];
    act.logits[static_cast<std::size_t>(c)] = z;
  }
  act.proba = act.logits;
  const double zmax = *std::max_element(act.proba.begin(), act.proba.end());
  double sum = 0.0;
  for (double& z : act.proba) {
    z = std::exp(z - zmax);
    sum += z;
  }
  for (double& z : act.proba) z /= sum;
}

void Cnn1D::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("Cnn1D::fit: empty dataset");
  const features::DatasetMatrix matrix(train);
  fit_rows(matrix, matrix.all_rows());
}

void Cnn1D::fit_rows(const features::DatasetMatrix& train,
                     std::span<const std::uint32_t> rows) {
  if (rows.empty()) throw std::invalid_argument("Cnn1D::fit: empty dataset");
  standardizer_.fit_rows(train, rows);

  std::vector<FeatureVector> xs;
  std::vector<int> labels;
  xs.reserve(rows.size());
  labels.reserve(rows.size());
  FeatureVector raw(train.cols());
  for (const std::uint32_t row : rows) {
    train.gather_row(row, raw);
    FeatureVector z(raw.size());
    standardizer_.transform(raw, z);
    xs.push_back(std::move(z));
    labels.push_back(train.label(row));
  }
  fit_impl(xs, labels, static_cast<int>(train.class_histogram(rows).size()));
}

void Cnn1D::fit_impl(const std::vector<FeatureVector>& xs, const std::vector<int>& labels,
                     int num_classes) {
  dims_ = static_cast<int>(xs.front().size());
  num_classes_ = num_classes;

  Rng rng(config_.seed);
  const auto he = [&](int fan_in) { return rng.normal(0.0, std::sqrt(2.0 / fan_in)); };
  conv_w_.assign(static_cast<std::size_t>(config_.channels),
                 std::vector<double>(static_cast<std::size_t>(config_.kernel)));
  conv_b_.assign(static_cast<std::size_t>(config_.channels), 0.0);
  for (auto& w : conv_w_) {
    for (double& v : w) v = he(config_.kernel);
  }
  const int flat = config_.channels * dims_;
  dense_w_.assign(static_cast<std::size_t>(num_classes_),
                  std::vector<double>(static_cast<std::size_t>(flat)));
  dense_b_.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (auto& w : dense_w_) {
    for (double& v : w) v = he(flat);
  }

  // Momentum buffers.
  auto conv_w_v = conv_w_;
  for (auto& w : conv_w_v) std::fill(w.begin(), w.end(), 0.0);
  std::vector<double> conv_b_v(conv_b_.size(), 0.0);
  auto dense_w_v = dense_w_;
  for (auto& w : dense_w_v) std::fill(w.begin(), w.end(), 0.0);
  std::vector<double> dense_b_v(dense_b_.size(), 0.0);

  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const auto batch = static_cast<std::size_t>(std::max(1, config_.batch_size));
  const int half = config_.kernel / 2;

  Activations act;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    const double lr = config_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch) / 10.0);
    for (std::size_t start = 0; start < order.size(); start += batch) {
      const std::size_t stop = std::min(order.size(), start + batch);

      auto conv_w_g = conv_w_;
      for (auto& w : conv_w_g) std::fill(w.begin(), w.end(), 0.0);
      std::vector<double> conv_b_g(conv_b_.size(), 0.0);
      auto dense_w_g = dense_w_;
      for (auto& w : dense_w_g) std::fill(w.begin(), w.end(), 0.0);
      std::vector<double> dense_b_g(dense_b_.size(), 0.0);

      for (std::size_t i = start; i < stop; ++i) {
        const std::size_t idx = order[i];
        forward(xs[idx], act);
        const int y = labels[idx];

        // dL/dlogits = proba - onehot
        std::vector<double> dlogits(act.proba);
        dlogits[static_cast<std::size_t>(y)] -= 1.0;

        // Dense layer gradients and backprop into conv activations.
        std::vector<double> dconv(act.conv.size(), 0.0);
        for (int c = 0; c < num_classes_; ++c) {
          const double dz = dlogits[static_cast<std::size_t>(c)];
          auto& gw = dense_w_g[static_cast<std::size_t>(c)];
          const auto& w = dense_w_[static_cast<std::size_t>(c)];
          for (std::size_t j = 0; j < act.conv.size(); ++j) {
            gw[j] += dz * act.conv[j];
            dconv[j] += dz * w[j];
          }
          dense_b_g[static_cast<std::size_t>(c)] += dz;
        }

        // ReLU backprop + conv gradients.
        for (int ch = 0; ch < config_.channels; ++ch) {
          auto& gw = conv_w_g[static_cast<std::size_t>(ch)];
          for (int pos = 0; pos < dims_; ++pos) {
            const std::size_t j = static_cast<std::size_t>(ch * dims_ + pos);
            if (act.conv[j] <= 0.0) continue;  // ReLU gate
            const double dz = dconv[j];
            for (int k = 0; k < config_.kernel; ++k) {
              const int src = pos + k - half;
              if (src < 0 || src >= dims_) continue;
              gw[static_cast<std::size_t>(k)] += dz * xs[idx][static_cast<std::size_t>(src)];
            }
            conv_b_g[static_cast<std::size_t>(ch)] += dz;
          }
        }
      }

      const double scale = lr / static_cast<double>(stop - start);
      const auto update = [&](std::vector<double>& w, std::vector<double>& v,
                              const std::vector<double>& g) {
        for (std::size_t j = 0; j < w.size(); ++j) {
          v[j] = config_.momentum * v[j] - scale * g[j];
          w[j] += v[j];
        }
      };
      for (int ch = 0; ch < config_.channels; ++ch) {
        update(conv_w_[static_cast<std::size_t>(ch)], conv_w_v[static_cast<std::size_t>(ch)],
               conv_w_g[static_cast<std::size_t>(ch)]);
      }
      update(conv_b_, conv_b_v, conv_b_g);
      for (int c = 0; c < num_classes_; ++c) {
        update(dense_w_[static_cast<std::size_t>(c)], dense_w_v[static_cast<std::size_t>(c)],
               dense_w_g[static_cast<std::size_t>(c)]);
      }
      update(dense_b_, dense_b_v, dense_b_g);
    }
  }
}

std::vector<double> Cnn1D::predict_proba(const FeatureVector& x) const {
  if (dense_w_.empty()) throw std::logic_error("Cnn1D: not trained");
  Activations act;
  forward(standardizer_.transform(x), act);
  return act.proba;
}

int Cnn1D::predict(const FeatureVector& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace ltefp::ml
