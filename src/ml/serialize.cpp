#include "ml/serialize.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace ltefp::ml {
namespace {

void expect_token(std::istream& in, const std::string& expected) {
  std::string token;
  if (!(in >> token) || token != expected) {
    throw std::runtime_error("model load: expected '" + expected + "', got '" + token + "'");
  }
}

template <typename T>
T read_value(std::istream& in, const char* what) {
  T value;
  if (!(in >> value)) throw std::runtime_error(std::string("model load: bad ") + what);
  return value;
}

}  // namespace

void save_forest(std::ostream& out, const RandomForest& forest) {
  if (forest.tree_count() == 0) throw std::logic_error("save_forest: forest not trained");
  out << "ltefp-rf v1\n";
  out << "trees " << forest.tree_count() << " classes " << forest.class_count() << "\n";
  out.precision(17);
  for (const DecisionTree& tree : forest.trees()) {
    const auto nodes = tree.export_nodes();
    out << "tree " << nodes.size() << "\n";
    for (const auto& node : nodes) {
      if (node.feature >= 0) {
        out << "node " << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
            << node.right << "\n";
      } else {
        out << "leaf";
        for (const double p : node.proba) out << ' ' << p;
        out << "\n";
      }
    }
  }
}

RandomForest load_forest(std::istream& in) {
  expect_token(in, "ltefp-rf");
  expect_token(in, "v1");
  expect_token(in, "trees");
  const int tree_count = read_value<int>(in, "tree count");
  expect_token(in, "classes");
  const int classes = read_value<int>(in, "class count");
  if (tree_count <= 0 || classes <= 0) throw std::runtime_error("model load: bad header counts");

  std::vector<DecisionTree> trees;
  trees.reserve(static_cast<std::size_t>(tree_count));
  for (int t = 0; t < tree_count; ++t) {
    expect_token(in, "tree");
    const int node_count = read_value<int>(in, "node count");
    if (node_count <= 0) throw std::runtime_error("model load: bad node count");
    std::vector<DecisionTree::ExportedNode> nodes;
    nodes.reserve(static_cast<std::size_t>(node_count));
    for (int i = 0; i < node_count; ++i) {
      std::string kind;
      if (!(in >> kind)) throw std::runtime_error("model load: truncated tree");
      DecisionTree::ExportedNode node;
      if (kind == "node") {
        node.feature = read_value<int>(in, "feature");
        node.threshold = read_value<double>(in, "threshold");
        node.left = read_value<int>(in, "left");
        node.right = read_value<int>(in, "right");
        if (node.feature < 0) throw std::runtime_error("model load: bad internal node feature");
      } else if (kind == "leaf") {
        node.feature = -1;
        node.proba.reserve(static_cast<std::size_t>(classes));
        for (int c = 0; c < classes; ++c) {
          node.proba.push_back(read_value<double>(in, "leaf probability"));
        }
      } else {
        throw std::runtime_error("model load: unknown node kind '" + kind + "'");
      }
      nodes.push_back(std::move(node));
    }
    trees.push_back(DecisionTree::from_nodes(std::move(nodes), classes));
  }
  return RandomForest::from_trees(std::move(trees), classes);
}

void save_standardizer(std::ostream& out, const features::Standardizer& standardizer) {
  if (!standardizer.fitted()) throw std::logic_error("save_standardizer: not fitted");
  out << "ltefp-std v1 " << standardizer.means().size() << "\n";
  out.precision(17);
  for (const double m : standardizer.means()) out << m << ' ';
  out << "\n";
  for (const double sd : standardizer.stddevs()) out << sd << ' ';
  out << "\n";
}

features::Standardizer load_standardizer(std::istream& in) {
  expect_token(in, "ltefp-std");
  expect_token(in, "v1");
  const auto dims = read_value<std::size_t>(in, "dims");
  std::vector<double> means(dims), stddevs(dims);
  for (auto& m : means) m = read_value<double>(in, "mean");
  for (auto& sd : stddevs) sd = read_value<double>(in, "stddev");
  return features::Standardizer::from_params(std::move(means), std::move(stddevs));
}

}  // namespace ltefp::ml
