#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "ml/crossval.hpp"

namespace ltefp::ml {

Knn::Knn(KnnConfig config) : config_(config) {
  if (config_.k < 1) throw std::invalid_argument("Knn: k must be >= 1");
}

void Knn::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("Knn::fit: empty dataset");
  standardizer_.fit(train);
  points_.clear();
  labels_.clear();
  points_.reserve(train.size());
  labels_.reserve(train.size());
  int max_label = 0;
  for (const auto& s : train.samples) {
    points_.push_back(standardizer_.transform(s.features));
    labels_.push_back(s.label);
    max_label = std::max(max_label, s.label);
  }
  num_classes_ = max_label + 1;
}

std::vector<int> Knn::neighbor_labels(const FeatureVector& x) const {
  if (points_.empty()) throw std::logic_error("Knn: not trained");
  const FeatureVector q = standardizer_.transform(x);
  // Max-heap of (distance, label) keeping the k smallest distances.
  std::priority_queue<std::pair<double, int>> heap;
  const auto k = static_cast<std::size_t>(config_.k);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double d = 0.0;
    const auto& p = points_[i];
    for (std::size_t f = 0; f < p.size(); ++f) {
      const double diff = p[f] - q[f];
      d += diff * diff;
      if (heap.size() == k && d > heap.top().first) break;  // early exit
    }
    if (heap.size() < k) {
      heap.emplace(d, labels_[i]);
    } else if (d < heap.top().first) {
      heap.pop();
      heap.emplace(d, labels_[i]);
    }
  }
  std::vector<int> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(heap.top().second);
    heap.pop();
  }
  return out;
}

std::vector<double> Knn::predict_proba(const FeatureVector& x) const {
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  const auto labels = neighbor_labels(x);
  for (const int label : labels) ++proba[static_cast<std::size_t>(label)];
  for (double& p : proba) p /= static_cast<double>(labels.size());
  return proba;
}

int Knn::predict(const FeatureVector& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

int select_k_by_cross_validation(const Dataset& data, int k_max, int folds, std::uint64_t seed) {
  int best_k = 1;
  double best_acc = -1.0;
  for (int k = 1; k <= k_max; ++k) {
    Knn model(KnnConfig{k});
    const double acc = cross_val_accuracy(model, data, folds, seed);
    if (acc > best_acc) {
      best_acc = acc;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace ltefp::ml
