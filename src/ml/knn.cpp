#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "features/matrix.hpp"
#include "ml/crossval.hpp"

namespace ltefp::ml {

Knn::Knn(KnnConfig config) : config_(config) {
  if (config_.k < 1) throw std::invalid_argument("Knn: k must be >= 1");
}

void Knn::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("Knn::fit: empty dataset");
  const features::DatasetMatrix matrix(train);
  fit_rows(matrix, matrix.all_rows());
}

void Knn::fit_rows(const features::DatasetMatrix& train,
                   std::span<const std::uint32_t> rows) {
  if (rows.empty()) throw std::invalid_argument("Knn::fit: empty dataset");
  standardizer_.fit_rows(train, rows);
  points_.clear();
  labels_.clear();
  points_.reserve(rows.size());
  labels_.reserve(rows.size());
  FeatureVector raw(train.cols());
  int max_label = 0;
  for (const std::uint32_t row : rows) {
    train.gather_row(row, raw);
    FeatureVector z(raw.size());
    standardizer_.transform(raw, z);
    points_.push_back(std::move(z));
    const int label = train.label(row);
    labels_.push_back(label);
    max_label = std::max(max_label, label);
  }
  num_classes_ = max_label + 1;
}

void Knn::neighbor_proba(std::span<const double> x, Scratch& scratch) const {
  if (points_.empty()) throw std::logic_error("Knn: not trained");
  scratch.q.resize(x.size());
  standardizer_.transform(x, scratch.q);
  const FeatureVector& q = scratch.q;
  // Max-heap of (distance, label) keeping the k smallest distances — the
  // same push_heap/pop_heap discipline std::priority_queue uses, but on a
  // reusable buffer.
  auto& heap = scratch.heap;
  heap.clear();
  const auto k = static_cast<std::size_t>(config_.k);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    double d = 0.0;
    const auto& p = points_[i];
    for (std::size_t f = 0; f < p.size(); ++f) {
      const double diff = p[f] - q[f];
      d += diff * diff;
      if (heap.size() == k && d > heap.front().first) break;  // early exit
    }
    if (heap.size() < k) {
      heap.emplace_back(d, labels_[i]);
      std::push_heap(heap.begin(), heap.end());
    } else if (d < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {d, labels_[i]};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  scratch.proba.assign(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& [dist, label] : heap) {
    ++scratch.proba[static_cast<std::size_t>(label)];
  }
  for (double& p : scratch.proba) p /= static_cast<double>(heap.size());
}

int Knn::predict_span(std::span<const double> x, Scratch& scratch) const {
  neighbor_proba(x, scratch);
  return static_cast<int>(
      std::max_element(scratch.proba.begin(), scratch.proba.end()) - scratch.proba.begin());
}

std::vector<double> Knn::predict_proba(const FeatureVector& x) const {
  Scratch scratch;
  neighbor_proba(x, scratch);
  return scratch.proba;
}

int Knn::predict(const FeatureVector& x) const {
  Scratch scratch;
  return predict_span(x, scratch);
}

std::vector<int> Knn::predict_rows(const features::DatasetMatrix& data,
                                   std::span<const std::uint32_t> rows) const {
  std::vector<int> out(rows.size());
  parallel_for(rows.size(), /*chunk=*/16, [&](std::size_t begin, std::size_t end) {
    Scratch scratch;
    FeatureVector raw(data.cols());
    for (std::size_t i = begin; i < end; ++i) {
      data.gather_row(rows[i], raw);
      out[i] = predict_span(raw, scratch);
    }
  });
  return out;
}

int select_k_by_cross_validation(const Dataset& data, int k_max, int folds, std::uint64_t seed) {
  int best_k = 1;
  double best_acc = -1.0;
  for (int k = 1; k <= k_max; ++k) {
    Knn model(KnnConfig{k});
    const double acc = cross_val_accuracy(model, data, folds, seed);
    if (acc > best_acc) {
      best_acc = acc;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace ltefp::ml
