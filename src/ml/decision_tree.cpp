#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ltefp::ml {
namespace {

double gini_from_counts(std::span<const double> counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

DecisionTree::DecisionTree(TreeConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void DecisionTree::fit(const features::Dataset& data, int num_classes) {
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  fit(data, indices, num_classes);
}

void DecisionTree::fit(const features::Dataset& data, std::span<const std::size_t> indices,
                       int num_classes) {
  if (indices.empty()) throw std::invalid_argument("DecisionTree::fit: no samples");
  if (num_classes <= 0) throw std::invalid_argument("DecisionTree::fit: bad class count");
  nodes_.clear();
  num_classes_ = num_classes;
  std::vector<std::size_t> work(indices.begin(), indices.end());
  build(data, work, 0, work.size(), 0, num_classes);
}

int DecisionTree::build(const features::Dataset& data, std::vector<std::size_t>& indices,
                        std::size_t begin, std::size_t end, int depth, int num_classes) {
  const std::size_t n = end - begin;
  std::vector<double> counts(static_cast<std::size_t>(num_classes), 0.0);
  for (std::size_t i = begin; i < end; ++i) {
    ++counts[static_cast<std::size_t>(data.samples[indices[i]].label)];
  }
  const double node_gini = gini_from_counts(counts, static_cast<double>(n));

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.depth = depth;
    leaf.proba.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.proba[c] = counts[c] / static_cast<double>(n);
    }
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(leaf));
    return id;
  };

  if (depth >= config_.max_depth || n < static_cast<std::size_t>(config_.min_samples_split) ||
      node_gini <= 1e-12) {
    return make_leaf();
  }

  const std::size_t dims = data.samples[indices[begin]].features.size();
  // Choose the features to try at this node.
  std::vector<std::size_t> tried(dims);
  std::iota(tried.begin(), tried.end(), std::size_t{0});
  if (config_.mtry > 0 && static_cast<std::size_t>(config_.mtry) < dims) {
    rng_.shuffle(tried);
    tried.resize(static_cast<std::size_t>(config_.mtry));
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = node_gini;  // must strictly improve
  std::vector<double> left_counts(counts.size());
  std::vector<double> right_counts(counts.size());
  node_labels_.resize(n);
  node_values_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    node_labels_[i] = data.samples[indices[begin + i]].label;
  }

  for (const std::size_t f : tried) {
    // Gather this feature's node values once; the candidate loop below
    // re-scans them threshold_candidates times, so it pays for flat
    // arrays, not per-sample pointer chasing. Sample candidate thresholds
    // from the node's observed range.
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      const double v = data.samples[indices[begin + i]].features[f];
      node_values_[i] = v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > lo)) continue;  // constant feature in this node

    const int candidates = std::max(1, config_.threshold_candidates);
    for (int c = 0; c < candidates; ++c) {
      // Midpoints between two random node values concentrate candidates
      // where the data mass is.
      const double a = node_values_[rng_.index(n)];
      const double b = node_values_[rng_.index(n)];
      const double threshold = a == b ? (a + lo + (hi - lo) * rng_.uniform()) / 2.0
                                      : (a + b) / 2.0;
      std::fill(left_counts.begin(), left_counts.end(), 0.0);
      double n_left = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (node_values_[i] <= threshold) {
          ++left_counts[static_cast<std::size_t>(node_labels_[i])];
          ++n_left;
        }
      }
      const double n_right = static_cast<double>(n) - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) continue;
      for (std::size_t k = 0; k < counts.size(); ++k) right_counts[k] = counts[k] - left_counts[k];
      const double score = (n_left * gini_from_counts(left_counts, n_left) +
                            n_right * gini_from_counts(right_counts, n_right)) /
                           static_cast<double>(n);
      if (score + 1e-12 < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t idx) {
        return data.samples[idx].features[static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.depth = depth;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  const int left = build(data, indices, begin, mid, depth + 1, num_classes);
  const int right = build(data, indices, mid, end, depth + 1, num_classes);
  nodes_[static_cast<std::size_t>(id)].left = left;
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

const DecisionTree::Node& DecisionTree::leaf_for(const features::FeatureVector& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not trained");
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const std::size_t f = static_cast<std::size_t>(node->feature);
    if (f >= x.size()) throw std::invalid_argument("DecisionTree: feature dim mismatch");
    node = &nodes_[static_cast<std::size_t>(x[f] <= node->threshold ? node->left : node->right)];
  }
  return *node;
}

int DecisionTree::predict(const features::FeatureVector& x) const {
  const auto& proba = leaf_for(x).proba;
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

const std::vector<double>& DecisionTree::predict_proba(const features::FeatureVector& x) const {
  return leaf_for(x).proba;
}

std::vector<DecisionTree::ExportedNode> DecisionTree::export_nodes() const {
  std::vector<ExportedNode> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    ExportedNode e;
    e.feature = node.feature;
    e.threshold = node.threshold;
    e.left = node.left;
    e.right = node.right;
    e.proba = node.proba;
    out.push_back(std::move(e));
  }
  return out;
}

DecisionTree DecisionTree::from_nodes(std::vector<ExportedNode> nodes, int num_classes) {
  if (nodes.empty()) throw std::invalid_argument("DecisionTree::from_nodes: no nodes");
  if (num_classes <= 0) throw std::invalid_argument("DecisionTree::from_nodes: bad class count");
  DecisionTree tree;
  tree.num_classes_ = num_classes;
  tree.nodes_.reserve(nodes.size());
  const int n = static_cast<int>(nodes.size());
  for (auto& e : nodes) {
    if (e.feature >= 0) {
      if (e.left < 0 || e.left >= n || e.right < 0 || e.right >= n) {
        throw std::invalid_argument("DecisionTree::from_nodes: child index out of range");
      }
    } else if (e.proba.size() != static_cast<std::size_t>(num_classes)) {
      throw std::invalid_argument("DecisionTree::from_nodes: leaf distribution size mismatch");
    }
    Node node;
    node.feature = e.feature;
    node.threshold = e.threshold;
    node.left = e.left;
    node.right = e.right;
    node.proba = std::move(e.proba);
    tree.nodes_.push_back(std::move(node));
  }
  return tree;
}

int DecisionTree::depth() const {
  int d = 0;
  for (const auto& node : nodes_) d = std::max(d, node.depth);
  return d;
}

}  // namespace ltefp::ml
