#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace ltefp::ml {
namespace {

double gini_from_counts(std::span<const double> counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

}  // namespace

DecisionTree::DecisionTree(TreeConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void DecisionTree::fit(const features::DatasetMatrix& data, int num_classes) {
  std::vector<std::size_t> indices(data.rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  fit(data, indices, num_classes);
}

void DecisionTree::fit(const features::Dataset& data, int num_classes) {
  fit(features::DatasetMatrix(data), num_classes);
}

void DecisionTree::fit(const features::Dataset& data, std::span<const std::size_t> indices,
                       int num_classes) {
  fit(features::DatasetMatrix(data), indices, num_classes);
}

void DecisionTree::fit(const features::DatasetMatrix& data,
                       std::span<const std::size_t> indices, int num_classes) {
  if (indices.empty()) throw std::invalid_argument("DecisionTree::fit: no samples");
  if (num_classes <= 0) throw std::invalid_argument("DecisionTree::fit: bad class count");
  nodes_.clear();
  num_classes_ = num_classes;
  matrix_ = &data;
  total_n_ = indices.size();
  idx_.assign(indices.begin(), indices.end());

  const std::size_t rows = data.rows();
  const std::size_t dims = data.cols();

  // Expand the dataset-wide per-column argsort through this fit's
  // bootstrap multiplicities: one counting pass per feature replaces a
  // per-tree O(n log n) sort per column. Duplicated entries land adjacent
  // (same value), which is all the sweep needs.
  boot_mult_.assign(rows, 0);
  for (const std::size_t id : idx_) ++boot_mult_[id];
  sorted_.resize(dims * total_n_);
  for (std::size_t f = 0; f < dims; ++f) {
    const auto order = data.sorted_order(f);
    std::uint32_t* out = sorted_.data() + f * total_n_;
    for (const std::uint32_t id : order) {
      for (std::uint32_t r = boot_mult_[id]; r > 0; --r) *out++ = id;
    }
  }
  part_scratch_.resize(total_n_);
  left_mask_.assign(rows, 0);

  build(0, idx_.size(), 0);

  // Release fit-scoped scratch: forests keep many trained trees around.
  matrix_ = nullptr;
  std::vector<std::size_t>().swap(idx_);
  std::vector<std::uint32_t>().swap(sorted_);
  std::vector<std::uint32_t>().swap(part_scratch_);
  std::vector<std::uint32_t>().swap(boot_mult_);
  std::vector<unsigned char>().swap(left_mask_);
}

int DecisionTree::build(std::size_t begin, std::size_t end, int depth) {
  const std::size_t n = end - begin;
  const std::span<const int> labels = matrix_->labels();
  std::vector<double> counts(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t i = begin; i < end; ++i) {
    ++counts[static_cast<std::size_t>(labels[idx_[i]])];
  }
  const double node_gini = gini_from_counts(counts, static_cast<double>(n));

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.depth = depth;
    leaf.proba.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      leaf.proba[c] = counts[c] / static_cast<double>(n);
    }
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(leaf));
    return id;
  };

  if (depth >= config_.max_depth || n < static_cast<std::size_t>(config_.min_samples_split) ||
      node_gini <= 1e-12) {
    return make_leaf();
  }

  const std::size_t dims = matrix_->cols();
  // Choose the features to try at this node.
  std::vector<std::size_t> tried(dims);
  std::iota(tried.begin(), tried.end(), std::size_t{0});
  if (config_.mtry > 0 && static_cast<std::size_t>(config_.mtry) < dims) {
    rng_.shuffle(tried);
    tried.resize(static_cast<std::size_t>(config_.mtry));
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = node_gini;  // must strictly improve
  std::vector<double> left_counts(counts.size());
  std::vector<double> right_counts(counts.size());

  const int candidates = std::max(1, config_.threshold_candidates);
  cand_threshold_.resize(static_cast<std::size_t>(candidates));
  cand_order_.resize(static_cast<std::size_t>(candidates));
  cand_left_counts_.resize(static_cast<std::size_t>(candidates) * counts.size());
  cand_n_left_.resize(static_cast<std::size_t>(candidates));

  for (const std::size_t f : tried) {
    const double* col = matrix_->column(f).data();
    const std::uint32_t* srt = sorted_.data() + f * total_n_ + begin;
    // The node's sorted order hands us the value range for free.
    const double lo = col[srt[0]];
    const double hi = col[srt[n - 1]];
    if (!(hi > lo)) continue;  // constant feature in this node

    // Draw the candidate thresholds exactly as the historical trainer
    // did: midpoints between two random node values concentrate
    // candidates where the data mass is. Node positions index idx_, so
    // the draws (and the RNG stream) are independent of the presort.
    for (int c = 0; c < candidates; ++c) {
      const double a = col[idx_[begin + rng_.index(n)]];
      const double b = col[idx_[begin + rng_.index(n)]];
      cand_threshold_[static_cast<std::size_t>(c)] =
          a == b ? (a + lo + (hi - lo) * rng_.uniform()) / 2.0 : (a + b) / 2.0;
    }

    // One incremental class-count sweep over the node's sorted order
    // scores every candidate: visit candidates by ascending threshold,
    // advancing a single frontier instead of recounting the node per
    // candidate.
    std::iota(cand_order_.begin(), cand_order_.end(), 0);
    std::sort(cand_order_.begin(), cand_order_.end(), [this](int x, int y) {
      const double tx = cand_threshold_[static_cast<std::size_t>(x)];
      const double ty = cand_threshold_[static_cast<std::size_t>(y)];
      return tx < ty || (tx == ty && x < y);
    });
    running_counts_.assign(counts.size(), 0);
    std::size_t pos = 0;
    for (const int c : cand_order_) {
      const double threshold = cand_threshold_[static_cast<std::size_t>(c)];
      while (pos < n && col[srt[pos]] <= threshold) {
        ++running_counts_[static_cast<std::size_t>(labels[srt[pos]])];
        ++pos;
      }
      double* snap = cand_left_counts_.data() + static_cast<std::size_t>(c) * counts.size();
      for (std::size_t k = 0; k < counts.size(); ++k) {
        snap[k] = static_cast<double>(running_counts_[k]);
      }
      cand_n_left_[static_cast<std::size_t>(c)] = static_cast<double>(pos);
    }

    // Score in the original candidate order so best-so-far tie behaviour
    // matches the per-candidate trainer exactly.
    for (int c = 0; c < candidates; ++c) {
      const double n_left = cand_n_left_[static_cast<std::size_t>(c)];
      const double n_right = static_cast<double>(n) - n_left;
      if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) continue;
      const double* snap =
          cand_left_counts_.data() + static_cast<std::size_t>(c) * counts.size();
      for (std::size_t k = 0; k < counts.size(); ++k) {
        left_counts[k] = snap[k];
        right_counts[k] = counts[k] - snap[k];
      }
      const double score = (n_left * gini_from_counts(left_counts, n_left) +
                            n_right * gini_from_counts(right_counts, n_right)) /
                           static_cast<double>(n);
      if (score + 1e-12 < best_score) {
        best_score = score;
        best_feature = static_cast<int>(f);
        best_threshold = cand_threshold_[static_cast<std::size_t>(c)];
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition the node-order entries in place (split predicate and
  // permutation identical to the historical trainer).
  const double* best_col = matrix_->column(static_cast<std::size_t>(best_feature)).data();
  const auto mid_it = std::partition(
      idx_.begin() + static_cast<std::ptrdiff_t>(begin),
      idx_.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t id) { return best_col[id] <= best_threshold; });
  const auto mid = static_cast<std::size_t>(mid_it - idx_.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  // Maintain the per-feature sorted partitions: a stable partition keeps
  // each side sorted. Side membership is a per-row bit (duplicated
  // bootstrap entries share it), read off the already-partitioned idx_.
  for (std::size_t i = begin; i < mid; ++i) left_mask_[idx_[i]] = 1;
  for (std::size_t i = mid; i < end; ++i) left_mask_[idx_[i]] = 0;
  for (std::size_t f = 0; f < dims; ++f) {
    std::uint32_t* block = sorted_.data() + f * total_n_ + begin;
    std::size_t write = 0, spill = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t id = block[j];
      if (left_mask_[id]) {
        block[write++] = id;
      } else {
        part_scratch_[spill++] = id;
      }
    }
    std::copy(part_scratch_.begin(),
              part_scratch_.begin() + static_cast<std::ptrdiff_t>(spill), block + write);
  }

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.depth = depth;
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  const int left = build(begin, mid, depth + 1);
  const int right = build(mid, end, depth + 1);
  nodes_[static_cast<std::size_t>(id)].left = left;
  nodes_[static_cast<std::size_t>(id)].right = right;
  return id;
}

const DecisionTree::Node& DecisionTree::leaf_for(const features::FeatureVector& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not trained");
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const std::size_t f = static_cast<std::size_t>(node->feature);
    if (f >= x.size()) throw std::invalid_argument("DecisionTree: feature dim mismatch");
    node = &nodes_[static_cast<std::size_t>(x[f] <= node->threshold ? node->left : node->right)];
  }
  return *node;
}

int DecisionTree::predict(const features::FeatureVector& x) const {
  const auto& proba = leaf_for(x).proba;
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

const std::vector<double>& DecisionTree::predict_proba(const features::FeatureVector& x) const {
  return leaf_for(x).proba;
}

const std::vector<double>& DecisionTree::predict_proba_row(
    const features::DatasetMatrix& data, std::size_t row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not trained");
  const Node* node = &nodes_.front();
  while (node->feature >= 0) {
    const std::size_t f = static_cast<std::size_t>(node->feature);
    if (f >= data.cols()) throw std::invalid_argument("DecisionTree: feature dim mismatch");
    node = &nodes_[static_cast<std::size_t>(data.at(row, f) <= node->threshold ? node->left
                                                                               : node->right)];
  }
  return node->proba;
}

int DecisionTree::predict_row(const features::DatasetMatrix& data, std::size_t row) const {
  const auto& proba = predict_proba_row(data, row);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<DecisionTree::ExportedNode> DecisionTree::export_nodes() const {
  std::vector<ExportedNode> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    ExportedNode e;
    e.feature = node.feature;
    e.threshold = node.threshold;
    e.left = node.left;
    e.right = node.right;
    e.proba = node.proba;
    out.push_back(std::move(e));
  }
  return out;
}

DecisionTree DecisionTree::from_nodes(std::vector<ExportedNode> nodes, int num_classes) {
  if (nodes.empty()) throw std::invalid_argument("DecisionTree::from_nodes: no nodes");
  if (num_classes <= 0) throw std::invalid_argument("DecisionTree::from_nodes: bad class count");
  DecisionTree tree;
  tree.num_classes_ = num_classes;
  tree.nodes_.reserve(nodes.size());
  const int n = static_cast<int>(nodes.size());
  for (auto& e : nodes) {
    if (e.feature >= 0) {
      if (e.left < 0 || e.left >= n || e.right < 0 || e.right >= n) {
        throw std::invalid_argument("DecisionTree::from_nodes: child index out of range");
      }
    } else if (e.proba.size() != static_cast<std::size_t>(num_classes)) {
      throw std::invalid_argument("DecisionTree::from_nodes: leaf distribution size mismatch");
    }
    Node node;
    node.feature = e.feature;
    node.threshold = e.threshold;
    node.left = e.left;
    node.right = e.right;
    node.proba = std::move(e.proba);
    tree.nodes_.push_back(std::move(node));
  }
  return tree;
}

int DecisionTree::depth() const {
  int d = 0;
  for (const auto& node : nodes_) d = std::max(d, node.depth);
  return d;
}

}  // namespace ltefp::ml
