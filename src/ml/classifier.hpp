// Common interface for the supervised learners benchmarked by the paper's
// Table VIII (Logistic Regression, kNN, CNN, Random Forest).
#pragma once

#include <memory>
#include <vector>

#include "features/dataset.hpp"

namespace ltefp::ml {

using features::Dataset;
using features::FeatureVector;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. Implementations may standardise internally.
  virtual void fit(const Dataset& train) = 0;

  /// Predicted class label for one feature vector.
  virtual int predict(const FeatureVector& x) const = 0;

  /// Per-class probability estimates (sums to 1).
  virtual std::vector<double> predict_proba(const FeatureVector& x) const = 0;

  virtual const char* name() const = 0;
};

/// Predicts a whole dataset; returns labels in sample order.
std::vector<int> predict_all(const Classifier& model, const Dataset& data);

}  // namespace ltefp::ml
