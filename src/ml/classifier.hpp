// Common interface for the supervised learners benchmarked by the paper's
// Table VIII (Logistic Regression, kNN, CNN, Random Forest).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "features/dataset.hpp"
#include "features/matrix.hpp"

namespace ltefp::ml {

using features::Dataset;
using features::FeatureVector;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset. Implementations may standardise internally.
  virtual void fit(const Dataset& train) = 0;

  /// Trains on a row subset of a columnar matrix — the zero-copy path
  /// cross-validation folds and hierarchical stages use. The default
  /// materialises the subset and calls fit(); columnar learners override
  /// it. Implementations must produce a model bit-identical to fitting
  /// the materialised subset.
  virtual void fit_rows(const features::DatasetMatrix& train,
                        std::span<const std::uint32_t> rows);

  /// Predicted class label for one feature vector.
  virtual int predict(const FeatureVector& x) const = 0;

  /// Batch prediction over matrix rows, in row order. The default gathers
  /// each row into reusable per-chunk scratch and calls predict();
  /// columnar learners override it with block traversal.
  virtual std::vector<int> predict_rows(const features::DatasetMatrix& data,
                                        std::span<const std::uint32_t> rows) const;

  /// Per-class probability estimates (sums to 1).
  virtual std::vector<double> predict_proba(const FeatureVector& x) const = 0;

  virtual const char* name() const = 0;
};

/// Predicts a whole dataset; returns labels in sample order.
std::vector<int> predict_all(const Classifier& model, const Dataset& data);

/// Predicts every row of a columnar matrix, in row order.
std::vector<int> predict_all(const Classifier& model, const features::DatasetMatrix& data);

}  // namespace ltefp::ml
