// Model persistence. The paper releases its trained model alongside the
// dataset; this module gives the Random Forest (and the standardiser) a
// stable, human-auditable text format so a fitted classifier can be
// shipped and reloaded without retraining.
//
// Format (line-oriented, whitespace-separated):
//   ltefp-rf v1
//   trees <n> classes <k>
//   tree <node_count>
//     node <feature> <threshold> <left> <right>      (internal)
//     leaf <p0> <p1> ... <p(k-1)>                    (leaf)
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "features/dataset.hpp"
#include "ml/random_forest.hpp"

namespace ltefp::ml {

/// Writes a fitted forest. Throws std::logic_error if not trained.
void save_forest(std::ostream& out, const RandomForest& forest);

/// Reads a forest previously written by save_forest. Throws
/// std::runtime_error on malformed input.
RandomForest load_forest(std::istream& in);

/// Standardiser persistence (mean/stddev rows).
void save_standardizer(std::ostream& out, const features::Standardizer& standardizer);
features::Standardizer load_standardizer(std::istream& in);

}  // namespace ltefp::ml
