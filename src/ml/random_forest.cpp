#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace ltefp::ml {

RandomForest::RandomForest(ForestConfig config) : config_(config) {}

void RandomForest::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("RandomForest::fit: empty dataset");
  const features::DatasetMatrix matrix(train);
  fit_rows(matrix, matrix.all_rows());
}

void RandomForest::fit_rows(const features::DatasetMatrix& train,
                            std::span<const std::uint32_t> rows) {
  if (rows.empty()) throw std::invalid_argument("RandomForest::fit: empty dataset");
  const auto hist = train.class_histogram(rows);
  num_classes_ = static_cast<int>(hist.size());

  TreeConfig tree_config = config_.tree;
  if (tree_config.mtry == 0) {
    tree_config.mtry = std::max(
        1, static_cast<int>(std::round(std::sqrt(static_cast<double>(train.cols())))));
  }

  const auto n_boot = static_cast<std::size_t>(
      std::max(1.0, config_.bootstrap_fraction * static_cast<double>(rows.size())));
  // Each tree's bootstrap resample and split RNG derive from (forest seed,
  // tree index) alone — not from a shared sequential stream — so trees
  // grow concurrently into their own slots and the forest is bit-identical
  // at any thread count.
  const int num_classes = num_classes_;
  trees_ = parallel_map(static_cast<std::size_t>(config_.num_trees), [&](std::size_t t) {
    Rng rng(derive_seed({config_.seed, static_cast<std::uint64_t>(t)}));
    std::vector<std::size_t> bootstrap(n_boot);
    for (auto& idx : bootstrap) idx = rows[rng.index(rows.size())];
    DecisionTree tree(tree_config, rng());
    tree.fit(train, bootstrap, num_classes);
    return tree;
  });
}

RandomForest RandomForest::from_trees(std::vector<DecisionTree> trees, int num_classes) {
  if (trees.empty()) throw std::invalid_argument("RandomForest::from_trees: no trees");
  if (num_classes <= 0) throw std::invalid_argument("RandomForest::from_trees: bad class count");
  RandomForest forest;
  forest.trees_ = std::move(trees);
  forest.num_classes_ = num_classes;
  return forest;
}

std::vector<double> RandomForest::predict_proba(const FeatureVector& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not trained");
  std::vector<double> proba(static_cast<std::size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto& p = tree.predict_proba(x);
    for (std::size_t c = 0; c < proba.size(); ++c) proba[c] += p[c];
  }
  for (double& p : proba) p /= static_cast<double>(trees_.size());
  return proba;
}

int RandomForest::predict(const FeatureVector& x) const {
  const auto proba = predict_proba(x);
  return static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> RandomForest::predict_rows(const features::DatasetMatrix& data,
                                            std::span<const std::uint32_t> rows) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not trained");
  std::vector<int> out(rows.size());
  // Block-parallel batch traversal straight over the columnar matrix: no
  // per-sample FeatureVector gather. Trees are accumulated in index order
  // with the same arithmetic as predict_proba, so labels match the
  // per-sample path bit for bit.
  parallel_for(rows.size(), /*chunk=*/64, [&](std::size_t begin, std::size_t end) {
    std::vector<double> proba(static_cast<std::size_t>(num_classes_));
    for (std::size_t i = begin; i < end; ++i) {
      std::fill(proba.begin(), proba.end(), 0.0);
      for (const auto& tree : trees_) {
        const auto& p = tree.predict_proba_row(data, rows[i]);
        for (std::size_t c = 0; c < proba.size(); ++c) proba[c] += p[c];
      }
      for (double& p : proba) p /= static_cast<double>(trees_.size());
      out[i] = static_cast<int>(std::max_element(proba.begin(), proba.end()) - proba.begin());
    }
  });
  return out;
}

}  // namespace ltefp::ml
