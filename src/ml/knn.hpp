// k-Nearest-Neighbours with internal z-score standardisation.
//
// Paper Table VIII: k chosen by cross-validation over 1..10 (optimal k=4).
// As the paper notes, kNN prediction slows on large datasets — the
// micro-benchmarks quantify that.
#pragma once

#include <vector>

#include "features/dataset.hpp"
#include "ml/classifier.hpp"

namespace ltefp::ml {

struct KnnConfig {
  int k = 4;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnConfig config = {});

  void fit(const Dataset& train) override;
  int predict(const FeatureVector& x) const override;
  std::vector<double> predict_proba(const FeatureVector& x) const override;
  const char* name() const override { return "kNN"; }

  int k() const { return config_.k; }

 private:
  std::vector<int> neighbor_labels(const FeatureVector& x) const;

  KnnConfig config_;
  features::Standardizer standardizer_;
  std::vector<FeatureVector> points_;  // standardised training features
  std::vector<int> labels_;
  int num_classes_ = 0;
};

/// Selects k in [1, k_max] by `folds`-fold cross-validated accuracy, as the
/// paper does ("iterative process whereby we train and test the model
/// across a range of k values, from 1 to 10").
int select_k_by_cross_validation(const Dataset& data, int k_max, int folds, std::uint64_t seed);

}  // namespace ltefp::ml
