// k-Nearest-Neighbours with internal z-score standardisation.
//
// Paper Table VIII: k chosen by cross-validation over 1..10 (optimal k=4).
// As the paper notes, kNN prediction slows on large datasets — the
// micro-benchmarks quantify that.
//
// The query core is span-based and works out of caller-owned scratch
// (standardised query + heap storage), so batch prediction over a
// DatasetMatrix allocates nothing per sample.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "features/dataset.hpp"
#include "ml/classifier.hpp"

namespace ltefp::ml {

struct KnnConfig {
  int k = 4;
};

class Knn final : public Classifier {
 public:
  explicit Knn(KnnConfig config = {});

  /// Reusable per-query workspace for the span-based prediction path.
  struct Scratch {
    FeatureVector q;                            // standardised query
    std::vector<std::pair<double, int>> heap;   // (distance, label) max-heap
    std::vector<double> proba;
  };

  void fit(const Dataset& train) override;
  void fit_rows(const features::DatasetMatrix& train,
                std::span<const std::uint32_t> rows) override;
  int predict(const FeatureVector& x) const override;
  std::vector<double> predict_proba(const FeatureVector& x) const override;
  std::vector<int> predict_rows(const features::DatasetMatrix& data,
                                std::span<const std::uint32_t> rows) const override;

  /// Span core: predicts one raw (unstandardised) feature vector using
  /// caller scratch. No allocation after scratch warm-up.
  int predict_span(std::span<const double> x, Scratch& scratch) const;

  const char* name() const override { return "kNN"; }

  int k() const { return config_.k; }

 private:
  /// Fills scratch.proba with the neighbour class distribution of `x`.
  void neighbor_proba(std::span<const double> x, Scratch& scratch) const;

  KnnConfig config_;
  features::Standardizer standardizer_;
  std::vector<FeatureVector> points_;  // standardised training features
  std::vector<int> labels_;
  int num_classes_ = 0;
};

/// Selects k in [1, k_max] by `folds`-fold cross-validated accuracy, as the
/// paper does ("iterative process whereby we train and test the model
/// across a range of k values, from 1 to 10").
int select_k_by_cross_validation(const Dataset& data, int k_max, int folds, std::uint64_t seed);

}  // namespace ltefp::ml
