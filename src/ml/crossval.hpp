// Stratified k-fold cross-validation.
#pragma once

#include <cstdint>
#include <vector>

#include "features/dataset.hpp"
#include "ml/classifier.hpp"

namespace ltefp::ml {

/// Stratified fold assignment: returns fold index per sample, balanced per
/// class.
std::vector<int> stratified_folds(const Dataset& data, int folds, std::uint64_t seed);

/// Mean accuracy across stratified folds. `model` is refit per fold.
double cross_val_accuracy(Classifier& model, const Dataset& data, int folds, std::uint64_t seed);

}  // namespace ltefp::ml
