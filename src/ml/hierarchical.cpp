#include "ml/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "features/matrix.hpp"

namespace ltefp::ml {

HierarchicalClassifier::HierarchicalClassifier(std::function<int(int)> group_of, int num_groups,
                                               Factory factory)
    : group_of_(std::move(group_of)), num_groups_(num_groups), factory_(std::move(factory)) {
  if (num_groups_ < 1) throw std::invalid_argument("HierarchicalClassifier: bad group count");
}

void HierarchicalClassifier::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("HierarchicalClassifier::fit: empty dataset");
  const features::DatasetMatrix matrix(train);
  fit_rows(matrix, matrix.all_rows());
}

void HierarchicalClassifier::fit_rows(const features::DatasetMatrix& train,
                                      std::span<const std::uint32_t> rows) {
  if (rows.empty()) throw std::invalid_argument("HierarchicalClassifier::fit: empty dataset");
  num_labels_ = static_cast<int>(train.class_histogram(rows).size());

  // Stage 1: coarse-group labels over the shared feature columns. Rows
  // outside this fit's subset keep a dummy label; they are never visited.
  std::vector<int> coarse_labels(train.rows(), 0);
  for (const std::uint32_t row : rows) {
    coarse_labels[row] = group_of_(train.label(row));
  }
  const auto coarse = train.with_labels(
      std::move(coarse_labels), std::vector<std::string>(static_cast<std::size_t>(num_groups_)));
  group_model_ = factory_();
  group_model_->fit_rows(coarse, rows);

  // Stage 2: one fine model per group over that group's labels, again as
  // a relabeled view plus the group's row subset.
  stages_.clear();
  stages_.resize(static_cast<std::size_t>(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    auto& stage = stages_[static_cast<std::size_t>(g)];
    // Collect the global labels occurring in this group.
    for (int label = 0; label < num_labels_; ++label) {
      if (group_of_(label) == g) stage.global_labels.push_back(label);
    }
    if (stage.global_labels.empty()) continue;
    std::vector<int> fine_labels(train.rows(), 0);
    std::vector<std::uint32_t> group_rows;
    for (const std::uint32_t row : rows) {
      const int label = train.label(row);
      if (group_of_(label) != g) continue;
      const auto it =
          std::find(stage.global_labels.begin(), stage.global_labels.end(), label);
      fine_labels[row] = static_cast<int>(it - stage.global_labels.begin());
      group_rows.push_back(row);
    }
    if (group_rows.empty()) {
      stage.global_labels.clear();
      continue;
    }
    if (stage.global_labels.size() == 1) continue;  // degenerate: single app
    const auto fine = train.with_labels(
        std::move(fine_labels), std::vector<std::string>(stage.global_labels.size()));
    stage.model = factory_();
    stage.model->fit_rows(fine, group_rows);
  }
}

int HierarchicalClassifier::predict_group(const FeatureVector& x) const {
  if (!group_model_) throw std::logic_error("HierarchicalClassifier: not trained");
  return group_model_->predict(x);
}

int HierarchicalClassifier::predict(const FeatureVector& x) const {
  const int g = predict_group(x);
  const auto& stage = stages_[static_cast<std::size_t>(g)];
  if (stage.global_labels.empty()) return 0;
  if (!stage.model) return stage.global_labels.front();
  const int local = stage.model->predict(x);
  return stage.global_labels[static_cast<std::size_t>(local)];
}

std::vector<int> HierarchicalClassifier::predict_rows(
    const features::DatasetMatrix& data, std::span<const std::uint32_t> rows) const {
  if (!group_model_) throw std::logic_error("HierarchicalClassifier: not trained");
  // Batch the coarse stage over all rows, then each fine stage over the
  // rows routed to its group — same decisions as per-sample predict(), but
  // every stage runs its own block-parallel batch traversal.
  const auto groups = group_model_->predict_rows(data, rows);
  std::vector<int> out(rows.size(), 0);
  std::vector<std::vector<std::uint32_t>> rows_of_group(static_cast<std::size_t>(num_groups_));
  std::vector<std::vector<std::size_t>> slots_of_group(static_cast<std::size_t>(num_groups_));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto g = static_cast<std::size_t>(groups[i]);
    rows_of_group[g].push_back(rows[i]);
    slots_of_group[g].push_back(i);
  }
  for (int g = 0; g < num_groups_; ++g) {
    const auto& stage = stages_[static_cast<std::size_t>(g)];
    const auto& member_rows = rows_of_group[static_cast<std::size_t>(g)];
    const auto& slots = slots_of_group[static_cast<std::size_t>(g)];
    if (member_rows.empty() || stage.global_labels.empty()) continue;  // out stays 0
    if (!stage.model) {
      for (const std::size_t slot : slots) out[slot] = stage.global_labels.front();
      continue;
    }
    const auto locals = stage.model->predict_rows(data, member_rows);
    for (std::size_t j = 0; j < slots.size(); ++j) {
      out[slots[j]] = stage.global_labels[static_cast<std::size_t>(locals[j])];
    }
  }
  return out;
}

std::vector<double> HierarchicalClassifier::predict_proba(const FeatureVector& x) const {
  if (!group_model_) throw std::logic_error("HierarchicalClassifier: not trained");
  std::vector<double> proba(static_cast<std::size_t>(num_labels_), 0.0);
  const auto group_proba = group_model_->predict_proba(x);
  for (int g = 0; g < num_groups_; ++g) {
    const auto& stage = stages_[static_cast<std::size_t>(g)];
    if (stage.global_labels.empty()) continue;
    const double pg = group_proba[static_cast<std::size_t>(g)];
    if (!stage.model) {
      proba[static_cast<std::size_t>(stage.global_labels.front())] += pg;
      continue;
    }
    const auto fine = stage.model->predict_proba(x);
    for (std::size_t i = 0; i < stage.global_labels.size(); ++i) {
      proba[static_cast<std::size_t>(stage.global_labels[i])] += pg * fine[i];
    }
  }
  return proba;
}

}  // namespace ltefp::ml
