#include "ml/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>

namespace ltefp::ml {

HierarchicalClassifier::HierarchicalClassifier(std::function<int(int)> group_of, int num_groups,
                                               Factory factory)
    : group_of_(std::move(group_of)), num_groups_(num_groups), factory_(std::move(factory)) {
  if (num_groups_ < 1) throw std::invalid_argument("HierarchicalClassifier: bad group count");
}

void HierarchicalClassifier::fit(const Dataset& train) {
  if (train.empty()) throw std::invalid_argument("HierarchicalClassifier::fit: empty dataset");
  num_labels_ = static_cast<int>(train.class_histogram().size());

  // Stage 1: coarse-group dataset.
  Dataset coarse;
  coarse.feature_names = train.feature_names;
  for (const auto& s : train.samples) {
    coarse.add(s.features, group_of_(s.label));
  }
  coarse.label_names.resize(static_cast<std::size_t>(num_groups_));
  group_model_ = factory_();
  group_model_->fit(coarse);

  // Stage 2: one fine model per group over that group's labels.
  stages_.clear();
  stages_.resize(static_cast<std::size_t>(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    auto& stage = stages_[static_cast<std::size_t>(g)];
    // Collect the global labels occurring in this group.
    for (int label = 0; label < num_labels_; ++label) {
      if (group_of_(label) == g) stage.global_labels.push_back(label);
    }
    if (stage.global_labels.empty()) continue;
    Dataset fine;
    fine.feature_names = train.feature_names;
    fine.label_names.resize(stage.global_labels.size());
    for (const auto& s : train.samples) {
      if (group_of_(s.label) != g) continue;
      const auto it =
          std::find(stage.global_labels.begin(), stage.global_labels.end(), s.label);
      fine.add(s.features, static_cast<int>(it - stage.global_labels.begin()));
    }
    if (fine.empty()) {
      stage.global_labels.clear();
      continue;
    }
    if (stage.global_labels.size() == 1) continue;  // degenerate: single app
    stage.model = factory_();
    stage.model->fit(fine);
  }
}

int HierarchicalClassifier::predict_group(const FeatureVector& x) const {
  if (!group_model_) throw std::logic_error("HierarchicalClassifier: not trained");
  return group_model_->predict(x);
}

int HierarchicalClassifier::predict(const FeatureVector& x) const {
  const int g = predict_group(x);
  const auto& stage = stages_[static_cast<std::size_t>(g)];
  if (stage.global_labels.empty()) return 0;
  if (!stage.model) return stage.global_labels.front();
  const int local = stage.model->predict(x);
  return stage.global_labels[static_cast<std::size_t>(local)];
}

std::vector<double> HierarchicalClassifier::predict_proba(const FeatureVector& x) const {
  if (!group_model_) throw std::logic_error("HierarchicalClassifier: not trained");
  std::vector<double> proba(static_cast<std::size_t>(num_labels_), 0.0);
  const auto group_proba = group_model_->predict_proba(x);
  for (int g = 0; g < num_groups_; ++g) {
    const auto& stage = stages_[static_cast<std::size_t>(g)];
    if (stage.global_labels.empty()) continue;
    const double pg = group_proba[static_cast<std::size_t>(g)];
    if (!stage.model) {
      proba[static_cast<std::size_t>(stage.global_labels.front())] += pg;
      continue;
    }
    const auto fine = stage.model->predict_proba(x);
    for (std::size_t i = 0; i < stage.global_labels.size(); ++i) {
      proba[static_cast<std::size_t>(stage.global_labels[i])] += pg * fine[i];
    }
  }
  return proba;
}

}  // namespace ltefp::ml
