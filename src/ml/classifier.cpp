#include "ml/classifier.hpp"

namespace ltefp::ml {

std::vector<int> predict_all(const Classifier& model, const Dataset& data) {
  std::vector<int> out;
  out.reserve(data.size());
  for (const auto& s : data.samples) out.push_back(model.predict(s.features));
  return out;
}

}  // namespace ltefp::ml
