#include "ml/classifier.hpp"

#include "common/parallel.hpp"

namespace ltefp::ml {

void Classifier::fit_rows(const features::DatasetMatrix& train,
                          std::span<const std::uint32_t> rows) {
  fit(train.materialize(rows));
}

std::vector<int> Classifier::predict_rows(const features::DatasetMatrix& data,
                                          std::span<const std::uint32_t> rows) const {
  // Chunk-parallel with one gather scratch per chunk: each prediction
  // lands in its own slot, so output order matches row order exactly.
  std::vector<int> out(rows.size());
  parallel_for(rows.size(), /*chunk=*/16, [&](std::size_t begin, std::size_t end) {
    FeatureVector x(data.cols());
    for (std::size_t i = begin; i < end; ++i) {
      data.gather_row(rows[i], x);
      out[i] = predict(x);
    }
  });
  return out;
}

std::vector<int> predict_all(const Classifier& model, const Dataset& data) {
  // Batch-parallel over samples: predict() is const and each result lands
  // in its own slot, so output order matches sample order exactly.
  return parallel_map(
      data.samples.size(),
      [&](std::size_t i) { return model.predict(data.samples[i].features); },
      /*chunk=*/16);
}

std::vector<int> predict_all(const Classifier& model, const features::DatasetMatrix& data) {
  return model.predict_rows(data, data.all_rows());
}

}  // namespace ltefp::ml
