#include "ml/classifier.hpp"

#include "common/parallel.hpp"

namespace ltefp::ml {

std::vector<int> predict_all(const Classifier& model, const Dataset& data) {
  // Batch-parallel over samples: predict() is const and each result lands
  // in its own slot, so output order matches sample order exactly.
  return parallel_map(
      data.samples.size(),
      [&](std::size_t i) { return model.predict(data.samples[i].features); },
      /*chunk=*/16);
}

}  // namespace ltefp::ml
