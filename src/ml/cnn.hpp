// Small 1-D convolutional neural network with softmax cross-entropy loss,
// standing in for the paper's CNN baseline (Table VIII: "Number of
// class = 3, LF = SCE").
//
// Architecture: the feature vector is treated as a length-D sequence;
// conv1d (kernel 3, same padding, ReLU) -> flatten -> dense -> softmax.
// Trained with mini-batch SGD + momentum. As the paper observes, on this
// small tabular data a CNN underperforms the Random Forest while costing
// far more compute.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "features/dataset.hpp"
#include "ml/classifier.hpp"

namespace ltefp::ml {

struct CnnConfig {
  int channels = 8;        // conv output channels
  int kernel = 3;          // conv kernel width (odd)
  double learning_rate = 0.05;
  double momentum = 0.9;
  int epochs = 60;
  int batch_size = 64;
  std::uint64_t seed = 1;
};

class Cnn1D final : public Classifier {
 public:
  explicit Cnn1D(CnnConfig config = {});

  void fit(const Dataset& train) override;
  void fit_rows(const features::DatasetMatrix& train,
                std::span<const std::uint32_t> rows) override;
  int predict(const FeatureVector& x) const override;
  std::vector<double> predict_proba(const FeatureVector& x) const override;
  const char* name() const override { return "CNN"; }

 private:
  struct Activations {
    std::vector<double> conv;    // [channels * dims] post-ReLU
    std::vector<double> logits;  // [classes]
    std::vector<double> proba;   // [classes]
  };
  void forward(const FeatureVector& std_x, Activations& act) const;
  /// SGD core over pre-standardised samples; xs.size() == labels.size().
  void fit_impl(const std::vector<FeatureVector>& xs, const std::vector<int>& labels,
                int num_classes);

  CnnConfig config_;
  features::Standardizer standardizer_;
  int dims_ = 0;
  int num_classes_ = 0;
  // conv weights: [channel][kernel], bias per channel
  std::vector<std::vector<double>> conv_w_;
  std::vector<double> conv_b_;
  // dense: [class][channels * dims], bias per class
  std::vector<std::vector<double>> dense_w_;
  std::vector<double> dense_b_;
};

}  // namespace ltefp::ml
