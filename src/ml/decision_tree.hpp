// CART decision tree (Gini impurity) — the base learner of the Random
// Forest the paper selects for its classifier (Table VIII: trees = 100).
//
// Split search samples candidate thresholds from the node's observed
// values (histogram-style) rather than scoring every midpoint; with
// per-node feature subsampling (mtry) this is the standard random-forest
// recipe and keeps training linear in node size.
//
// The trainer is columnar and presorted (sklearn/XGBoost-exact style):
// each feature column of the DatasetMatrix is argsorted once per dataset,
// each tree expands that order through its bootstrap multiplicities once,
// and the sorted per-feature index partitions are maintained down the tree
// with stable partitions. Candidate thresholds are still drawn from the
// node values with the same RNG stream as the original per-candidate
// rescan trainer, but all candidates of a feature are scored in ONE
// incremental class-count sweep over the node's sorted order. Split
// decisions, thresholds, tie order, and the RNG stream are unchanged, so
// trained trees are bit-identical to the historical AoS trainer (pinned
// by tests/test_columnar_ml.cpp against a reference implementation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "features/dataset.hpp"
#include "features/matrix.hpp"

namespace ltefp::ml {

struct TreeConfig {
  int max_depth = 18;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Features tried per node; 0 = all, otherwise typically sqrt(dims).
  int mtry = 0;
  /// Candidate thresholds sampled per tried feature.
  int threshold_candidates = 24;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeConfig config = {}, std::uint64_t seed = 1);

  /// Fits on the subset of `data` given by `indices` (duplicates allowed —
  /// this is how the forest passes bootstrap resamples). Row order of
  /// `indices` is significant: candidate thresholds are drawn from node
  /// positions.
  void fit(const features::DatasetMatrix& data, std::span<const std::size_t> indices,
           int num_classes);

  /// Fits on every row of the matrix.
  void fit(const features::DatasetMatrix& data, int num_classes);

  /// AoS convenience overloads: transpose once, then fit columnar.
  void fit(const features::Dataset& data, std::span<const std::size_t> indices,
           int num_classes);
  void fit(const features::Dataset& data, int num_classes);

  int predict(const features::FeatureVector& x) const;
  const std::vector<double>& predict_proba(const features::FeatureVector& x) const;

  /// Columnar traversal: leaf distribution / label for one matrix row.
  const std::vector<double>& predict_proba_row(const features::DatasetMatrix& data,
                                               std::size_t row) const;
  int predict_row(const features::DatasetMatrix& data, std::size_t row) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  bool trained() const { return !nodes_.empty(); }

  /// Flat node view for persistence (ml/serialize.hpp). feature == -1
  /// marks a leaf, whose `proba` holds the class distribution.
  struct ExportedNode {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> proba;
  };
  std::vector<ExportedNode> export_nodes() const;

  /// Rebuilds a tree from exported nodes (index 0 is the root). Throws
  /// std::invalid_argument on inconsistent input.
  static DecisionTree from_nodes(std::vector<ExportedNode> nodes, int num_classes);

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int depth = 0;
    std::vector<double> proba;  // leaf class distribution
  };

  int build(std::size_t begin, std::size_t end, int depth);
  const Node& leaf_for(const features::FeatureVector& x) const;

  TreeConfig config_;
  Rng rng_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;

  // --- fit-scoped state (valid only inside fit/build) -------------------
  const features::DatasetMatrix* matrix_ = nullptr;
  std::size_t total_n_ = 0;       // number of bootstrap entries
  std::vector<std::size_t> idx_;  // node-order entries; std::partition'd per split
  // Per-feature value-sorted entries, cols() blocks of total_n_ row ids,
  // partitioned in lockstep with idx_ (stable, so blocks stay sorted).
  std::vector<std::uint32_t> sorted_;
  std::vector<std::uint32_t> part_scratch_;   // stable-partition spill buffer
  std::vector<std::uint32_t> boot_mult_;      // bootstrap multiplicity per row
  std::vector<unsigned char> left_mask_;      // per dataset row: goes left?
  std::vector<double> cand_threshold_;        // per candidate
  std::vector<int> cand_order_;               // candidates by ascending threshold
  std::vector<std::size_t> running_counts_;   // sweep class counts
  std::vector<double> cand_left_counts_;      // candidates x classes snapshot
  std::vector<double> cand_n_left_;           // per candidate
};

}  // namespace ltefp::ml
