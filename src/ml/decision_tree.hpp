// CART decision tree (Gini impurity) — the base learner of the Random
// Forest the paper selects for its classifier (Table VIII: trees = 100).
//
// Split search samples candidate thresholds from the node's observed
// values (histogram-style) rather than sorting every feature at every
// node; with per-node feature subsampling (mtry) this is the standard
// random-forest recipe and keeps training linear in node size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "features/dataset.hpp"

namespace ltefp::ml {

struct TreeConfig {
  int max_depth = 18;
  int min_samples_split = 4;
  int min_samples_leaf = 2;
  /// Features tried per node; 0 = all, otherwise typically sqrt(dims).
  int mtry = 0;
  /// Candidate thresholds sampled per tried feature.
  int threshold_candidates = 24;
};

class DecisionTree {
 public:
  explicit DecisionTree(TreeConfig config = {}, std::uint64_t seed = 1);

  /// Fits on the subset of `data` given by `indices` (duplicates allowed —
  /// this is how the forest passes bootstrap resamples).
  void fit(const features::Dataset& data, std::span<const std::size_t> indices,
           int num_classes);

  /// Fits on the whole dataset.
  void fit(const features::Dataset& data, int num_classes);

  int predict(const features::FeatureVector& x) const;
  const std::vector<double>& predict_proba(const features::FeatureVector& x) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  bool trained() const { return !nodes_.empty(); }

  /// Flat node view for persistence (ml/serialize.hpp). feature == -1
  /// marks a leaf, whose `proba` holds the class distribution.
  struct ExportedNode {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> proba;
  };
  std::vector<ExportedNode> export_nodes() const;

  /// Rebuilds a tree from exported nodes (index 0 is the root). Throws
  /// std::invalid_argument on inconsistent input.
  static DecisionTree from_nodes(std::vector<ExportedNode> nodes, int num_classes);

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int depth = 0;
    std::vector<double> proba;  // leaf class distribution
  };

  int build(const features::Dataset& data, std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, int depth, int num_classes);
  const Node& leaf_for(const features::FeatureVector& x) const;

  TreeConfig config_;
  Rng rng_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
  // Split-search scratch, reused across nodes: the current node's labels
  // and one feature's values, gathered once per (node, feature) so the
  // threshold-candidate loop scans flat arrays instead of re-chasing
  // indices[i] -> sample -> features[f] for every candidate.
  std::vector<double> node_values_;
  std::vector<int> node_labels_;
};

}  // namespace ltefp::ml
