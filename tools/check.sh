#!/usr/bin/env bash
# tools/check.sh — the one-command gate for this repo.
#
# Runs, in order, each as a named step that fails the whole script:
#   1. configure + build with LTEFP_WERROR=ON (warnings are errors) and
#      LTEFP_LINT=ON (ltefp-lint runs as part of the build)
#   2. ltefp-lint over src/ tools/ bench/ tests/ (explicit, for a clear log)
#   3. the tier-1 ctest suite
#   4. when the compiler supports them: the ASan+UBSan decoder suites and
#      the TSan parallel/attack suites (skip with --no-sanitizers)
#
# Modes:
#   tools/check.sh              full gate
#   tools/check.sh --format     clang-format --dry-run --Werror only (no-op
#                               with a notice if clang-format is missing)
#   tools/check.sh --no-sanitizers    skip step 4
#   tools/check.sh --sanitizers-only  only step 4 (CI runs 1-3 as its own
#                                     named steps)
#   tools/check.sh --bench      build bench_micro (default config, matching
#                               the committed baseline) and diff its tracked
#                               benchmarks' ns/op against BENCH_micro.json;
#                               prints NEW/MISSING/ok per entry and WARNS on
#                               >25% regressions (never fails — this VM's
#                               wall clock is noisy; treat warnings as a
#                               prompt to re-run and investigate)
#   tools/check.sh --bench-update   same run, then rewrite BENCH_micro.json
#                                   with the fresh numbers (commit it)
#
# Exits non-zero on the first failing step.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

step() { printf '\n=== %s ===\n' "$*"; }

format_mode=0
sanitizers=1
main_gate=1
bench_mode=0
bench_update=0
for arg in "$@"; do
  case "$arg" in
    --format) format_mode=1 ;;
    --no-sanitizers) sanitizers=0 ;;
    --sanitizers-only) main_gate=0 ;;
    --bench) bench_mode=1 ;;
    --bench-update) bench_mode=1; bench_update=1 ;;
    *)
      echo "usage: tools/check.sh [--format] [--no-sanitizers] [--sanitizers-only] [--bench] [--bench-update]" >&2
      exit 2
      ;;
  esac
done

# The benchmark set tracked in BENCH_micro.json. Anchored: adding a new
# benchmark to bench_micro does not silently change this gate — extend the
# filter (and refresh the baseline) deliberately.
BENCH_FILTER='^BM_SnifferSubframe/16$|^BM_Dtw/180$|^BM_DtwBestMatch/[01]$|^BM_RandomForestTrain/5000$|^BM_RandomForestPredictBatch$|^BM_DatasetMatrixBuild/5000$|^BM_RandomForestTrainPar/5000/(1|2|4)$|^BM_DtwMatrixPar/24/(1|2|4)$|^BM_BlindDecodeBatchPar/0/(1|2|4)$|^BM_CollectTracesPar/4/(1|2|4)$|^BM_SpscQueue$|^BM_StreamIngest/(1|2|4)$|^BM_StreamVerdictLatency$'

run_bench() {
  step "bench build (default config, as the committed baseline)"
  cmake -B "$ROOT/build-bench" -S "$ROOT" >/dev/null
  cmake --build "$ROOT/build-bench" -j"$JOBS" --target bench_micro

  step "bench run (tracked set)"
  local fresh="$ROOT/build-bench/bench_micro_fresh.json"
  "$ROOT/build-bench/bench/bench_micro" \
    --benchmark_filter="$BENCH_FILTER" --json "$fresh"

  step "bench diff vs BENCH_micro.json (warn > 25%)"
  awk '
    # Both files are one JSON object per line, written by bench_micro
    # itself; POSIX match()/RSTART/RLENGTH keep this dependency-free.
    {
      if (match($0, /"name": "[^"]*"/)) {
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.eE+-]+/)) {
          ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
          if (NR == FNR) {
            base[name] = ns
            base_order[++nb] = name
          } else {
            cur[name] = ns
            cur_order[++nc] = name
          }
        }
      }
    }
    END {
      warned = 0
      for (i = 1; i <= nc; i++) {
        name = cur_order[i]
        if (!(name in base)) {
          printf "NEW         %-34s %14.0f ns/op (no baseline)\n", name, cur[name]
          continue
        }
        pct = (cur[name] - base[name]) / base[name] * 100.0
        if (pct > 25.0) {
          printf "REGRESSION  %-34s %14.0f -> %.0f ns/op (%+.1f%%)\n", \
                 name, base[name], cur[name], pct
          warned++
        } else {
          printf "ok          %-34s %14.0f -> %.0f ns/op (%+.1f%%)\n", \
                 name, base[name], cur[name], pct
        }
      }
      for (i = 1; i <= nb; i++) {
        name = base_order[i]
        if (!(name in cur)) printf "MISSING     %-34s (in baseline, not produced)\n", name
      }
      if (warned > 0) {
        printf "\nWARNING: %d benchmark(s) regressed more than 25%% vs the committed baseline\n", warned
      } else {
        print "\nno regressions beyond 25%"
      }
    }
  ' "$ROOT/BENCH_micro.json" "$fresh"

  if [[ "$bench_update" == 1 ]]; then
    step "refreshing BENCH_micro.json"
    cp "$fresh" "$ROOT/BENCH_micro.json"
    echo "baseline rewritten; review and commit it"
  fi
}

if [[ "$bench_mode" == 1 ]]; then
  run_bench
  exit 0
fi

run_format() {
  step "clang-format (dry run)"
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not found; skipping format check"
    return 0
  fi
  find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/tests" "$ROOT/examples" \
    \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
    xargs -0 clang-format --dry-run --Werror
  echo "format clean"
}

if [[ "$format_mode" == 1 ]]; then
  run_format
  exit 0
fi

# Probe whether a sanitizer actually links and runs in this toolchain/container.
sanitizer_works() {
  local flag="$1" tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  echo 'int main() { return 0; }' > "$tmp/probe.cpp"
  c++ "$flag" -o "$tmp/probe" "$tmp/probe.cpp" >/dev/null 2>&1 &&
    "$tmp/probe" >/dev/null 2>&1
}

if [[ "$main_gate" == 1 ]]; then
  step "configure (LTEFP_WERROR=ON LTEFP_LINT=ON)"
  cmake -B "$ROOT/build-check" -S "$ROOT" -DLTEFP_WERROR=ON -DLTEFP_LINT=ON

  step "build (warnings are errors; lint runs as a build step)"
  cmake --build "$ROOT/build-check" -j"$JOBS"

  step "ltefp-lint"
  "$ROOT/build-check/tools/lint/ltefp-lint" --root "$ROOT" src tools bench tests

  step "tier-1 tests"
  ctest --test-dir "$ROOT/build-check" -j"$JOBS" --output-on-failure
fi

if [[ "$sanitizers" == 1 ]]; then
  if sanitizer_works -fsanitize=address; then
    step "ASan+UBSan decoder suites"
    cmake -B "$ROOT/build-asan" -S "$ROOT" -DLTEFP_SANITIZE=address >/dev/null
    cmake --build "$ROOT/build-asan" -j"$JOBS"
    ctest --test-dir "$ROOT/build-asan" -j"$JOBS" --output-on-failure \
      -R 'TraceStore|Trace|Sniffer|Csv'
  else
    echo "ASan unavailable in this toolchain; skipping"
  fi
  if sanitizer_works -fsanitize=thread; then
    step "TSan parallel/attack suites"
    cmake -B "$ROOT/build-tsan" -S "$ROOT" -DLTEFP_SANITIZE=thread >/dev/null
    cmake --build "$ROOT/build-tsan" -j"$JOBS"
    LTEFP_THREADS=4 ctest --test-dir "$ROOT/build-tsan" -j"$JOBS" --output-on-failure \
      -R 'Parallel|BitIdentity|Attack|Stream|Spsc'
  else
    echo "TSan unavailable in this toolchain; skipping"
  fi
fi

step "all checks passed"
