#!/usr/bin/env bash
# tools/check.sh — the one-command gate for this repo.
#
# Runs, in order, each as a named step that fails the whole script:
#   1. configure + build with LTEFP_WERROR=ON (warnings are errors) and
#      LTEFP_LINT=ON (ltefp-lint runs as part of the build)
#   2. ltefp-lint over src/ tools/ bench/ tests/ (explicit, for a clear log)
#   3. the tier-1 ctest suite
#   4. when the compiler supports them: the ASan+UBSan decoder suites and
#      the TSan parallel/attack suites (skip with --no-sanitizers)
#
# Modes:
#   tools/check.sh              full gate
#   tools/check.sh --format     clang-format --dry-run --Werror only (no-op
#                               with a notice if clang-format is missing)
#   tools/check.sh --no-sanitizers    skip step 4
#   tools/check.sh --sanitizers-only  only step 4 (CI runs 1-3 as its own
#                                     named steps)
#
# Exits non-zero on the first failing step.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

step() { printf '\n=== %s ===\n' "$*"; }

format_mode=0
sanitizers=1
main_gate=1
for arg in "$@"; do
  case "$arg" in
    --format) format_mode=1 ;;
    --no-sanitizers) sanitizers=0 ;;
    --sanitizers-only) main_gate=0 ;;
    *)
      echo "usage: tools/check.sh [--format] [--no-sanitizers] [--sanitizers-only]" >&2
      exit 2
      ;;
  esac
done

run_format() {
  step "clang-format (dry run)"
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not found; skipping format check"
    return 0
  fi
  find "$ROOT/src" "$ROOT/tools" "$ROOT/bench" "$ROOT/tests" "$ROOT/examples" \
    \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
    xargs -0 clang-format --dry-run --Werror
  echo "format clean"
}

if [[ "$format_mode" == 1 ]]; then
  run_format
  exit 0
fi

# Probe whether a sanitizer actually links and runs in this toolchain/container.
sanitizer_works() {
  local flag="$1" tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  echo 'int main() { return 0; }' > "$tmp/probe.cpp"
  c++ "$flag" -o "$tmp/probe" "$tmp/probe.cpp" >/dev/null 2>&1 &&
    "$tmp/probe" >/dev/null 2>&1
}

if [[ "$main_gate" == 1 ]]; then
  step "configure (LTEFP_WERROR=ON LTEFP_LINT=ON)"
  cmake -B "$ROOT/build-check" -S "$ROOT" -DLTEFP_WERROR=ON -DLTEFP_LINT=ON

  step "build (warnings are errors; lint runs as a build step)"
  cmake --build "$ROOT/build-check" -j"$JOBS"

  step "ltefp-lint"
  "$ROOT/build-check/tools/lint/ltefp-lint" --root "$ROOT" src tools bench tests

  step "tier-1 tests"
  ctest --test-dir "$ROOT/build-check" -j"$JOBS" --output-on-failure
fi

if [[ "$sanitizers" == 1 ]]; then
  if sanitizer_works -fsanitize=address; then
    step "ASan+UBSan decoder suites"
    cmake -B "$ROOT/build-asan" -S "$ROOT" -DLTEFP_SANITIZE=address >/dev/null
    cmake --build "$ROOT/build-asan" -j"$JOBS"
    ctest --test-dir "$ROOT/build-asan" -j"$JOBS" --output-on-failure \
      -R 'TraceStore|Trace|Sniffer|Csv'
  else
    echo "ASan unavailable in this toolchain; skipping"
  fi
  if sanitizer_works -fsanitize=thread; then
    step "TSan parallel/attack suites"
    cmake -B "$ROOT/build-tsan" -S "$ROOT" -DLTEFP_SANITIZE=thread >/dev/null
    cmake --build "$ROOT/build-tsan" -j"$JOBS"
    LTEFP_THREADS=4 ctest --test-dir "$ROOT/build-tsan" -j"$JOBS" --output-on-failure \
      -R 'Parallel|BitIdentity|Attack'
  else
    echo "TSan unavailable in this toolchain; skipping"
  fi
fi

step "all checks passed"
