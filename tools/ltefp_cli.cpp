// ltefp — command-line front end to the attack framework.
//
// Subcommands:
//   collect   capture one app session's PDCCH trace to CSV
//   record    capture a full training corpus to a binary tracestore dir
//   replay    run the fingerprinting experiment from a recorded corpus
//             (--speed N switches to a rate-controlled load generator)
//   stream    online classification: replay a corpus through the streaming
//             daemon, emitting a live verdict CSV
//   inspect   summarise a corpus manifest or verify one .ltt trace file
//   train     build a labeled dataset and train + save the RF model
//   classify  identify the app behind a captured trace CSV
//   history   run the multi-zone history attack end to end
//   correlate score a paired-vs-independent session for two users
//   info      print operator profiles and app catalogue
//
// Examples:
//   ltefp collect --app YouTube --operator T-Mobile --minutes 2 --out yt.csv
//   ltefp record --operator Lab --traces 3 --minutes 2 --out corpus/
//   ltefp replay --corpus corpus/
//   ltefp stream --corpus corpus/ --model model.rf --speed 100 --latency-report true
//   ltefp inspect --corpus corpus/
//   ltefp train --operator Lab --out model.rf
//   ltefp classify --model model.rf --trace yt.csv
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "attacks/collect.hpp"
#include "common/parallel.hpp"
#include "lte/operator_profile.hpp"
#include "attacks/correlation.hpp"
#include "attacks/history.hpp"
#include "attacks/pipeline.hpp"
#include "attacks/replay.hpp"
#include "common/table.hpp"
#include "ml/serialize.hpp"
#include "stream/daemon.hpp"
#include "tracestore/corpus.hpp"
#include "tracestore/reader.hpp"

#include <algorithm>

using namespace ltefp;

namespace {

/// Minimal flag parser: --name value pairs after the subcommand.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::runtime_error(std::string("expected --flag, got ") + argv[i]);
      }
      values_.emplace_back(argv[i] + 2, argv[i + 1]);
    }
  }

  std::optional<std::string> get(const std::string& name) const {
    for (const auto& [key, value] : values_) {
      if (key == name) return value;
    }
    return std::nullopt;
  }
  std::string get_or(const std::string& name, const std::string& fallback) const {
    return get(name).value_or(fallback);
  }
  double number(const std::string& name, double fallback) const {
    const auto v = get(name);
    if (!v) return fallback;
    double parsed = 0.0;
    const char* end = v->data() + v->size();
    const auto [ptr, ec] = std::from_chars(v->data(), end, parsed);
    if (ec != std::errc{} || ptr != end) {
      throw std::runtime_error("--" + name + ": expected a number, got '" + *v + "'");
    }
    return parsed;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

lte::Operator parse_operator(const std::string& name) {
  for (const lte::Operator op : {lte::Operator::kLab, lte::Operator::kVerizon,
                                 lte::Operator::kAtt, lte::Operator::kTmobile}) {
    if (name == lte::to_string(op)) return op;
  }
  throw std::runtime_error("unknown operator '" + name +
                           "' (use Lab, Verizon, AT&T, or T-Mobile)");
}

apps::AppId parse_app(const std::string& name) {
  const auto app = apps::app_from_string(name);
  if (!app) throw std::runtime_error("unknown app '" + name + "' (see `ltefp info`)");
  return *app;
}

int cmd_collect(const Args& args) {
  attacks::CollectConfig config;
  config.op = parse_operator(args.get_or("operator", "Lab"));
  config.duration = minutes(args.number("minutes", 2.0));
  config.seed = static_cast<std::uint64_t>(args.number("seed", 1.0));
  const apps::AppId app = parse_app(args.get_or("app", "YouTube"));

  std::fprintf(stderr, "collecting %s on %s for %.1f min...\n", apps::to_string(app),
               lte::to_string(config.op), static_cast<double>(config.duration) / 60000.0);
  const attacks::CollectedTrace capture = attacks::collect_trace(app, config);

  const std::string out_path = args.get_or("out", "trace.csv");
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  sniffer::write_csv(out, capture.trace);
  std::fprintf(stderr, "wrote %zu records (%zu RNTIs) to %s\n", capture.trace.size(),
               capture.rnti_count, out_path.c_str());
  return 0;
}

int cmd_record(const Args& args) {
  attacks::PipelineConfig config;
  config.op = parse_operator(args.get_or("operator", "Lab"));
  config.traces_per_app = static_cast<int>(args.number("traces", 2));
  config.trace_duration = minutes(args.number("minutes", 1.5));
  config.seed = static_cast<std::uint64_t>(args.number("seed", 42));
  config.day = static_cast<int>(args.number("day", 0));
  const std::string dir = args.get_or("out", "corpus");

  std::fprintf(stderr, "recording %d traces/app x %d apps on %s to %s...\n",
               config.traces_per_app, apps::kNumApps, lte::to_string(config.op), dir.c_str());
  const attacks::RecordResult result = attacks::record_corpus(config, dir);
  std::fprintf(stderr, "wrote %zu traces, %zu records, %zu bytes (CSV equivalent %zu bytes, "
               "ratio %.2fx smaller)\n",
               result.traces, result.records, result.corpus_bytes, result.csv_bytes,
               result.corpus_bytes > 0
                   ? static_cast<double>(result.csv_bytes) / static_cast<double>(result.corpus_bytes)
                   : 0.0);
  return 0;
}

/// Parses --speed: a positive sim-time-per-wall-time multiplier (absent: 0,
/// meaning unpaced / feature off).
double parse_speed(const Args& args) {
  if (!args.get("speed")) return 0.0;
  const double speed = args.number("speed", 0.0);
  if (speed <= 0.0) {
    throw std::runtime_error("--speed: expected a positive multiplier");
  }
  return speed;
}

/// A wall-clock pacer: sleeps so sim time advances at `speed` x real time.
/// Lives in the CLI because clocks are lint-banned in src/ — the daemon
/// only ever sees this as an opaque callback.
std::function<void(TimeMs)> make_pacer(double speed) {
  const auto start = std::chrono::steady_clock::now();
  return [start, speed](TimeMs sim) {
    const auto target =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        static_cast<double>(sim) / speed));
    std::this_thread::sleep_until(target);
  };
}

/// Load generator: streams the corpus record-by-record at the requested
/// speed, reporting achieved throughput — for exercising downstream
/// consumers and sizing real-time budgets without classification cost.
int replay_load_generator(const std::string& dir, double speed) {
  stream::ReplaySource source(dir, speed);
  const auto pacer = make_pacer(speed);
  const auto wall_start = std::chrono::steady_clock::now();
  stream::StreamRecord rec;
  std::size_t records = 0;
  TimeMs next_tick = stream::kSubframeBatchMs;
  TimeMs last_time = 0;
  while (source.next(rec)) {
    if (rec.record.time >= next_tick) {
      pacer(rec.record.time);
      next_tick = (rec.record.time / stream::kSubframeBatchMs + 1) * stream::kSubframeBatchMs;
    }
    last_time = rec.record.time;
    ++records;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::printf("load generator: %zu records over %s sim at %.0fx -> %.2fs wall, %.0f records/s\n",
              records, format_hms(last_time).c_str(), speed, wall_s,
              wall_s > 0 ? static_cast<double>(records) / wall_s : 0.0);
  return 0;
}

int cmd_replay(const Args& args) {
  attacks::PipelineConfig config;
  config.replay_corpus = args.get_or("corpus", "corpus");
  config.seed = static_cast<std::uint64_t>(args.number("seed", 42));
  if (!tracestore::Corpus::exists(config.replay_corpus)) {
    throw std::runtime_error("no corpus manifest in " + config.replay_corpus +
                             " (run `ltefp record` first)");
  }
  if (const double speed = parse_speed(args); speed > 0.0) {
    return replay_load_generator(config.replay_corpus, speed);
  }
  std::fprintf(stderr, "replaying corpus %s through the fingerprinting pipeline...\n",
               config.replay_corpus.c_str());
  const auto scores = attacks::run_fingerprint_experiment(config);
  TextTable table({"Category", "Mobile App", "F-score", "Precision", "Recall"});
  for (const auto& s : scores) {
    table.add_row({apps::to_string(apps::category_of(s.app)), apps::to_string(s.app),
                   fmt(s.f_score), fmt(s.precision), fmt(s.recall)});
  }
  std::printf("%s", table.render("Replay classification (corpus-backed)").c_str());
  return 0;
}

int cmd_stream(const Args& args) {
  const std::string dir = args.get_or("corpus", "corpus");
  if (!tracestore::Corpus::exists(dir)) {
    throw std::runtime_error("no corpus manifest in " + dir + " (run `ltefp record` first)");
  }
  const std::string model_path = args.get_or("model", "model.rf");
  std::ifstream model_in(model_path);
  if (!model_in) throw std::runtime_error("cannot read " + model_path);
  const ml::RandomForest forest = ml::load_forest(model_in);

  stream::StreamConfig config;
  config.window.window_ms = static_cast<TimeMs>(args.number("window-ms", 100));
  config.batch_ms = static_cast<TimeMs>(args.number("batch-ms",
                                                    static_cast<double>(stream::kSubframeBatchMs)));
  config.workers = static_cast<int>(args.number("workers", 0));  // 0: --threads / pool size
  config.emit_window_verdicts = args.get_or("window-verdicts", "true") == "true";
  const double speed = parse_speed(args);
  if (speed > 0.0) config.pacer = make_pacer(speed);

  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (const auto out_path = args.get("out")) {
    out_file.open(*out_path);
    if (!out_file) throw std::runtime_error("cannot write " + *out_path);
    out = &out_file;
  }

  stream::ReplaySource source(dir, speed);
  std::fprintf(stderr, "streaming %zu lanes from %s (%s, batch %lld ms)...\n", source.lanes(),
               dir.c_str(), speed > 0 ? "paced" : "unpaced",
               static_cast<long long>(config.batch_ms));
  stream::CsvSink sink(*out);
  stream::StreamDaemon daemon(forest, config);
  const auto wall_start = std::chrono::steady_clock::now();
  const stream::StreamStats stats = daemon.run(source, sink);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  std::fprintf(stderr,
               "%zu records -> %zu sessions, %zu interim + %zu final verdicts in %zu batches "
               "(%.2fs wall, %.0f records/s)\n",
               stats.records, stats.sessions, stats.window_verdicts, stats.final_verdicts,
               stats.batches, wall_s,
               wall_s > 0 ? static_cast<double>(stats.records) / wall_s : 0.0);
  if (args.get_or("latency-report", "false") == "true") {
    std::fprintf(stderr, "decision latency (sim ms): p50<=%.0f p95<=%.0f p99<=%.0f max=%.0f\n",
                 stats.latency.p50(), stats.latency.p95(), stats.latency.p99(),
                 stats.latency.max());
    std::string depths;
    for (std::size_t i = 0; i < stats.queue_high_water.size(); ++i) {
      depths += (i ? " " : "") + std::to_string(stats.queue_high_water[i]);
    }
    std::fprintf(stderr, "queue high-water marks (capacity %zu): %s\n", config.queue_capacity,
                 depths.c_str());
    const bool ok = stats.latency.p99() < static_cast<double>(config.batch_ms);
    std::fprintf(stderr, "acceptance: p99 %.0f ms %s one subframe batch (%lld ms)\n",
                 stats.latency.p99(), ok ? "<" : ">=",
                 static_cast<long long>(config.batch_ms));
  }
  return 0;
}

int cmd_inspect(const Args& args) {
  if (const auto trace_path = args.get("trace")) {
    std::ifstream in(*trace_path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot read " + *trace_path);
    tracestore::Reader reader(in);
    const tracestore::TraceMeta& meta = reader.meta();
    const sniffer::Trace trace = reader.read_all();  // full CRC/framing validation
    std::printf("%s: OK\n", trace_path->c_str());
    std::printf("  app=%u (%s) operator=%s day=%d seed=%llu cell=%u\n", meta.app,
                meta.label.c_str(), lte::to_string(meta.op), meta.day,
                static_cast<unsigned long long>(meta.seed), meta.cell);
    std::printf("  session_start=%s records=%zu total_bytes=%lld span=%s\n",
                format_hms(meta.session_start).c_str(), trace.size(), sniffer::total_bytes(trace),
                trace.empty() ? "0:00:00"
                              : format_hms(trace.back().time - trace.front().time).c_str());
    return 0;
  }

  const std::string dir = args.get_or("corpus", "corpus");
  const tracestore::Corpus corpus = tracestore::Corpus::open(dir);
  TextTable table({"Seq", "File", "App", "Operator", "Day", "Records", "Bytes", "Start"});
  std::size_t records = 0, bytes = 0;
  for (const auto& e : corpus.entries()) {
    table.add_row({std::to_string(e.seq), e.file, e.meta.label, lte::to_string(e.meta.op),
                   std::to_string(e.meta.day), std::to_string(e.records),
                   std::to_string(e.bytes), format_hms(e.meta.session_start)});
    records += e.records;
    bytes += e.bytes;
  }
  std::printf("%s", table.render("Corpus " + dir).c_str());
  std::printf("%zu traces, %zu records, %zu bytes\n", corpus.entries().size(), records, bytes);
  if (args.get_or("verify", "false") == "true") {
    for (const auto& e : corpus.entries()) corpus.load(e);  // throws on corruption
    std::printf("integrity: all %zu trace files verified\n", corpus.entries().size());
  }
  return 0;
}

int cmd_train(const Args& args) {
  attacks::PipelineConfig config;
  config.op = parse_operator(args.get_or("operator", "Lab"));
  config.traces_per_app = static_cast<int>(args.number("traces", 2));
  config.trace_duration = minutes(args.number("minutes", 1.5));
  config.seed = static_cast<std::uint64_t>(args.number("seed", 42));

  std::fprintf(stderr, "building dataset (%d traces/app x %d apps on %s)...\n",
               config.traces_per_app, apps::kNumApps, lte::to_string(config.op));
  const features::Dataset data = attacks::build_dataset(config);
  std::fprintf(stderr, "training flat RF on %zu windows...\n", data.size());
  // The CLI persists a flat 9-way forest (the hierarchical wrapper is an
  // in-process optimisation; the flat model serialises to one file).
  ml::RandomForest forest;
  forest.fit(data);

  const std::string out_path = args.get_or("out", "model.rf");
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  ml::save_forest(out, forest);
  std::fprintf(stderr, "saved model to %s\n", out_path.c_str());
  return 0;
}

int cmd_classify(const Args& args) {
  const std::string model_path = args.get_or("model", "model.rf");
  std::ifstream model_in(model_path);
  if (!model_in) throw std::runtime_error("cannot read " + model_path);
  const ml::RandomForest forest = ml::load_forest(model_in);

  const std::string trace_path = args.get_or("trace", "trace.csv");
  std::ifstream trace_in(trace_path);
  if (!trace_in) throw std::runtime_error("cannot read " + trace_path);
  std::stringstream buffer;
  buffer << trace_in.rdbuf();
  const sniffer::Trace trace = sniffer::read_csv(buffer.str());
  if (trace.empty()) throw std::runtime_error("trace is empty");

  features::WindowConfig window;
  window.window_ms = static_cast<TimeMs>(args.number("window-ms", 100));
  const auto windows = features::extract_windows(trace, trace.front().time, window);

  std::vector<std::size_t> votes(apps::kNumApps, 0);
  for (const auto& w : windows) ++votes[static_cast<std::size_t>(forest.predict(w))];
  const auto winner = static_cast<std::size_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
  const auto app = static_cast<apps::AppId>(winner);
  std::printf("%s (%s), %zu/%zu window votes\n", apps::to_string(app),
              apps::to_string(apps::category_of(app)), votes[winner], windows.size());
  return 0;
}

int cmd_history(const Args& args) {
  attacks::PipelineConfig pipe_config;
  pipe_config.op = parse_operator(args.get_or("operator", "T-Mobile"));
  pipe_config.traces_per_app = 2;
  pipe_config.trace_duration = minutes(args.number("train-minutes", 1.5));
  pipe_config.seed = static_cast<std::uint64_t>(args.number("seed", 7));
  std::fprintf(stderr, "training pipeline on %s...\n", lte::to_string(pipe_config.op));
  attacks::FingerprintPipeline pipeline(pipe_config);
  pipeline.train(attacks::build_dataset(pipe_config));

  attacks::HistoryConfig config;
  config.op = pipe_config.op;
  config.seed = pipe_config.seed + 1;
  config.itinerary = attacks::HistoryAttack::default_itinerary(config.seed);
  const TimeMs visit = minutes(args.number("visit-minutes", 1.5));
  for (auto& v : config.itinerary) v.duration = visit;

  const attacks::HistoryResult result = attacks::HistoryAttack(pipeline).run(config);
  TextTable table({"Zone", "Start", "Category", "Prediction", "Truth", "Hit"});
  for (const auto& obs : result.observations) {
    table.add_row({std::string(1, static_cast<char>('A' + obs.zone)), format_hms(obs.start),
                   apps::to_string(obs.predicted_category), apps::to_string(obs.predicted_app),
                   apps::to_string(obs.true_app), obs.correct ? "TRUE" : "FALSE"});
  }
  std::printf("%s", table.render("History attack").c_str());
  std::printf("success rate: %s\n", fmt_pct(result.success_rate).c_str());
  return 0;
}

int cmd_correlate(const Args& args) {
  attacks::CorrelationConfig config;
  config.op = parse_operator(args.get_or("operator", "Lab"));
  config.duration = minutes(args.number("minutes", 1.5));
  config.seed = static_cast<std::uint64_t>(args.number("seed", 11));
  const apps::AppId app = parse_app(args.get_or("app", "WhatsApp"));
  const bool paired = args.get_or("paired", "true") == "true";

  const attacks::PairObservation obs = attacks::run_pair_session(app, paired, config);
  std::printf("app=%s world=%s similarity=%.3f features=[%.3f %.3f %.3f %.3f]\n",
              apps::to_string(app), paired ? "in-contact" : "independent", obs.similarity,
              obs.features[0], obs.features[1], obs.features[2], obs.features[3]);
  return 0;
}

int cmd_info(const Args&) {
  TextTable apps_table({"App", "Category"});
  for (const apps::AppId app : apps::kAllApps) {
    apps_table.add_row({apps::to_string(app), apps::to_string(apps::category_of(app))});
  }
  std::printf("%s", apps_table.render("App catalogue").c_str());

  TextTable op_table({"Operator", "PRBs", "Scheduler", "Load (UEs)", "Miss rate", "BLER"});
  for (const lte::Operator op : {lte::Operator::kLab, lte::Operator::kVerizon,
                                 lte::Operator::kAtt, lte::Operator::kTmobile}) {
    const lte::OperatorProfile p = lte::operator_profile(op);
    op_table.add_row({lte::to_string(op), std::to_string(lte::prb_count(p.bandwidth)),
                      p.scheduler == lte::SchedulerKind::kProportionalFair ? "PF" : "RR",
                      std::to_string(p.background_ues), fmt(p.sniffer_miss_rate),
                      fmt(p.harq_bler)});
  }
  std::printf("%s", op_table.render("Operator profiles").c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: ltefp "
               "<collect|record|replay|stream|inspect|train|classify|history|correlate|info>"
               " [--threads N] [--flag value]...\n"
               "  --threads N  worker threads for collection/training/replay/stream\n"
               "               (default: LTEFP_THREADS env var, else hardware; results\n"
               "               are bit-identical at any thread count)\n"
               "  collect   --app A --operator O --minutes M --seed S --out F\n"
               "  record    --operator O --traces N --minutes M --seed S --day D --out DIR\n"
               "  replay    --corpus DIR [--seed S] [--speed N  (load generator)]\n"
               "  stream    --corpus DIR --model F [--speed N] [--batch-ms B] [--out F]\n"
               "            [--latency-report true] [--window-verdicts false]\n"
               "  inspect   --corpus DIR [--verify true] | --trace F.ltt\n"
               "  train     --operator O --traces N --minutes M --seed S --out F\n"
               "  classify  --model F --trace F [--window-ms W]\n"
               "  history   --operator O [--train-minutes M] [--visit-minutes M] [--seed S]\n"
               "  correlate --app A --operator O --paired true|false [--minutes M] [--seed S]\n"
               "  info\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (const auto threads = args.get("threads")) {
      int n = 0;
      const char* end = threads->data() + threads->size();
      const auto [ptr, ec] = std::from_chars(threads->data(), end, n);
      if (ec != std::errc{} || ptr != end) {
        throw std::runtime_error("--threads: expected an integer, got '" + *threads + "'");
      }
      set_thread_count(n);
    }
    if (command == "collect") return cmd_collect(args);
    if (command == "record") return cmd_record(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "stream") return cmd_stream(args);
    if (command == "inspect") return cmd_inspect(args);
    if (command == "train") return cmd_train(args);
    if (command == "classify") return cmd_classify(args);
    if (command == "history") return cmd_history(args);
    if (command == "correlate") return cmd_correlate(args);
    if (command == "info") return cmd_info(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ltefp %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
