// Tokenizer for ltefp-lint. Hand-rolled, tolerant, zero dependencies: it
// only needs to be faithful enough to tell code from comments, strings,
// and preprocessor lines, and to keep line numbers exact.
#include "lint.hpp"

#include <cctype>
#include <string>

namespace ltefp::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators we must not split: `::` vs `:` matters for
// range-for detection, `==`/`!=` for float-eq, `->` for member calls.
// Longest match first.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", ".*",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        out.push_back(line_comment());
      } else if (c == '/' && peek(1) == '*') {
        out.push_back(block_comment());
      } else if (c == '#' && line_start_) {
        out.push_back(preproc_line());
      } else if (ident_start(c)) {
        out.push_back(ident_or_prefixed_string());
      } else if (digit(c) || (c == '.' && digit(peek(1)))) {
        out.push_back(number());
      } else if (c == '"') {
        out.push_back(string_lit(pos_));
      } else if (c == '\'') {
        out.push_back(char_lit());
      } else {
        out.push_back(punct());
      }
      line_start_ = false;
    }
    return out;
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  Token make(TokKind kind, std::size_t begin, int start_line) {
    return Token{kind, std::string(src_.substr(begin, pos_ - begin)), start_line, false};
  }

  Token line_comment() {
    const std::size_t begin = pos_;
    const int start = line_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    return make(TokKind::kComment, begin, start);
  }

  Token block_comment() {
    const std::size_t begin = pos_;
    const int start = line_;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    return make(TokKind::kComment, begin, start);
  }

  // One logical preprocessor line: backslash continuations are folded into
  // the token, embedded /* */ comments tolerated on the same line.
  Token preproc_line() {
    const std::size_t begin = pos_;
    const int start = line_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') break;
      ++pos_;
    }
    return make(TokKind::kPreproc, begin, start);
  }

  Token ident_or_prefixed_string() {
    const std::size_t begin = pos_;
    const int start = line_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
    const std::string_view name = src_.substr(begin, pos_ - begin);
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (name == "R" || name == "u8R" || name == "uR" || name == "UR" || name == "LR") {
        return raw_string(begin, start);
      }
      if (name == "u8" || name == "u" || name == "U" || name == "L") {
        return string_lit(begin, start);
      }
    }
    return make(TokKind::kIdent, begin, start);
  }

  Token string_lit(std::size_t begin, int start_line = -1) {
    const int start = start_line < 0 ? line_ : start_line;
    ++pos_;  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        if (peek(1) == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '"') break;
      if (c == '\n') ++line_;  // unterminated; keep line count honest
    }
    return make(TokKind::kString, begin, start);
  }

  Token raw_string(std::size_t begin, int start) {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    return make(TokKind::kString, begin, start);
  }

  Token char_lit() {
    const std::size_t begin = pos_;
    const int start = line_;
    ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      ++pos_;
      if (c == '\'' || c == '\n') break;
    }
    return make(TokKind::kChar, begin, start);
  }

  // pp-number: digits, letters, '.', digit separators, and exponent signs.
  Token number() {
    const std::size_t begin = pos_;
    const int start = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    Token t = make(TokKind::kNumber, begin, start);
    t.is_float = is_float_literal(t.text);
    return t;
  }

  Token punct() {
    const std::size_t begin = pos_;
    const int start = line_;
    for (const std::string_view op : kPuncts) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        pos_ += op.size();
        return make(TokKind::kPunct, begin, start);
      }
    }
    ++pos_;
    return make(TokKind::kPunct, begin, start);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool line_start_ = true;
};

}  // namespace

bool is_float_literal(std::string_view text) {
  if (text.empty()) return false;
  const bool hex = text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X');
  for (std::size_t i = hex ? 2 : 0; i < text.size(); ++i) {
    const char c = text[i];
    if (hex) {
      if (c == 'p' || c == 'P') return true;  // hex floats require an exponent
    } else {
      if (c == '.' || c == 'e' || c == 'E') return true;
    }
  }
  return false;
}

std::vector<Token> lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace ltefp::lint
