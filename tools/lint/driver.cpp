// Driver: wires the lexer, rules, config, suppression scanning, and the
// directory walker into the `ltefp-lint` command-line interface.
#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

namespace ltefp::lint {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kAllowMarker = "lint:allow(";

bool header_path(std::string_view path) {
  return path.ends_with(".h") || path.ends_with(".hpp") || path.ends_with(".hh") ||
         path.ends_with(".hxx");
}

bool lintable_path(std::string_view path) {
  return header_path(path) || path.ends_with(".cpp") || path.ends_with(".cc") ||
         path.ends_with(".cxx");
}

/// Parsed `lint:allow(float-eq, determinism)` directives: line -> rule ids
/// allowed there.
/// A comment with nothing but the directive on its own line also covers the
/// next line, so suppressions can sit above long statements.
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> bad;  // malformed or unknown-rule directives

  bool covers(int line, const std::string& rule) const {
    const auto it = by_line.find(line);
    return it != by_line.end() && it->second.count(rule) > 0;
  }
};

Suppressions scan_suppressions(const std::vector<Token>& tokens) {
  Suppressions sup;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kComment) continue;
    const std::size_t at = t.text.find(kAllowMarker);
    if (at == std::string::npos) continue;
    const std::size_t open = at + kAllowMarker.size() - 1;
    const std::size_t close = t.text.find(')', open);
    std::vector<std::string> ids;
    if (close != std::string::npos) {
      std::string id;
      for (std::size_t j = open + 1; j <= close; ++j) {
        const char c = t.text[j];
        if (c == ',' || c == ')' || c == ' ' || c == '\t') {
          if (!id.empty()) ids.push_back(id);
          id.clear();
        } else {
          id += c;
        }
      }
    }
    const auto bad_directive = [&](const std::string& why) {
      Finding f;
      f.line = t.line;
      f.rule = "bad-suppression";
      f.message = why;
      sup.bad.push_back(std::move(f));
    };
    if (close == std::string::npos) {
      bad_directive("malformed lint:allow directive: missing ')'");
      continue;
    }
    if (ids.empty()) {
      bad_directive("lint:allow must name at least one rule-id");
      continue;
    }
    bool ok = true;
    for (const std::string& id : ids) {
      if (find_rule(id) == nullptr) {
        bad_directive("lint:allow names unknown rule '" + id + "'");
        ok = false;
      }
    }
    if (!ok) continue;
    // Standalone comment (first token on its line) also covers the next line.
    const bool standalone = i == 0 || tokens[i - 1].line != t.line;
    for (const std::string& id : ids) {
      sup.by_line[t.line].insert(id);
      if (standalone) sup.by_line[t.line + 1].insert(id);
    }
  }
  return sup;
}

bool read_file(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string to_rel(const fs::path& p) {
  std::string s = p.generic_string();
  if (s.starts_with("./")) s.erase(0, 2);
  return s;
}

bool ignored(const fs::path& rel, const Config& config) {
  const std::string rel_s = to_rel(rel);
  const std::string name = rel.filename().generic_string();
  for (const std::string& pat : config.ignore) {
    if (glob_match(pat, name) || glob_match(pat, rel_s)) return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> lint_source(std::string_view rel_path, std::string_view text,
                                 const std::vector<std::string>& enabled,
                                 std::string_view sibling) {
  SourceFile file;
  file.path = std::string(rel_path);
  file.is_header = header_path(rel_path);
  file.tokens = lex(text);
  if (!sibling.empty()) file.sibling_decls = lex(sibling);

  const Suppressions sup = scan_suppressions(file.tokens);

  std::vector<Finding> raw;
  for (const std::string& id : enabled) {
    if (const Rule* rule = find_rule(id)) rule->check(file, raw);
  }
  std::vector<Finding> out;
  for (Finding& f : raw) {
    if (sup.covers(f.line, f.rule)) continue;
    f.file = file.path;
    out.push_back(std::move(f));
  }
  // A broken suppression is itself a finding: every allow must carry a
  // valid rule-id, or the audit trail rots.
  for (Finding f : sup.bad) {
    f.file = file.path;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return out;
}

bool collect_sources(const std::string& root, const std::vector<std::string>& paths,
                     const Config& config, std::vector<std::string>* out,
                     std::string* error) {
  out->clear();
  const fs::path root_p(root);
  for (const std::string& p : paths) {
    const fs::path abs = root_p / p;
    std::error_code ec;
    if (fs::is_regular_file(abs, ec)) {
      out->push_back(to_rel(p));
      continue;
    }
    if (!fs::is_directory(abs, ec)) {
      if (error) *error = "no such file or directory: " + p;
      return false;
    }
    std::vector<fs::path> stack = {fs::path(p)};
    while (!stack.empty()) {
      const fs::path dir = stack.back();
      stack.pop_back();
      for (const auto& entry : fs::directory_iterator(root_p / dir, ec)) {
        const fs::path rel = dir / entry.path().filename();
        if (ignored(rel, config)) continue;
        if (entry.is_directory()) {
          stack.push_back(rel);
        } else if (entry.is_regular_file() && lintable_path(rel.generic_string())) {
          out->push_back(to_rel(rel));
        }
      }
      if (ec) {
        if (error) *error = "cannot read directory: " + dir.generic_string();
        return false;
      }
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return true;
}

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  const auto usage = [&](std::ostream& os) {
    os << "usage: ltefp-lint [--config FILE] [--root DIR] [--quiet] "
          "[--list-rules] PATH...\n"
          "exit status: 0 clean, 1 findings, 2 usage/config error\n";
  };

  std::string root = ".";
  std::string config_path;
  bool quiet = false;
  bool list_rules = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string* dst) {
      if (i + 1 >= argc) {
        err << "ltefp-lint: " << arg << " needs a value\n";
        return false;
      }
      *dst = argv[++i];
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      usage(out);
      return 0;
    } else if (arg == "--root") {
      if (!value(&root)) return 2;
    } else if (arg == "--config") {
      if (!value(&config_path)) return 2;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.starts_with("-")) {
      err << "ltefp-lint: unknown option " << arg << "\n";
      usage(err);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  if (list_rules) {
    for (const Rule* rule : all_rules()) {
      out << rule->id() << ": " << rule->summary() << "\n";
    }
    return 0;
  }
  if (paths.empty()) {
    err << "ltefp-lint: no paths given\n";
    usage(err);
    return 2;
  }

  Config config;
  if (config_path.empty()) {
    const fs::path implicit = fs::path(root) / ".ltefp-lint.toml";
    std::error_code ec;
    if (fs::is_regular_file(implicit, ec)) config_path = implicit.string();
  }
  if (config_path.empty()) {
    config = default_config();
  } else {
    std::string text, parse_error;
    if (!read_file(config_path, &text)) {
      err << "ltefp-lint: cannot read config " << config_path << "\n";
      return 2;
    }
    if (!parse_config(text, &config, &parse_error)) {
      err << "ltefp-lint: " << config_path << ": " << parse_error << "\n";
      return 2;
    }
  }

  std::vector<std::string> files;
  std::string walk_error;
  if (!collect_sources(root, paths, config, &files, &walk_error)) {
    err << "ltefp-lint: " << walk_error << "\n";
    return 2;
  }

  std::size_t total = 0;
  std::size_t files_with_findings = 0;
  for (const std::string& rel : files) {
    std::string text;
    if (!read_file(fs::path(root) / rel, &text)) {
      err << "ltefp-lint: cannot read " << rel << "\n";
      return 2;
    }
    // Feed the sibling header so rules can see member declarations the
    // .cpp relies on (e.g. unordered members iterated by method bodies).
    std::string sibling;
    if (!header_path(rel)) {
      const std::size_t dot = rel.rfind('.');
      for (const char* ext : {".hpp", ".h", ".hh", ".hxx"}) {
        if (read_file(fs::path(root) / (rel.substr(0, dot) + ext), &sibling)) break;
      }
    }
    const std::vector<Finding> findings =
        lint_source(rel, text, rules_for(config, rel), sibling);
    if (!findings.empty()) ++files_with_findings;
    for (const Finding& f : findings) {
      ++total;
      out << f.file << ":" << f.line << ": " << f.rule << ": " << f.message << "\n";
    }
  }
  if (!quiet) {
    err << "ltefp-lint: " << files.size() << " files checked, " << total
        << " finding" << (total == 1 ? "" : "s");
    if (total > 0) err << " in " << files_with_findings << " files";
    err << "\n";
  }
  return total == 0 ? 0 : 1;
}

}  // namespace ltefp::lint
