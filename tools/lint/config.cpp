// .ltefp-lint.toml parsing — a strict, line-oriented TOML subset. Strings
// are double-quoted, arrays are single-line, sections are `[default]` or
// `[dir."path"]`, and anything unrecognized is a hard error so typos in the
// config cannot silently disable a rule.
#include "lint.hpp"

#include <algorithm>
#include <string>

namespace ltefp::lint {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Strips a trailing `# comment`, respecting double-quoted strings.
std::string_view strip_comment(std::string_view s) {
  bool quoted = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '"') quoted = !quoted;
    if (s[i] == '#' && !quoted) return s.substr(0, i);
  }
  return s;
}

bool parse_string(std::string_view v, std::string* out) {
  v = trim(v);
  if (v.size() < 2 || v.front() != '"' || v.back() != '"') return false;
  *out = std::string(v.substr(1, v.size() - 2));
  return out->find('"') == std::string::npos;
}

bool parse_array(std::string_view v, std::vector<std::string>* out) {
  v = trim(v);
  if (v.size() < 2 || v.front() != '[' || v.back() != ']') return false;
  v = trim(v.substr(1, v.size() - 2));
  out->clear();
  while (!v.empty()) {
    const std::size_t comma = [&] {
      bool quoted = false;
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] == '"') quoted = !quoted;
        if (v[i] == ',' && !quoted) return i;
      }
      return v.size();
    }();
    std::string item;
    if (!parse_string(v.substr(0, comma), &item)) return false;
    out->push_back(std::move(item));
    v = comma < v.size() ? trim(v.substr(comma + 1)) : std::string_view{};
  }
  return true;
}

}  // namespace

bool parse_config(std::string_view text, Config* out, std::string* error) {
  *out = Config{};
  enum class Section { kTop, kDefault, kDir };
  Section section = Section::kTop;
  DirOverride* dir = nullptr;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = trim(strip_comment(text.substr(pos, eol - pos)));
    pos = eol + 1;
    ++line_no;
    const auto fail = [&](const std::string& what) {
      if (error) *error = "line " + std::to_string(line_no) + ": " + what;
      return false;
    };
    if (line.empty()) {
      if (pos > text.size()) break;
      continue;
    }

    if (line.front() == '[') {
      if (line.back() != ']') return fail("unterminated section header");
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name == "default") {
        section = Section::kDefault;
        dir = nullptr;
      } else if (name.starts_with("dir.")) {
        std::string prefix;
        if (!parse_string(name.substr(4), &prefix) || prefix.empty()) {
          return fail("expected [dir.\"path\"]");
        }
        while (prefix.back() == '/') prefix.pop_back();
        out->dirs.push_back(DirOverride{});
        dir = &out->dirs.back();
        dir->prefix = prefix;
        section = Section::kDir;
      } else {
        return fail("unknown section [" + std::string(name) + "]");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) return fail("expected key = value");
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));

    std::vector<std::string> items;
    if (!parse_array(value, &items)) {
      return fail("value for '" + std::string(key) + "' must be an array of strings");
    }
    if (section == Section::kTop) {
      if (key == "ignore") {
        out->ignore = std::move(items);
      } else {
        return fail("unknown top-level key '" + std::string(key) + "'");
      }
    } else if (section == Section::kDefault) {
      if (key == "rules") {
        out->default_rules = std::move(items);
      } else {
        return fail("unknown key '" + std::string(key) + "' in [default]");
      }
    } else {
      if (key == "rules") {
        dir->rules = std::move(items);
        dir->replace = true;
      } else if (key == "enable") {
        dir->enable = std::move(items);
      } else if (key == "disable") {
        dir->disable = std::move(items);
      } else {
        return fail("unknown key '" + std::string(key) + "' in [dir]");
      }
    }
  }

  // Reject rule ids that do not exist: a typo must not silently pass.
  const auto check_ids = [&](const std::vector<std::string>& ids) {
    for (const std::string& id : ids) {
      if (find_rule(id) == nullptr) {
        if (error) *error = "unknown rule id '" + id + "'";
        return false;
      }
    }
    return true;
  };
  if (!check_ids(out->default_rules)) return false;
  for (const DirOverride& d : out->dirs) {
    if (!check_ids(d.rules) || !check_ids(d.enable) || !check_ids(d.disable)) {
      return false;
    }
  }
  return true;
}

Config default_config() {
  Config c;
  for (const Rule* rule : all_rules()) c.default_rules.push_back(rule->id());
  c.ignore = {"build*", ".git"};
  return c;
}

std::vector<std::string> rules_for(const Config& config, std::string_view rel_path) {
  std::vector<std::string> enabled = config.default_rules;
  // Shorter prefixes first, so deeper directories override shallower ones.
  std::vector<const DirOverride*> matches;
  for (const DirOverride& d : config.dirs) {
    const bool match = rel_path == d.prefix ||
                       (rel_path.size() > d.prefix.size() &&
                        rel_path.starts_with(d.prefix) &&
                        rel_path[d.prefix.size()] == '/');
    if (match) matches.push_back(&d);
  }
  std::sort(matches.begin(), matches.end(),
            [](const DirOverride* a, const DirOverride* b) {
              return a->prefix.size() < b->prefix.size();
            });
  for (const DirOverride* d : matches) {
    if (d->replace) enabled = d->rules;
    for (const std::string& id : d->enable) {
      if (std::find(enabled.begin(), enabled.end(), id) == enabled.end()) {
        enabled.push_back(id);
      }
    }
    for (const std::string& id : d->disable) {
      enabled.erase(std::remove(enabled.begin(), enabled.end(), id), enabled.end());
    }
  }
  return enabled;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with backtracking over the last `*`.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace ltefp::lint
