// The project-specific rules. All of them are lexical: they see the token
// stream of one file (plus declarations mined from its sibling header) and
// never resolve types. That keeps the linter dependency-free and fast; the
// price is documented heuristics rather than full semantic precision.
#include "lint.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <unordered_set>

namespace ltefp::lint {

namespace {

/// True for tokens rules should skip when looking at code structure.
bool non_code(const Token& t) {
  return t.kind == TokKind::kComment || t.kind == TokKind::kPreproc;
}

/// Index of the next code token at or after `i + 1`, or tokens.size().
std::size_t next_code(const std::vector<Token>& toks, std::size_t i) {
  for (++i; i < toks.size(); ++i) {
    if (!non_code(toks[i])) return i;
  }
  return toks.size();
}

/// Index of the previous code token strictly before `i`, or SIZE_MAX.
std::size_t prev_code(const std::vector<Token>& toks, std::size_t i) {
  while (i-- > 0) {
    if (!non_code(toks[i])) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// True when the code token before index `i` is `.` or `->` — i.e. the
/// identifier at `i` is a member access, not a free/std function.
bool member_access(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t p = prev_code(toks, i);
  if (p == static_cast<std::size_t>(-1)) return false;
  return is_punct(toks[p], ".") || is_punct(toks[p], "->");
}

/// True when the code token after identifier `i` opens a call.
bool called(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t n = next_code(toks, i);
  return n < toks.size() && is_punct(toks[n], "(");
}

void add(std::vector<Finding>& out, const Rule& rule, int line, std::string message) {
  Finding f;
  f.line = line;
  f.rule = rule.id();
  f.message = std::move(message);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// determinism

class DeterminismRule final : public Rule {
 public:
  const char* id() const override { return "determinism"; }
  const char* summary() const override {
    return "bans ambient randomness and wall clocks in library code; all "
           "randomness must flow through common/rng (ltefp::derive_seed)";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static const std::unordered_set<std::string_view> kBannedCalls = {
        "rand", "srand", "rand_r", "drand48", "random", "time", "clock",
        "gettimeofday", "clock_gettime", "timespec_get", "localtime", "gmtime",
    };
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "random_device") {
        add(out, *this, t.line,
            "'std::random_device' is nondeterministic; derive seeds with "
            "ltefp::derive_seed / common/rng instead");
        continue;
      }
      // steady_clock::now, system_clock::now, high_resolution_clock::now
      if (t.text.size() > 6 && t.text.ends_with("_clock")) {
        const std::size_t a = next_code(toks, i);
        const std::size_t b = a < toks.size() ? next_code(toks, a) : toks.size();
        if (b < toks.size() && is_punct(toks[a], "::") && is_ident(toks[b], "now")) {
          add(out, *this, t.line,
              "'" + t.text + "::now' reads the wall clock; deterministic library "
              "code must be clocked in simulated TimeMs");
          continue;
        }
      }
      if (kBannedCalls.count(t.text) > 0 && called(toks, i) && !member_access(toks, i)) {
        add(out, *this, t.line,
            "call to '" + t.text + "' is nondeterministic in library code; use "
            "common/rng for randomness and simulated TimeMs for time");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// ordered-iteration

class OrderedIterationRule final : public Rule {
 public:
  const char* id() const override { return "ordered-iteration"; }
  const char* summary() const override {
    return "flags range-for over std::unordered_{map,set}: iteration order is "
           "unspecified and breaks bit-identical reproduction; in src/ml/ also "
           "flags range-for over Dataset::samples, which belongs on the "
           "columnar features::DatasetMatrix";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    std::unordered_set<std::string> names;  // membership tests only, never iterated
    collect_unordered_names(file.sibling_decls, names);
    collect_unordered_names(file.tokens, names);

    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "for")) continue;
      std::size_t open = next_code(toks, i);
      if (open >= toks.size() || !is_punct(toks[open], "(")) continue;
      // Find the top-level `:` of a range-for and the closing paren.
      int depth = 1;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = next_code(toks, open); j < toks.size();
           j = next_code(toks, j)) {
        const Token& t = toks[j];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
          if (t.text == ")" || t.text == "]" || t.text == "}") {
            --depth;
            if (depth == 0) {
              close = j;
              break;
            }
          }
          if (t.text == ":" && depth == 1 && colon == 0) colon = j;
          if (t.text == ";" && depth == 1) break;  // classic for, not range-for
        }
      }
      if (colon == 0 || close == 0) continue;
      // The range expression: flag if it names a known unordered member or
      // mentions an unordered type directly.
      std::string expr;
      bool hit = false;
      bool samples_hit = false;
      for (std::size_t j = next_code(toks, colon); j < close; j = next_code(toks, j)) {
        if (!expr.empty() && toks[j].kind == TokKind::kIdent) expr += ' ';
        expr += toks[j].text;
        if (toks[j].kind == TokKind::kIdent &&
            (names.count(toks[j].text) > 0 ||
             toks[j].text.find("unordered_") != std::string::npos)) {
          hit = true;
        }
        if (toks[j].kind == TokKind::kIdent && toks[j].text == "samples") {
          samples_hit = true;
        }
      }
      if (hit) {
        add(out, *this, toks[i].line,
            "range-for over unordered container '" + expr +
                "': iteration order is unspecified; iterate a sorted copy or "
                "use an ordered container");
      } else if (samples_hit && file.path.starts_with("src/ml/")) {
        // ML hot paths are columnar: per-sample AoS walks re-gather every
        // feature and defeat the presorted trainer's cache layout.
        add(out, *this, toks[i].line,
            "range-for over AoS samples '" + expr +
                "' in an ML hot path: traverse the columnar "
                "features::DatasetMatrix (fit_rows/predict_rows) instead");
      }
    }
  }

 private:
  // Records variable/member names declared with an unordered container type:
  //   std::unordered_map<K, V> name;   const std::unordered_set<T>& name
  static void collect_unordered_names(const std::vector<Token>& toks,
                                      std::unordered_set<std::string>& names) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || !t.text.starts_with("unordered_")) continue;
      std::size_t j = next_code(toks, i);
      if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
      int depth = 0;
      for (; j < toks.size(); j = next_code(toks, j)) {
        if (is_punct(toks[j], "<")) ++depth;
        else if (is_punct(toks[j], ">")) --depth;
        else if (is_punct(toks[j], ">>")) depth -= 2;
        else if (is_punct(toks[j], ";")) break;
        if (depth <= 0) break;
      }
      if (j >= toks.size() || depth > 0) continue;
      j = next_code(toks, j);  // past the closing '>'
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_ident(toks[j], "const"))) {
        j = next_code(toks, j);
      }
      if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
      // `type name(` is a function declaration, not a variable.
      const std::size_t after = next_code(toks, j);
      if (after < toks.size() && is_punct(toks[after], "(")) continue;
      names.insert(toks[j].text);
    }
  }
};

// ---------------------------------------------------------------------------
// decoder-hardening

class DecoderHardeningRule final : public Rule {
 public:
  const char* id() const override { return "decoder-hardening"; }
  const char* summary() const override {
    return "bans atoi/strtol/stoi-family parsing of untrusted input; use "
           "std::from_chars with explicit error checks";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    static const std::unordered_set<std::string_view> kBanned = {
        "atoi",   "atol",   "atoll",   "atof",    "strtol", "strtoll",
        "strtoul", "strtoull", "strtod", "strtof", "strtold",
        "stoi",   "stol",   "stoll",   "stoul",   "stoull", "stof",
        "stod",   "stold",  "sscanf",  "scanf",   "fscanf",
    };
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || kBanned.count(t.text) == 0) continue;
      if (!called(toks, i) || member_access(toks, i)) continue;
      add(out, *this, t.line,
          "'" + t.text + "' parses without mandatory error handling; decode "
          "untrusted input with std::from_chars and check ec and the consumed "
          "range explicitly");
    }
  }
};

// ---------------------------------------------------------------------------
// header-hygiene

class HeaderHygieneRule final : public Rule {
 public:
  const char* id() const override { return "header-hygiene"; }
  const char* summary() const override {
    return "headers must start with #pragma once and must not contain "
           "`using namespace`";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    if (!file.is_header) return;
    const auto& toks = file.tokens;
    bool pragma_once = false;
    for (const Token& t : toks) {
      if (t.kind != TokKind::kPreproc) continue;
      std::string squeezed;
      for (const char c : t.text) {
        if (c != ' ' && c != '\t') squeezed += c;
      }
      if (squeezed == "#pragmaonce") {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      add(out, *this, 1, "header is missing '#pragma once'");
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_ident(toks[i], "using")) continue;
      const std::size_t n = next_code(toks, i);
      if (n < toks.size() && is_ident(toks[n], "namespace")) {
        add(out, *this, toks[i].line,
            "'using namespace' in a header leaks the namespace into every "
            "includer; qualify names instead");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// float-eq

class FloatEqRule final : public Rule {
 public:
  const char* id() const override { return "float-eq"; }
  const char* summary() const override {
    return "flags ==/!= against a floating-point literal; compare with an "
           "explicit tolerance or restructure the test";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kPunct || (t.text != "==" && t.text != "!=")) continue;
      const std::size_t p = prev_code(toks, i);
      bool hit = p != static_cast<std::size_t>(-1) &&
                 toks[p].kind == TokKind::kNumber && toks[p].is_float;
      // Look right, skipping grouping parens and unary sign.
      std::size_t n = next_code(toks, i);
      while (n < toks.size() && (is_punct(toks[n], "(") || is_punct(toks[n], "+") ||
                                 is_punct(toks[n], "-"))) {
        n = next_code(toks, n);
      }
      if (n < toks.size() && toks[n].kind == TokKind::kNumber && toks[n].is_float) {
        hit = true;
      }
      if (hit) {
        add(out, *this, t.line,
            "exact floating-point '" + t.text +
                "' comparison; use a tolerance, an ordering test, or integers");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// bounded-queues

// The streaming daemon's flow-control contract: every producer/consumer
// hand-off must be a bounded queue that pushes back when full (see
// common/spsc.hpp). An unbounded std:: FIFO in stream code silently
// converts overload into memory growth, which is exactly the failure mode
// the contract exists to prevent — so growable standard queues are banned
// where the contract applies, with `// lint:allow(bounded-queues)` as the
// reviewed escape hatch (e.g. a queue drained before each return).
class BoundedQueuesRule final : public Rule {
 public:
  const char* id() const override { return "bounded-queues"; }
  const char* summary() const override {
    return "flags unbounded std:: FIFOs (deque/queue/priority_queue) in "
           "stream code; use a bounded queue with backpressure";
  }

  void check(const SourceFile& file, std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent ||
          (t.text != "deque" && t.text != "queue" && t.text != "priority_queue")) {
        continue;
      }
      const std::size_t p = prev_code(toks, i);
      if (p == static_cast<std::size_t>(-1) || !is_punct(toks[p], "::")) continue;
      const std::size_t pp = prev_code(toks, p);
      if (pp == static_cast<std::size_t>(-1) || !is_ident(toks[pp], "std")) continue;
      add(out, *this, t.line,
          "std::" + t.text +
              " grows without bound; stream hand-offs must use a bounded "
              "queue with backpressure (common/spsc.hpp)");
    }
  }
};

}  // namespace

const std::vector<const Rule*>& all_rules() {
  static const DeterminismRule determinism;
  static const OrderedIterationRule ordered_iteration;
  static const DecoderHardeningRule decoder_hardening;
  static const HeaderHygieneRule header_hygiene;
  static const FloatEqRule float_eq;
  static const BoundedQueuesRule bounded_queues;
  static const std::vector<const Rule*> rules = {
      &determinism, &ordered_iteration, &decoder_hardening, &header_hygiene,
      &float_eq,    &bounded_queues,
  };
  return rules;
}

const Rule* find_rule(std::string_view id) {
  for (const Rule* rule : all_rules()) {
    if (id == rule->id()) return rule;
  }
  return nullptr;
}

}  // namespace ltefp::lint
