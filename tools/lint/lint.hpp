// ltefp-lint — project-invariant static analysis for the ltefp tree.
//
// A deliberately small, dependency-free linter: its own tokenizer over
// C/C++ source (no libclang), a handful of project-specific rules, a
// minimal TOML-subset config for per-directory rule sets, and line-level
// `// lint:allow(float-eq)`-style suppressions. The rules encode contracts the
// rest of the project relies on but a compiler cannot check:
//
//   determinism        no wall clocks / ambient randomness in library code;
//                      everything stochastic flows through common/rng
//   ordered-iteration  no range-for over unordered containers (iteration
//                      order is unspecified and varies across stdlibs,
//                      which silently breaks bit-identical reproduction)
//   decoder-hardening  no atoi/strtol/stoi-family parsing of untrusted
//                      input; std::from_chars with explicit error checks
//   header-hygiene     headers start with #pragma once and never say
//                      `using namespace`
//   float-eq           no ==/!= against floating-point literals
//   bounded-queues     no unbounded std:: FIFOs (deque/queue/priority_queue)
//                      in stream code; hand-offs use bounded queues with
//                      backpressure (common/spsc.hpp)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ltefp::lint {

// ---------------------------------------------------------------------------
// Tokenizer

enum class TokKind : std::uint8_t {
  kIdent,    // identifier or keyword
  kNumber,   // pp-number (integer or floating literal)
  kString,   // string literal, including raw strings; text is the whole lexeme
  kChar,     // character literal
  kPunct,    // operator / punctuator (multi-char ops are single tokens)
  kPreproc,  // a whole preprocessor logical line, continuations folded in
  kComment,  // // or /* */ comment, text includes the delimiters
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;          // 1-based line where the token starts
  bool is_float = false; // kNumber only: literal has a fractional/exponent part
};

/// Tokenizes C/C++ source. Never throws; malformed input (unterminated
/// strings/comments) is tolerated by closing the token at end of file.
std::vector<Token> lex(std::string_view source);

/// True if `text` spells a floating-point literal (helper exposed for tests).
bool is_float_literal(std::string_view text);

// ---------------------------------------------------------------------------
// Rules

struct Finding {
  std::string file;  // filled by the driver
  int line = 0;
  std::string rule;
  std::string message;
};

/// One source file as seen by the rules.
struct SourceFile {
  std::string path;       // root-relative, forward slashes; used in findings
  bool is_header = false;
  std::vector<Token> tokens;
  // Tokens of the sibling header (foo.hpp next to foo.cpp), if any. Rules
  // may mine these for declarations (e.g. unordered members used by the
  // .cpp) but must report findings only against `tokens`.
  std::vector<Token> sibling_decls;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* id() const = 0;
  virtual const char* summary() const = 0;
  virtual void check(const SourceFile& file, std::vector<Finding>& out) const = 0;
};

/// All shipped rules, in stable (documentation) order.
const std::vector<const Rule*>& all_rules();

/// nullptr if no rule has this id.
const Rule* find_rule(std::string_view id);

// ---------------------------------------------------------------------------
// Configuration (.ltefp-lint.toml — a strict line-oriented TOML subset)
//
//   ignore = ["build*", ".git"]      # walker skip patterns (glob: * and ?)
//   [default]
//   rules = ["header-hygiene", ...]  # rule set everywhere, pre-override
//   [dir."src"]
//   enable = ["determinism"]         # added for files under src/
//   disable = ["float-eq"]           # removed for files under src/
//   rules = [...]                    # or: replace the whole set
//
// Longer (more specific) directory prefixes are applied after shorter ones.

struct DirOverride {
  std::string prefix;                // "src/sniffer" matches src/sniffer/**
  std::vector<std::string> rules;    // if non-empty via `rules=`: replaces set
  bool replace = false;
  std::vector<std::string> enable;
  std::vector<std::string> disable;
};

struct Config {
  std::vector<std::string> default_rules;
  std::vector<DirOverride> dirs;
  std::vector<std::string> ignore;
};

/// Parses config text. On error returns false and sets `error`
/// to "line N: what".
bool parse_config(std::string_view text, Config* out, std::string* error);

/// Config used when no .ltefp-lint.toml is present: every rule, everywhere,
/// ignoring build*/ and .git.
Config default_config();

/// The enabled rule ids for a root-relative path, after directory overrides.
std::vector<std::string> rules_for(const Config& config, std::string_view rel_path);

/// Glob match with `*` and `?` (no character classes). Exposed for tests.
bool glob_match(std::string_view pattern, std::string_view text);

// ---------------------------------------------------------------------------
// Driver

/// Lints one in-memory source. `rel_path` selects header-ness and appears in
/// findings; `enabled` is the rule-id set; suppressions are honored.
/// `sibling` may hold the text of the paired header ("" if none).
std::vector<Finding> lint_source(std::string_view rel_path, std::string_view text,
                                 const std::vector<std::string>& enabled,
                                 std::string_view sibling = {});

/// Recursively collects lintable sources (.cpp .cc .cxx .h .hpp .hh .hxx)
/// under `paths` (files or directories, relative to `root`), skipping names
/// and root-relative paths matching `config.ignore`. Returns sorted
/// root-relative paths. Nonexistent inputs are reported in `error`.
bool collect_sources(const std::string& root, const std::vector<std::string>& paths,
                     const Config& config, std::vector<std::string>* out,
                     std::string* error);

/// Full CLI: `ltefp-lint [--config FILE] [--root DIR] [--quiet] [--list-rules]
/// PATH...`. Returns the process exit code: 0 clean, 1 findings, 2 usage or
/// config/filesystem error. All output goes to the given streams.
int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

}  // namespace ltefp::lint
