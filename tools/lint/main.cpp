// ltefp-lint entry point. All logic lives in the ltefp_lint_core library so
// tests/test_lint.cpp can drive the CLI in-process.
#include <iostream>

#include "lint.hpp"

int main(int argc, char** argv) {
  return ltefp::lint::run_cli(argc, argv, std::cout, std::cerr);
}
