// History attack walkthrough (paper Attack II, Figure 2 / Table V).
//
// A victim commutes between three cell zones — home (A'), workplace (B'),
// and a grocery store (C') — using different apps in each. The attacker
// has one passive sniffer per zone. This example narrates every stage:
// identity mapping, per-zone capture, trace integration, and the final
// reconstructed movement+app-usage history.
//
// Build & run:  ninja -C build && ./build/examples/history_attack_tour
#include <cstdio>

#include "attacks/history.hpp"
#include "attacks/pipeline.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main() {
  // Stage 0: the attacker pre-trains a fingerprinting model for the
  // victim's operator (T-Mobile in the paper's Figure 5 setup).
  std::printf("== Stage 0: train the fingerprinting classifier =============\n");
  attacks::PipelineConfig pipe_config;
  pipe_config.op = lte::Operator::kTmobile;
  pipe_config.traces_per_app = 2;
  pipe_config.trace_duration = minutes(2);
  pipe_config.seed = 100;
  attacks::FingerprintPipeline pipeline(pipe_config);
  pipeline.train(attacks::build_dataset(pipe_config));
  std::printf("   classifier ready (hierarchical RF, %d apps).\n\n", apps::kNumApps);

  // Stage 1: the victim's day. Ground truth known only to the simulator.
  std::printf("== Stage 1: the victim's (hidden) day =======================\n");
  attacks::HistoryConfig config;
  config.op = lte::Operator::kTmobile;
  config.zones = 3;
  config.seed = 20260706;
  config.itinerary = {
      {0, apps::AppId::kNetflix, minutes(2), seconds(30)},       // home: show
      {1, apps::AppId::kFacebookMessenger, minutes(2), seconds(30)},  // work: chat
      {2, apps::AppId::kWhatsAppCall, minutes(2), seconds(30)},  // store: call
      {0, apps::AppId::kYoutube, minutes(2), seconds(30)},       // home again
  };
  std::printf("   (4 visits across home/work/store; apps hidden from attacker)\n\n");

  // Stage 2: run the whole scenario; the attack sees only sniffer output.
  std::printf("== Stage 2: passive capture + reconstruction ================\n");
  const attacks::HistoryAttack attack(pipeline);
  const attacks::HistoryResult result = attack.run(config);

  TextTable table({"Zone", "Window", "Category", "App (predicted)", "Votes", "Truth", "Hit"});
  const char* zone_names[] = {"A' home", "B' work", "C' store"};
  for (const auto& obs : result.observations) {
    table.add_row({zone_names[obs.zone],
                   format_hms(obs.start) + " - " + format_hms(obs.end),
                   apps::to_string(obs.predicted_category), apps::to_string(obs.predicted_app),
                   fmt_pct(obs.f_score), apps::to_string(obs.true_app),
                   obs.correct ? "TRUE" : "FALSE"});
  }
  std::printf("%s", table.render("Reconstructed movement + app-usage history").c_str());
  std::printf("\nSuccess rate: %s. The attacker learned where the victim was and what\n"
              "they did there, from unencrypted control-channel metadata alone.\n",
              fmt_pct(result.success_rate).c_str());
  return 0;
}
