// Builds and exports a labeled lab dataset in CSV form, mirroring the
// dataset the paper releases ("we publicly release our lab-created
// dataset"): one trace CSV per app session plus a windowed feature CSV
// ready for any external ML toolkit (the paper used Weka).
//
// Build & run:  ninja -C build && ./build/examples/dataset_export [out_dir]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "common/csv.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "lte_fingerprint_dataset";
  std::filesystem::create_directories(out_dir);

  attacks::CollectConfig collect;
  collect.op = lte::Operator::kLab;
  collect.duration = minutes(1);
  collect.seed = 424242;

  std::vector<attacks::CollectedTrace> traces;
  std::printf("Collecting one lab session per app...\n");
  for (const apps::AppId app : apps::kAllApps) {
    collect.seed += 101;
    attacks::CollectedTrace capture = attacks::collect_trace(app, collect);

    std::string file_name = apps::to_string(app);
    for (char& ch : file_name) {
      if (ch == ' ') ch = '_';
    }
    const auto path = out_dir / (file_name + ".trace.csv");
    std::ofstream out(path);
    sniffer::write_csv(out, capture.trace);
    std::printf("  %-14s -> %s (%zu records, %zu RNTIs)\n", apps::to_string(app),
                path.c_str(), capture.trace.size(), capture.rnti_count);
    traces.push_back(std::move(capture));
  }

  // Windowed features with ground-truth labels (Weka/sklearn-ready).
  const features::Dataset data = attacks::dataset_from_traces(traces, features::WindowConfig{});
  const auto features_path = out_dir / "windows_100ms.csv";
  std::ofstream out(features_path);
  CsvWriter writer(out);
  std::vector<std::string> header = data.feature_names;
  header.push_back("label");
  writer.write_row(header);
  for (const auto& sample : data.samples) {
    std::vector<std::string> row;
    row.reserve(sample.features.size() + 1);
    for (const double v : sample.features) row.push_back(std::to_string(v));
    row.push_back(data.label_names[static_cast<std::size_t>(sample.label)]);
    writer.write_row(row);
  }
  std::printf("\nWrote %zu labeled windows to %s\n", data.size(), features_path.c_str());

  // Round-trip check: the CSVs re-import losslessly.
  std::ifstream in(out_dir / "Skype.trace.csv");
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const sniffer::Trace reloaded = sniffer::read_csv(text);
  std::printf("Round-trip check: Skype.trace.csv re-imported %zu records (%s)\n",
              reloaded.size(),
              reloaded == traces.back().trace ? "bit-exact" : "MISMATCH");
  return 0;
}
