// Low-level substrate tour: what a passive PDCCH monitor (OWL/FALCON
// style) actually sees in a busy commercial cell, before any targeting.
//
// Shows the raw building blocks of the attack framework: blind DCI
// decoding via CRC unmasking, the live RNTI population, RACH/paging
// activity, and passive RNTI->TMSI identity mapping as subscribers
// connect.
//
// Build & run:  ninja -C build && ./build/examples/live_cell_monitor
#include <cstdio>

#include "apps/background.hpp"
#include "apps/factory.hpp"
#include "common/table.hpp"
#include "lte/network.hpp"
#include "sniffer/sniffer.hpp"

using namespace ltefp;

int main() {
  // A Verizon-profile cell with its usual subscriber load.
  lte::Simulation sim(1234);
  const lte::OperatorProfile profile = lte::operator_profile(lte::Operator::kVerizon);
  const lte::CellId cell = sim.add_cell(profile);
  apps::populate_background_ues(sim, cell, profile, 310'010'000'000'000ULL);

  // Two "interesting" subscribers join mid-capture.
  const lte::UeId alice = sim.add_ue(310'010'555'000'001ULL);
  const lte::UeId bob = sim.add_ue(310'010'555'000'002ULL);
  sim.camp(alice, cell);
  sim.camp(bob, cell);

  sniffer::SnifferConfig sc;
  sc.miss_rate = profile.sniffer_miss_rate;
  sniffer::Sniffer sniffer(sc, Rng(5));
  sim.add_observer(cell, sniffer);

  std::printf("Monitoring a %d-PRB cell (%s profile, %s scheduler)...\n",
              lte::prb_count(profile.bandwidth), lte::to_string(profile.op),
              profile.scheduler == lte::SchedulerKind::kProportionalFair
                  ? "proportional-fair"
                  : "round-robin");

  sim.run_for(seconds(5));
  std::printf("\nAfter 5 s of ambient traffic:\n");
  std::printf("  decoded DCIs: %zu (missed %zu at %.1f%% RF loss)\n", sniffer.decoded_count(),
              sniffer.missed_count(), profile.sniffer_miss_rate * 100.0);
  std::printf("  live RNTIs:   %zu\n", sniffer.active_rntis(sim.now()).size());
  std::printf("  RACH bursts:  %zu, paging indications: %zu\n", sniffer.rach_count(),
              sniffer.paging_count());

  // Alice starts a VoIP call, Bob starts streaming: watch the identity
  // mapper bind their fresh RNTIs to their TMSIs from Msg3/Msg4 alone.
  sim.set_traffic_source(alice,
                         apps::make_app_source(apps::AppId::kWhatsAppCall, seconds(20), Rng(7)));
  sim.set_traffic_source(bob, apps::make_app_source(apps::AppId::kNetflix, seconds(20), Rng(8)));
  sim.run_for(seconds(20));

  std::printf("\nAfter Alice (VoIP) and Bob (streaming) became active:\n");
  TextTable table({"Subscriber", "TMSI (sniffed)", "RNTI bindings", "Records", "Bytes", "UL/DL"});
  for (const auto& [name, ue] : {std::pair{"Alice", alice}, std::pair{"Bob", bob}}) {
    const lte::Tmsi tmsi = sim.tmsi_of(ue);
    const auto bindings = sniffer.identities().bindings_of(tmsi);
    const sniffer::Trace trace = sniffer.trace_of_tmsi(tmsi);
    long long ul = 0, dl = 0;
    for (const auto& r : trace) {
      (r.direction == lte::Direction::kUplink ? ul : dl) += r.tb_bytes;
    }
    char tmsi_hex[16];
    std::snprintf(tmsi_hex, sizeof(tmsi_hex), "0x%08X", tmsi);
    table.add_row({name, tmsi_hex, std::to_string(bindings.size()),
                   std::to_string(trace.size()), std::to_string(ul + dl),
                   fmt(dl > 0 ? static_cast<double>(ul) / static_cast<double>(dl) : 0.0, 2)});
  }
  std::printf("%s", table.render("Passive identity mapping + per-user capture").c_str());
  std::printf("\nNote the UL/DL ratios: ~1 for the VoIP call, ~0 for streaming — visible\n"
              "without touching a single encrypted byte. Total identity mappings in cell: %zu.\n",
              sniffer.identities().confirmed_count());
  return 0;
}
