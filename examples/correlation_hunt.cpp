// Correlation attack walkthrough (paper Attack III, Figure 6 / Tables VI-VII).
//
// Two suspects, A and B, camp in different cells of the same operator.
// The attacker sniffs both cells and asks: are they talking to each other?
// We run both worlds — one where they genuinely converse over WhatsApp,
// one where they independently chat with third parties — and show how DTW
// similarity plus a logistic-regression verdict separates them.
//
// Build & run:  ninja -C build && ./build/examples/correlation_hunt
#include <cstdio>

#include "attacks/correlation.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main() {
  attacks::CorrelationConfig config;
  config.op = lte::Operator::kLab;
  config.duration = minutes(2);
  config.t_w = seconds(1);  // the paper's default T_w

  std::printf("Capturing paired and independent sessions (WhatsApp, Skype)...\n\n");
  TextTable table({"App", "World", "sim(A-UL, B-DL)", "sim(A-DL, B-UL)", "sim(total)",
                   "volume ratio", "headline D(T_w,T_a)"});
  for (const apps::AppId app : {apps::AppId::kWhatsApp, apps::AppId::kSkype}) {
    for (const bool paired : {true, false}) {
      config.seed = 7000 + static_cast<std::uint64_t>(app) * 31 + (paired ? 1 : 0);
      const attacks::PairObservation obs = attacks::run_pair_session(app, paired, config);
      table.add_row({apps::to_string(app), paired ? "in contact" : "independent",
                     fmt(obs.features[0]), fmt(obs.features[1]), fmt(obs.features[2]),
                     fmt(obs.features[3]), fmt(obs.similarity)});
    }
  }
  std::printf("%s", table.render("Step 3 of Figure 6: similarity calculation").c_str());

  std::printf("\nTraining the contact classifier (logistic regression) per app...\n");
  TextTable verdicts({"App", "Precision", "Recall", "Accuracy"});
  for (const apps::AppId app : {apps::AppId::kWhatsApp, apps::AppId::kSkype}) {
    config.seed = 8100 + static_cast<std::uint64_t>(app);
    const ml::BinaryMetrics m = attacks::correlation_attack(app, 5, 4, config);
    verdicts.add_row({apps::to_string(app), fmt(m.precision), fmt(m.recall), fmt(m.accuracy)});
  }
  std::printf("%s", verdicts.render("Contact detection (lab conditions)").c_str());
  std::printf("\nAs the paper notes, with high precision the attacker \"just needs to get\n"
              "lucky once\" over weeks of monitoring to prove a communication link.\n");
  return 0;
}
