// Capture once, replay many: record a short lab campaign into a binary
// tracestore corpus, reload it, and verify the fingerprinting pipeline is
// bit-identical whether it consumes the live simulation or the corpus.
//
// This is the workflow the paper's authors use with their recorded
// dataset — collection happened once, every classifier experiment after
// that iterates on stored traces.
//
// Build & run:  ninja -C build && ./build/examples/trace_roundtrip
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "attacks/pipeline.hpp"
#include "attacks/replay.hpp"
#include "common/table.hpp"
#include "tracestore/corpus.hpp"

using namespace ltefp;

namespace {

ml::ConfusionMatrix run_pipeline(const attacks::PipelineConfig& config) {
  const features::Dataset data = attacks::build_dataset(config);
  Rng rng(config.seed ^ 0xABCDEF);
  auto [train, test] = features::train_test_split(data, 0.8, rng);
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(train);
  return pipeline.evaluate(test);
}

bool matrices_equal(const ml::ConfusionMatrix& a, const ml::ConfusionMatrix& b) {
  if (a.num_classes() != b.num_classes()) return false;
  for (int t = 0; t < a.num_classes(); ++t) {
    for (int p = 0; p < a.num_classes(); ++p) {
      if (a.count(t, p) != b.count(t, p)) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ltefp_roundtrip_corpus").string();
  std::filesystem::remove_all(dir);

  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 2;
  config.trace_duration = seconds(45);
  config.seed = 4711;

  // --- 1. Capture once: run the collection campaign and spill it to disk.
  std::printf("Recording %d traces x %d apps from the lab cell to %s...\n",
              config.traces_per_app, apps::kNumApps, dir.c_str());
  const attacks::RecordResult rec = attacks::record_corpus(config, dir);
  std::printf("  -> %zu traces, %zu DCI records, %zu bytes on disk\n", rec.traces, rec.records,
              rec.corpus_bytes);
  std::printf("  -> CSV equivalent would be %zu bytes: binary is %.2fx smaller\n", rec.csv_bytes,
              static_cast<double>(rec.csv_bytes) / static_cast<double>(rec.corpus_bytes));

  // --- 2. Live run: simulate again (same seeds) and evaluate.
  std::printf("\nLive pipeline (re-simulating every session)...\n");
  const ml::ConfusionMatrix live = run_pipeline(config);

  // --- 3. Replay run: same pipeline, fed from the corpus.
  std::printf("Replay pipeline (loading the corpus, no simulation)...\n");
  attacks::PipelineConfig replay = config;
  replay.replay_corpus = dir;
  const ml::ConfusionMatrix replayed = run_pipeline(replay);

  // --- 4. The two confusion matrices must agree cell-for-cell.
  std::vector<std::string> labels;
  for (const apps::AppId app : apps::kAllApps) labels.push_back(apps::to_string(app));
  std::printf("\n%s\n", replayed.to_string(labels).c_str());
  if (!matrices_equal(live, replayed)) {
    std::printf("MISMATCH: replayed confusion matrix differs from the live run!\n");
    return 1;
  }
  std::printf("Replay is bit-identical to live simulation: %zu test windows, "
              "weighted F %.3f in both runs.\n",
              replayed.total(), replayed.weighted_f_score());

  // --- 5. A corpus survives inspection without decoding (manifest only).
  const tracestore::Corpus corpus = tracestore::Corpus::open(dir);
  tracestore::CorpusFilter streaming_only;
  streaming_only.app = static_cast<std::uint16_t>(apps::AppId::kNetflix);
  std::printf("Manifest: %zu entries; filter app=Netflix -> %zu entries, no file decoded.\n",
              corpus.entries().size(), corpus.select(streaming_only).size());
  return 0;
}
