// Quickstart: the whole attack in ~60 lines.
//
// 1. Collect labeled traces for the nine apps from a (simulated) lab cell
//    by passively sniffing the PDCCH.
// 2. Train the hierarchical Random Forest fingerprinting pipeline.
// 3. Capture a fresh session of an "unknown" app and identify it.
//
// Build & run:  ninja -C build && ./build/examples/quickstart
#include <cstdio>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main() {
  // --- 1. Build a small lab dataset (short traces keep this example fast;
  // the benches use the paper's full 10-minute sessions).
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 2;
  config.trace_duration = minutes(1.5);
  config.seed = 2024;

  std::printf("Collecting %d traces x %d apps from the lab cell...\n",
              config.traces_per_app, apps::kNumApps);
  const features::Dataset dataset = attacks::build_dataset(config);
  std::printf("  -> %zu windows of %zu features\n", dataset.size(), dataset.feature_count());

  // --- 2. Train.
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(dataset);
  std::printf("Trained hierarchical Random Forest (category -> app).\n\n");

  // --- 3. Fingerprint unseen sessions.
  TextTable table({"Victim ran", "Sniffer says", "Category", "Window votes"});
  for (const apps::AppId secret :
       {apps::AppId::kYoutube, apps::AppId::kTelegram, apps::AppId::kSkype}) {
    attacks::CollectConfig collect;
    collect.op = config.op;
    collect.duration = minutes(1.5);
    collect.seed = 999'000 + static_cast<std::uint64_t>(secret);
    const attacks::CollectedTrace capture = attacks::collect_trace(secret, collect);
    const attacks::TraceVerdict verdict =
        pipeline.classify_trace(capture.trace, capture.session_start);
    table.add_row({apps::to_string(secret), apps::to_string(verdict.app),
                   apps::to_string(verdict.category), fmt_pct(verdict.confidence)});
  }
  std::printf("%s", table.render("Fingerprinting unseen sessions").c_str());
  std::printf("\nAll of this used only plain-text PDCCH metadata: no decryption,\n"
              "no access to the UE, the eNodeB, or the core network.\n");
  return 0;
}
