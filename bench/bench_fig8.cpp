// Reproduces Figure 8: decrease in classification performance over time.
//
// Trains the classifier on traces recorded on day 1 and tests it on traces
// of the same apps recorded on later days (T-Mobile / YouTube, as in the
// paper). App-version drift erodes the F-score; the paper retrains when it
// falls below the 70% threshold, which happens around day 7.
#include <cstdio>

#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));

  attacks::PipelineConfig config;
  config.op = lte::Operator::kTmobile;
  config.traces_per_app = scale.traces_per_app;
  config.trace_duration = scale.trace_duration;
  config.seed = 1909;
  config.session_day_range = 0;  // train strictly on day-0 traffic

  std::printf("Training on day 0 (T-Mobile)...\n");
  const features::Dataset train_set = attacks::build_dataset(config);
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(train_set);

  TextTable table({"Test day", "YouTube F-score", "All-apps weighted F", "Retrain?"});
  const int days[] = {0, 1, 3, 5, 7, 10, 14, 20};
  for (const int day : days) {
    attacks::PipelineConfig test_config = config;
    test_config.day = day;
    test_config.seed = config.seed + 7777ULL * static_cast<std::uint64_t>(day + 1);
    const features::Dataset test_set = attacks::build_dataset(test_config);
    const ml::ConfusionMatrix cm = pipeline.evaluate(test_set);
    const double youtube_f = cm.f_score(static_cast<int>(apps::AppId::kYoutube));
    const double weighted_f = cm.weighted_f_score();
    table.add_row({std::to_string(day), fmt(youtube_f), fmt(weighted_f),
                   weighted_f < 0.70 ? "YES (below 70% threshold)" : "no"});
  }
  std::printf("%s",
              table.render("Figure 8 - F-score decay over days since training").c_str());
  std::printf("Paper shape: monotone decay crossing the 70%% retrain threshold near day 7.\n");
  clock.report("bench_fig8");
  return 0;
}
