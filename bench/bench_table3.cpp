// Reproduces Table III: mobile-app classification in the laboratory
// setting with Random Forest, for Down+Up, Downlink-only and Uplink-only
// feature sets.
//
// Paper result shape: F-scores .93-.996; streaming and VoIP near-perfect,
// messaging slightly lower; uplink-only marginally weaker than downlink.
#include <cstdio>

#include "attacks/pipeline.hpp"
#include "attacks/replay.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "tracestore/corpus.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));

  TextTable table({"Category", "Mobile App", "Down+Up F", "P", "R", "Down F", "P", "R",
                   "Up F", "P", "R"});

  attacks::PipelineConfig base;
  base.op = lte::Operator::kLab;
  base.traces_per_app = scale.traces_per_app;
  base.trace_duration = scale.trace_duration;
  base.seed = 1303;

  // Corpus-backed variant (`--corpus DIR`): collection is link-agnostic
  // (the filter applies at windowing), so the three columns below are three
  // re-analyses of ONE capture. Live mode re-simulates per column; with a
  // corpus we record once (or reuse a previous run's recording) and replay
  // three times — bit-identical output, none of the simulation cost.
  const std::string corpus_dir = bench::flag_value(argc, argv, "--corpus");
  if (!corpus_dir.empty()) {
    if (!tracestore::Corpus::exists(corpus_dir)) {
      std::fprintf(stderr, "recording corpus to %s (one-time cost)...\n", corpus_dir.c_str());
      const attacks::RecordResult rec = attacks::record_corpus(base, corpus_dir);
      std::fprintf(stderr, "recorded %zu traces, %zu records, %zu bytes (%.2fx smaller than CSV)\n",
                   rec.traces, rec.records, rec.corpus_bytes,
                   static_cast<double>(rec.csv_bytes) / static_cast<double>(rec.corpus_bytes));
    } else {
      std::fprintf(stderr, "replaying existing corpus %s (skipping simulation)\n",
                   corpus_dir.c_str());
    }
    base.replay_corpus = corpus_dir;
  }

  // One dataset per link filter; same traffic seeds so columns are
  // comparable, like re-analysing one capture three ways.
  std::vector<std::vector<attacks::AppScore>> columns;
  for (const lte::LinkFilter link :
       {lte::LinkFilter::kBoth, lte::LinkFilter::kDownlinkOnly, lte::LinkFilter::kUplinkOnly}) {
    attacks::PipelineConfig config = base;
    config.link = link;
    columns.push_back(attacks::run_fingerprint_experiment(config));
  }

  apps::AppCategory last_category = apps::AppCategory::kVoip;
  for (int i = 0; i < apps::kNumApps; ++i) {
    const apps::AppId app = apps::kAllApps[static_cast<std::size_t>(i)];
    if (i > 0 && apps::category_of(app) != last_category) table.add_separator();
    last_category = apps::category_of(app);
    std::vector<std::string> row{apps::to_string(last_category), apps::to_string(app)};
    for (const auto& column : columns) {
      const attacks::AppScore& s = column[static_cast<std::size_t>(i)];
      row.push_back(fmt(s.f_score));
      row.push_back(fmt(s.precision));
      row.push_back(fmt(s.recall));
    }
    table.add_row(std::move(row));
  }

  std::printf("%s",
              table.render("Table III - lab-setting classification (Random Forest)").c_str());
  clock.report("bench_table3");
  return 0;
}
