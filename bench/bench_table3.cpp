// Reproduces Table III: mobile-app classification in the laboratory
// setting with Random Forest, for Down+Up, Downlink-only and Uplink-only
// feature sets.
//
// Paper result shape: F-scores .93-.996; streaming and VoIP near-perfect,
// messaging slightly lower; uplink-only marginally weaker than downlink.
#include <cstdio>

#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));

  TextTable table({"Category", "Mobile App", "Down+Up F", "P", "R", "Down F", "P", "R",
                   "Up F", "P", "R"});

  // One dataset per link filter; same traffic seeds so columns are
  // comparable, like re-analysing one capture three ways.
  std::vector<std::vector<attacks::AppScore>> columns;
  for (const lte::LinkFilter link :
       {lte::LinkFilter::kBoth, lte::LinkFilter::kDownlinkOnly, lte::LinkFilter::kUplinkOnly}) {
    attacks::PipelineConfig config;
    config.op = lte::Operator::kLab;
    config.link = link;
    config.traces_per_app = scale.traces_per_app;
    config.trace_duration = scale.trace_duration;
    config.seed = 1303;
    columns.push_back(attacks::run_fingerprint_experiment(config));
  }

  apps::AppCategory last_category = apps::AppCategory::kVoip;
  for (int i = 0; i < apps::kNumApps; ++i) {
    const apps::AppId app = apps::kAllApps[static_cast<std::size_t>(i)];
    if (i > 0 && apps::category_of(app) != last_category) table.add_separator();
    last_category = apps::category_of(app);
    std::vector<std::string> row{apps::to_string(last_category), apps::to_string(app)};
    for (const auto& column : columns) {
      const attacks::AppScore& s = column[static_cast<std::size_t>(i)];
      row.push_back(fmt(s.f_score));
      row.push_back(fmt(s.precision));
      row.push_back(fmt(s.recall));
    }
    table.add_row(std::move(row));
  }

  std::printf("%s",
              table.render("Table III - lab-setting classification (Random Forest)").c_str());
  return 0;
}
