// Ablation of the paper's proposed countermeasures (Section VIII-B) and
// the 5G SUCI discussion (Section VIII-C):
//
//  - frequent C-RNTI reassignment -> breaks trace continuity (the sniffer
//    loses the victim at every re-key);
//  - layer-2 traffic morphing (TBS padding ladder) -> hides frame sizes at
//    a radio-resource overhead cost, as the paper cautions;
//  - chaff grants -> blur activity patterns;
//  - SUCI-style identity concealment -> kills passive identity mapping
//    outright.
//
// For each defence we report what the attacker still captures and whether
// whole-trace app identification survives, plus the defence's byte
// overhead on the air.
#include <cstdio>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

namespace {

struct Condition {
  const char* name;
  lte::CountermeasureConfig countermeasures;
  bool conceal_identity = false;
};

}  // namespace

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bool quick = bench::quick_mode(argc, argv);
  const bench::Scale scale = bench::scale_for(quick);

  // Attacker trains on the *undefended* network — a defence deployed later
  // must defeat an already-fitted classifier.
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = scale.traces_per_app;
  config.trace_duration = quick ? minutes(1) : minutes(3);
  config.seed = 2222;
  std::printf("Training attacker on the undefended cell...\n");
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(attacks::build_dataset(config));

  std::vector<Condition> conditions;
  conditions.push_back({"baseline (no defence)", {}, false});
  {
    lte::CountermeasureConfig c;
    c.rnti_rekey_period = seconds(5);
    conditions.push_back({"RNTI re-key every 5 s", c, false});
  }
  {
    lte::CountermeasureConfig c;
    c.rnti_rekey_period = seconds(1);
    conditions.push_back({"RNTI re-key every 1 s", c, false});
  }
  {
    lte::CountermeasureConfig c;
    c.pad_to_bytes = 256;
    conditions.push_back({"pad TBS to 256 B ladder", c, false});
  }
  {
    lte::CountermeasureConfig c;
    c.pad_to_bytes = 1024;
    conditions.push_back({"pad TBS to 1024 B ladder", c, false});
  }
  {
    lte::CountermeasureConfig c;
    c.dummy_grant_rate = 0.05;
    conditions.push_back({"5% chaff grants", c, false});
  }
  conditions.push_back({"5G SUCI concealment", {}, true});

  const apps::AppId probes[] = {apps::AppId::kYoutube, apps::AppId::kWhatsApp,
                                apps::AppId::kSkype};
  TextTable table({"Defence", "Captured records", "Capture vs baseline", "Apps identified",
                   "Mean vote confidence", "Bytes on air vs baseline"});

  double baseline_records = 0.0;
  double baseline_bytes = 0.0;
  for (const Condition& condition : conditions) {
    double records = 0.0;
    double air_bytes = 0.0;
    int identified = 0, total = 0;
    double confidence = 0.0;
    for (const apps::AppId app : probes) {
      attacks::CollectConfig collect;
      collect.op = config.op;
      collect.duration = quick ? minutes(1) : minutes(2);
      collect.seed = 9000 + static_cast<std::uint64_t>(app) * 17;
      collect.countermeasures = condition.countermeasures;
      collect.conceal_identity = condition.conceal_identity;
      const attacks::CollectedTrace capture = attacks::collect_trace(app, collect);
      records += static_cast<double>(capture.trace.size());
      air_bytes += static_cast<double>(sniffer::total_bytes(capture.trace));
      const attacks::TraceVerdict verdict =
          pipeline.classify_trace(capture.trace, capture.session_start);
      ++total;
      if (verdict.window_count > 0 && verdict.app == app) ++identified;
      confidence += verdict.confidence;
    }
    if (baseline_records <= 0.0) {
      baseline_records = records;
      baseline_bytes = air_bytes;
    }
    table.add_row({condition.name, fmt(records, 0),
                   fmt_pct(records / std::max(baseline_records, 1.0)),
                   std::to_string(identified) + "/" + std::to_string(total),
                   fmt_pct(confidence / total),
                   fmt_pct(air_bytes / std::max(baseline_bytes, 1.0))});
  }
  std::printf("%s", table.render("Countermeasure ablation (Sections VIII-B/C)").c_str());
  std::printf("Padding hides sizes at a radio-overhead cost; re-keying and SUCI starve the\n"
              "attacker of attributable records — matching the paper's qualitative claims.\n");
  clock.report("bench_countermeasures");
  return 0;
}
