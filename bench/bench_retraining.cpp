// Sustained-monitoring simulation: combines Figure 8 (drift decay) with
// the Section VII-D cost model (Eqs. 2-3). The attacker checks classifier
// health every few days; when the weighted F-score dips below X = 0.7 they
// re-collect and retrain, producing the sawtooth the paper's daily
// retraining cost amortises.
#include <cstdio>

#include "attacks/retrain.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bool quick = bench::quick_mode(argc, argv);

  attacks::PipelineConfig config;
  config.op = lte::Operator::kTmobile;
  config.traces_per_app = quick ? 1 : 2;
  config.trace_duration = quick ? seconds(45) : minutes(2);
  config.seed = 4141;

  attacks::RetrainPolicy policy;
  policy.threshold = 0.70;
  policy.check_interval_days = quick ? 4 : 2;

  attacks::CostModelParams cost_params;
  cost_params.drift_period_days = 7;  // Fig. 8 finding
  const attacks::CostModel cost_model(cost_params);

  const int horizon = quick ? 20 : 28;
  std::printf("Simulating %d days of monitoring (threshold X = %.0f%%)...\n", horizon,
              policy.threshold * 100.0);
  const auto series =
      attacks::simulate_sustained_monitoring(config, horizon, policy, cost_model);

  TextTable table({"Day", "Weighted F", "Model age (days)", "Action", "Cumulative cost"});
  int retrains = 0;
  for (const auto& entry : series) {
    if (entry.retrained) ++retrains;
    table.add_row({std::to_string(entry.day), fmt(entry.weighted_f),
                   std::to_string(entry.model_age_days),
                   entry.retrained ? "RETRAIN (below X)" : "-",
                   fmt(entry.cumulative_cost, 1)});
  }
  std::printf("%s", table.render("Sustained monitoring with adaptive retraining").c_str());
  std::printf("Retrains over %d days: %d (paper's drift period: ~every %d days).\n"
              "Steady-state upkeep: ~%.1f cost units/day (Eq. 3 amortisation).\n",
              horizon, retrains, cost_params.drift_period_days,
              cost_model.retraining_cost() / cost_params.drift_period_days);
  clock.report("bench_retraining");
  return 0;
}
