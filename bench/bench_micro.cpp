// Micro-benchmarks (google-benchmark) for the performance-critical pieces:
// PDCCH blind decoding, TBS lookups, window feature extraction, DTW, and
// the classifiers. These quantify the paper's qualitative claims (e.g.
// "kNN ... may exhibit signs of reduced processing speed" on prediction,
// RF trains cheaply without a GPU) and the sniffer's real-time headroom
// (one subframe budget on the air is 1 ms).
//
// Extra flags (stripped before google-benchmark sees argv):
//   --json FILE   append machine-readable results (name, iterations,
//                 ns/op, bytes/s, threads) as a JSON array to FILE, so the
//                 perf trajectory is tracked across PRs / thread configs
//   --threads N   pool size for the *Par benchmarks' parallel stages
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/spsc.hpp"
#include "dtw/dtw.hpp"
#include "features/matrix.hpp"
#include "features/window.hpp"
#include "lte/crc.hpp"
#include "lte/dci.hpp"
#include "lte/tbs.hpp"
#include "ml/cnn.hpp"
#include "ml/knn.hpp"
#include "ml/logreg.hpp"
#include "ml/random_forest.hpp"
#include "sniffer/sniffer.hpp"
#include "stream/daemon.hpp"
#include "stream/replay_source.hpp"
#include "stream/verdict.hpp"
#include "tracestore/reader.hpp"
#include "tracestore/writer.hpp"

using namespace ltefp;

namespace {

lte::PdcchSubframe make_subframe(int dcis, Rng& rng) {
  lte::PdcchSubframe sf;
  sf.time = 0;
  for (int i = 0; i < dcis; ++i) {
    lte::Dci dci;
    dci.direction = rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink;
    dci.rnti = static_cast<lte::Rnti>(rng.uniform_int(lte::kMinCRnti, lte::kMaxCRnti));
    dci.mcs = static_cast<std::uint8_t>(rng.uniform_int(0, 28));
    dci.nprb = static_cast<std::uint8_t>(rng.uniform_int(1, 100));
    sf.dcis.push_back(lte::encode_dci(dci));
  }
  return sf;
}

features::Dataset synthetic_dataset(std::size_t n, int classes, Rng& rng) {
  features::Dataset data;
  data.feature_names = features::feature_names();
  data.label_names.resize(static_cast<std::size_t>(classes));
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % static_cast<std::size_t>(classes));
    features::FeatureVector x(features::kFeatureCount);
    for (auto& v : x) v = rng.normal(label * 2.0, 1.0);
    data.add(std::move(x), label);
  }
  return data;
}

void BM_Crc16(benchmark::State& state) {
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lte::crc16(payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc16)->Arg(4)->Arg(64);

void BM_DciEncodeDecode(benchmark::State& state) {
  lte::Dci dci;
  dci.rnti = 0x1234;
  dci.mcs = 15;
  dci.nprb = 25;
  for (auto _ : state) {
    const auto enc = lte::encode_dci(dci);
    benchmark::DoNotOptimize(lte::decode_dci_fields(enc));
    benchmark::DoNotOptimize(lte::recover_rnti(enc.payload, enc.masked_crc));
  }
}
BENCHMARK(BM_DciEncodeDecode);

void BM_TbsLookup(benchmark::State& state) {
  int itbs = 0, nprb = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lte::transport_block_size_bytes(itbs, nprb));
    itbs = (itbs + 1) % lte::kNumItbs;
    nprb = 1 + (nprb % lte::kMaxPrb);
  }
}
BENCHMARK(BM_TbsLookup);

void BM_SnifferSubframe(benchmark::State& state) {
  Rng rng(7);
  const auto sf = make_subframe(static_cast<int>(state.range(0)), rng);
  sniffer::Sniffer sniff(sniffer::SnifferConfig{}, Rng(9));
  for (auto _ : state) {
    sniff.on_subframe(sf);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  state.counters["budget_us_per_subframe"] = 1000;  // 1 ms air budget
}
BENCHMARK(BM_SnifferSubframe)->Arg(4)->Arg(16);

void BM_WindowExtraction(benchmark::State& state) {
  Rng rng(21);
  sniffer::Trace trace;
  TimeMs t = 0;
  for (int i = 0; i < 20'000; ++i) {
    t += rng.uniform_int(1, 40);
    trace.push_back(sniffer::TraceRecord{
        t, 0x100, rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink,
        static_cast<int>(rng.uniform_int(16, 3000)), 0});
  }
  const features::WindowConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract_windows(trace, 0, config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20'000);
}
BENCHMARK(BM_WindowExtraction);

sniffer::Trace synthetic_trace(std::size_t n, Rng& rng) {
  sniffer::Trace trace;
  trace.reserve(n);
  TimeMs t = 0;
  // A victim cycles through a few RNTIs; sizes span chat frames to video
  // bursts — the shape the tracestore's delta/dictionary coding targets.
  std::vector<lte::Rnti> rntis;
  for (int i = 0; i < 6; ++i) {
    rntis.push_back(static_cast<lte::Rnti>(rng.uniform_int(lte::kMinCRnti, lte::kMaxCRnti)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform_int(1, 40);
    trace.push_back(sniffer::TraceRecord{
        t, rng.pick(rntis), rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink,
        static_cast<int>(rng.uniform_int(16, 3000)), 1});
  }
  return trace;
}

void BM_TraceStoreWrite(benchmark::State& state) {
  Rng rng(17);
  const auto trace = synthetic_trace(static_cast<std::size_t>(state.range(0)), rng);
  tracestore::TraceMeta meta;
  meta.label = "bench";
  std::size_t binary_bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    binary_bytes = tracestore::write_trace(out, meta, trace);
    benchmark::DoNotOptimize(out);
  }
  std::ostringstream csv;
  sniffer::write_csv(csv, trace);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  state.counters["bytes_per_record"] =
      static_cast<double>(binary_bytes) / static_cast<double>(trace.size());
  state.counters["csv_size_ratio"] =
      static_cast<double>(csv.str().size()) / static_cast<double>(binary_bytes);
}
BENCHMARK(BM_TraceStoreWrite)->Arg(20'000);

void BM_TraceStoreRead(benchmark::State& state) {
  Rng rng(17);
  const auto trace = synthetic_trace(static_cast<std::size_t>(state.range(0)), rng);
  tracestore::TraceMeta meta;
  meta.label = "bench";
  std::ostringstream out;
  tracestore::write_trace(out, meta, trace);
  const std::string image = out.str();
  for (auto _ : state) {
    std::istringstream in(image);
    benchmark::DoNotOptimize(tracestore::read_trace(in));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(image.size()));
}
BENCHMARK(BM_TraceStoreRead)->Arg(20'000);

void BM_TraceCsvRead(benchmark::State& state) {
  Rng rng(17);
  const auto trace = synthetic_trace(static_cast<std::size_t>(state.range(0)), rng);
  std::ostringstream out;
  sniffer::write_csv(out, trace);
  const std::string text = out.str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sniffer::read_csv(text));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_TraceCsvRead)->Arg(20'000);

void BM_Dtw(benchmark::State& state) {
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n), b(n);
  for (auto& v : a) v = rng.uniform(0, 50);
  for (auto& v : b) v = rng.uniform(0, 50);
  dtw::DtwOptions options;
  options.band = static_cast<int>(n / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::dtw_distance(a, b, options));
  }
}
BENCHMARK(BM_Dtw)->Arg(60)->Arg(180)->Arg(600);

/// Structured candidate corpus for the pruned-search benchmark: families
/// of periodic series at widely spread amplitudes, like app frame-count
/// series from different traffic volumes. The spread is what a lower-bound
/// cascade exploits — most candidates are provably far from the query.
std::vector<std::vector<double>> bestmatch_corpus(std::size_t count, std::size_t len,
                                                  Rng& rng) {
  std::vector<std::vector<double>> corpus(count);
  for (std::size_t c = 0; c < count; ++c) {
    const double amp = 3.0 * std::pow(1.7, static_cast<double>(c % 10));
    const double period = 45.0 + 14.0 * static_cast<double>(c % 4);
    const double phase = rng.uniform(0.0, period);
    auto& s = corpus[c];
    s.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      const double base =
          amp * (1.0 + std::sin((static_cast<double>(i) + phase) * 6.28318530717958647692 /
                                period));
      s[i] = std::max(0.0, base + rng.normal(0.0, amp * 0.08));
    }
  }
  return corpus;
}

void BM_DtwBestMatch(benchmark::State& state) {
  Rng rng(11);
  auto corpus = bestmatch_corpus(64, 180, rng);
  // The query is a re-noised take of one corpus member: a strong true
  // match exists, everything else should fall to the bound cascade.
  std::vector<double> query = corpus[37];
  for (auto& v : query) v = std::max(0.0, v + rng.normal(0.0, 1.0));
  dtw::SearchOptions options;
  options.dtw.band = 22;
  options.prune = state.range(0) != 0;
  dtw::SearchStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::best_match(query, corpus, options, &stats));
  }
  state.counters["full_dp"] = static_cast<double>(stats.full_dp);
  state.counters["pruned_frac"] =
      stats.candidates > 0
          ? static_cast<double>(stats.pruned() + stats.short_circuits) /
                static_cast<double>(stats.candidates)
          : 0.0;
}
BENCHMARK(BM_DtwBestMatch)->Arg(0)->Arg(1);

void BM_RandomForestTrain(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(static_cast<std::size_t>(state.range(0)), 3, rng);
  for (auto _ : state) {
    ml::RandomForest rf(ml::ForestConfig{.num_trees = 20});
    rf.fit(data);
    benchmark::DoNotOptimize(rf.tree_count());
  }
}
BENCHMARK(BM_RandomForestTrain)->Arg(1000)->Arg(5000);

void BM_RandomForestPredict(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(5000, 3, rng);
  ml::RandomForest rf;
  rf.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.predict(data.samples[i % data.size()].features));
    ++i;
  }
}
BENCHMARK(BM_RandomForestPredict);

void BM_RandomForestPredictBatch(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(5000, 3, rng);
  ml::RandomForest rf;
  rf.fit(data);
  const features::DatasetMatrix matrix(data);
  const auto rows = matrix.all_rows();
  for (auto _ : state) {
    const auto out = rf.predict_rows(matrix, rows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_RandomForestPredictBatch)->Unit(benchmark::kMillisecond);

void BM_DatasetMatrixBuild(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(static_cast<std::size_t>(state.range(0)), 3, rng);
  for (auto _ : state) {
    const features::DatasetMatrix matrix(data);
    // Include the lazy argsort the presorted trainer relies on.
    benchmark::DoNotOptimize(matrix.sorted_order(0).data());
  }
}
BENCHMARK(BM_DatasetMatrixBuild)->Arg(5000);

void BM_KnnPredict(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(static_cast<std::size_t>(state.range(0)), 3, rng);
  ml::Knn knn(ml::KnnConfig{4});
  knn.fit(data);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.predict(data.samples[i % data.size()].features));
    ++i;
  }
}
BENCHMARK(BM_KnnPredict)->Arg(1000)->Arg(10000);

void BM_LogRegTrain(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(2000, 3, rng);
  for (auto _ : state) {
    ml::LogisticRegression lr(ml::LogRegConfig{.epochs = 30});
    lr.fit(data);
    benchmark::DoNotOptimize(lr.predict(data.samples[0].features));
  }
}
BENCHMARK(BM_LogRegTrain);

void BM_CnnTrain(benchmark::State& state) {
  Rng rng(3);
  const auto data = synthetic_dataset(1000, 3, rng);
  for (auto _ : state) {
    ml::Cnn1D cnn(ml::CnnConfig{.epochs = 10});
    cnn.fit(data);
    benchmark::DoNotOptimize(cnn.predict(data.samples[0].features));
  }
}
BENCHMARK(BM_CnnTrain);

void BM_CollectTraceLab(benchmark::State& state) {
  attacks::CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(10);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    config.seed = ++seed;
    benchmark::DoNotOptimize(attacks::collect_trace(apps::AppId::kSkype, config));
  }
  state.counters["sim_ms_per_iter"] = static_cast<double>(config.duration);
}
BENCHMARK(BM_CollectTraceLab)->Unit(benchmark::kMillisecond);

// --- thread-scaling benchmarks -------------------------------------------
// Arg pattern {work, threads}: each sets the pool size for its run and
// restores the session default after, so the ns/op across thread counts is
// the speedup curve (the outputs themselves are bit-identical by the
// determinism contract).

int g_default_threads = 0;  // set by main() after flag parsing

class ThreadArg {
 public:
  explicit ThreadArg(std::int64_t threads) { set_thread_count(static_cast<int>(threads)); }
  ~ThreadArg() { set_thread_count(g_default_threads); }
};

void BM_RandomForestTrainPar(benchmark::State& state) {
  const ThreadArg threads(state.range(1));
  Rng rng(3);
  const auto data = synthetic_dataset(static_cast<std::size_t>(state.range(0)), 3, rng);
  for (auto _ : state) {
    ml::RandomForest rf(ml::ForestConfig{.num_trees = 20});
    rf.fit(data);
    benchmark::DoNotOptimize(rf.tree_count());
  }
  state.counters["threads"] = static_cast<double>(thread_count());
}
BENCHMARK(BM_RandomForestTrainPar)
    ->Args({5000, 1})
    ->Args({5000, 2})
    ->Args({5000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DtwMatrixPar(benchmark::State& state) {
  const ThreadArg threads(state.range(1));
  Rng rng(5);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<double>> series(n);
  for (auto& s : series) {
    s.resize(180);
    for (auto& v : s) v = rng.uniform(0, 50);
  }
  dtw::DtwOptions options;
  options.band = 22;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dtw::similarity_matrix(series, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (n + 1) / 2));
  state.counters["threads"] = static_cast<double>(thread_count());
}
BENCHMARK(BM_DtwMatrixPar)->Args({24, 1})->Args({24, 2})->Args({24, 4})->Unit(benchmark::kMillisecond);

void BM_BlindDecodeBatchPar(benchmark::State& state) {
  const ThreadArg threads(state.range(1));
  Rng rng(7);
  std::vector<lte::PdcchSubframe> subframes;
  for (int i = 0; i < 3000; ++i) {
    auto sf = make_subframe(8, rng);
    sf.time = i;
    subframes.push_back(std::move(sf));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sniffer::blind_decode(subframes));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(subframes.size() * 8));
  state.counters["threads"] = static_cast<double>(thread_count());
}
BENCHMARK(BM_BlindDecodeBatchPar)->Args({0, 1})->Args({0, 2})->Args({0, 4});

void BM_CollectTracesPar(benchmark::State& state) {
  const ThreadArg threads(state.range(1));
  attacks::CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(5);
  config.seed = 100;
  const int sessions = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacks::collect_traces(apps::AppId::kSkype, sessions, config));
  }
  state.counters["threads"] = static_cast<double>(thread_count());
  state.counters["sessions"] = sessions;
}
BENCHMARK(BM_CollectTracesPar)->Args({4, 1})->Args({4, 2})->Args({4, 4})->Unit(benchmark::kMillisecond);

// --- streaming daemon benchmarks -----------------------------------------

void BM_SpscQueue(benchmark::State& state) {
  // Cross-thread transfer through a ring far smaller than the item count:
  // the measured per-item cost includes wrap-around and backpressure — the
  // daemon's per-record hand-off floor. 0 is the shutdown sentinel.
  constexpr std::size_t kBatch = 1 << 14;
  SpscQueue<std::uint64_t> q(64);
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    for (;;) {
      q.pop(v);
      if (v == 0) return;
      sum += v;
    }
  });
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) q.push(i + 1);
  }
  q.push(0);
  consumer.join();
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_SpscQueue);

/// Synthetic multi-lane arrival stream in merged (time, lane) order, plus a
/// small forest trained on same-dimension features — the daemon's inputs
/// without simulator cost.
struct StreamBenchSetup {
  std::vector<stream::StreamRecord> records;
  ml::RandomForest model{ml::ForestConfig{.num_trees = 20}};

  explicit StreamBenchSetup(std::size_t lanes, std::size_t per_lane) {
    Rng rng(11);
    model.fit(synthetic_dataset(2000, 3, rng));
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      TimeMs time = static_cast<TimeMs>(lane);
      for (std::size_t i = 0; i < per_lane; ++i) {
        if (!rng.bernoulli(0.2)) time += rng.uniform_int(1, 40);
        stream::StreamRecord r;
        r.lane = lane;
        r.record.time = time;
        r.record.rnti = static_cast<lte::Rnti>(100 + lane);
        r.record.direction =
            rng.bernoulli(0.6) ? lte::Direction::kDownlink : lte::Direction::kUplink;
        r.record.tb_bytes = static_cast<int>(rng.uniform_int(16, 3000));
        r.record.cell = 1;
        records.push_back(r);
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const stream::StreamRecord& a, const stream::StreamRecord& b) {
                       return a.record.time != b.record.time ? a.record.time < b.record.time
                                                             : a.lane < b.lane;
                     });
  }
};

void BM_StreamIngest(benchmark::State& state) {
  // End-to-end daemon throughput (records ingested -> verdicts merged) at
  // 1/2/4 workers over 8 lanes; ns/op across the Args is the scaling curve.
  const StreamBenchSetup setup(8, 2000);
  stream::StreamConfig config;
  config.workers = static_cast<int>(state.range(0));
  config.emit_window_verdicts = true;
  std::size_t verdicts = 0;
  for (auto _ : state) {
    stream::VectorSource source(setup.records);
    stream::CollectorSink sink;
    stream::StreamDaemon daemon(setup.model, config);
    const stream::StreamStats stats = daemon.run(source, sink);
    verdicts = sink.verdicts().size();
    benchmark::DoNotOptimize(stats.records);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(setup.records.size()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(setup.records.size() *
                                               sizeof(sniffer::TraceRecord)));
  state.counters["verdicts"] = static_cast<double>(verdicts);
}
BENCHMARK(BM_StreamIngest)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_StreamVerdictLatency(benchmark::State& state) {
  // Decision latency distribution (window_end - last record, sim time) per
  // full daemon pass; the acceptance gate is p99 under one subframe batch.
  const StreamBenchSetup setup(8, 2000);
  stream::StreamConfig config;
  config.workers = 2;
  stream::StreamStats stats;
  for (auto _ : state) {
    stream::VectorSource source(setup.records);
    stream::CollectorSink sink;
    stream::StreamDaemon daemon(setup.model, config);
    stats = daemon.run(source, sink);
    benchmark::DoNotOptimize(stats.window_verdicts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stats.window_verdicts));
  state.counters["lat_p50_ms"] = stats.latency.p50();
  state.counters["lat_p95_ms"] = stats.latency.p95();
  state.counters["lat_p99_ms"] = stats.latency.p99();
  state.counters["lat_max_ms"] = stats.latency.max();
}
BENCHMARK(BM_StreamVerdictLatency)->Unit(benchmark::kMillisecond);

// --- custom main: --json / --threads + google-benchmark ------------------

/// Console output as usual, plus a machine-readable capture of every run.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      Row row;
      row.name = r.benchmark_name();
      row.iterations = r.iterations;
      // real_accumulated_time is seconds over all iterations, independent
      // of the per-benchmark display unit.
      row.ns_per_op =
          r.iterations > 0 ? r.real_accumulated_time / static_cast<double>(r.iterations) * 1e9
                           : 0.0;
      const auto bytes = r.counters.find("bytes_per_second");
      row.bytes_per_s = bytes != r.counters.end() ? bytes->second.value : 0.0;
      const auto threads = r.counters.find("threads");
      row.threads = threads != r.counters.end() ? static_cast<int>(threads->second.value)
                                                : g_default_threads;
      rows.push_back(std::move(row));
    }
  }

  struct Row {
    std::string name;
    std::int64_t iterations = 0;
    double ns_per_op = 0.0;
    double bytes_per_s = 0.0;
    int threads = 1;
  };
  std::vector<Row> rows;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_json(const std::string& path, const std::vector<CaptureReporter::Row>& rows) {
  std::ofstream out(path, std::ios::trunc);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof(line),
                  "  {\"name\": \"%s\", \"iterations\": %lld, \"ns_per_op\": %.3f, "
                  "\"bytes_per_s\": %.1f, \"threads\": %d}%s\n",
                  json_escape(r.name).c_str(), static_cast<long long>(r.iterations),
                  r.ns_per_op, r.bytes_per_s, r.threads, i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark parses the rest.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      set_thread_count(ltefp::bench::parse_int_or(argv[++i], 0));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  g_default_threads = thread_count();

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    write_json(json_path, reporter.rows);
    std::fprintf(stderr, "wrote %zu benchmark rows to %s\n", reporter.rows.size(),
                 json_path.c_str());
  }
  return 0;
}
