// Reproduces Table VII: precision and recall of the correlation attack's
// logistic-regression contact classifier, per app and per network.
//
// Paper result shape: lab values far above real-world ones (VoIP reaching
// 1.000 precision in the lab); VoIP apps are generally easier to correlate
// than messaging; real-world precision/recall mostly .64-.87.
#include <cstdio>

#include "attacks/correlation.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "dtw/dtw.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));
  dtw::reset_kernel_counters();

  const apps::AppId kApps[] = {apps::AppId::kFacebookMessenger, apps::AppId::kWhatsApp,
                               apps::AppId::kTelegram,          apps::AppId::kFacebookCall,
                               apps::AppId::kWhatsAppCall,      apps::AppId::kSkype};
  const lte::Operator kOps[] = {lte::Operator::kLab, lte::Operator::kAtt,
                                lte::Operator::kTmobile, lte::Operator::kVerizon};

  TextTable table({"Network", "Facebook P", "R", "WhatsApp P", "R", "Telegram P", "R",
                   "Facebook Call P", "R", "WhatsApp Call P", "R", "Skype P", "R"});

  const int train_pairs = scale.correlation_runs;
  const int test_pairs = (scale.correlation_runs + 1) / 2 + 2;
  for (const lte::Operator op : kOps) {
    attacks::CorrelationConfig config;
    config.op = op;
    config.duration = scale.correlation_duration;
    config.seed = 1707 + static_cast<std::uint64_t>(op) * 997;
    std::vector<std::string> row{lte::to_string(op)};
    for (const apps::AppId app : kApps) {
      const auto metrics = attacks::correlation_attack(app, train_pairs, test_pairs, config);
      row.push_back(fmt(metrics.precision));
      row.push_back(fmt(metrics.recall));
    }
    table.add_row(std::move(row));
  }

  std::printf("%s", table.render("Table VII - correlation-attack contact classification "
                                 "(logistic regression on DTW similarity)")
                        .c_str());
  const dtw::KernelCounters dp = dtw::kernel_counters();
  std::printf("dtw kernel: %llu DP calls, %llu band cells, %llu abandoned\n",
              static_cast<unsigned long long>(dp.dp_calls),
              static_cast<unsigned long long>(dp.dp_cells),
              static_cast<unsigned long long>(dp.dp_abandoned));
  clock.report("bench_table7");
  return 0;
}
