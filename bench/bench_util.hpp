// Shared helpers for the table/figure benches: scale control and common
// experiment drivers.
//
// Every bench accepts --quick (or env LTEFP_QUICK=1) to run a reduced-size
// variant for smoke testing; the default sizes reproduce the paper's
// qualitative results in minutes on a laptop. The paper's own campaign
// (350k traces over six months) is out of scope for a bench run — what
// must match is the *shape* of each table, per DESIGN.md.
#pragma once

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/parallel.hpp"
#include "common/sim_time.hpp"

namespace ltefp::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  const char* env = std::getenv("LTEFP_QUICK");
  return env != nullptr && std::string(env) == "1";
}

struct Scale {
  int traces_per_app;
  TimeMs trace_duration;
  int correlation_runs;
  TimeMs correlation_duration;
};

inline Scale scale_for(bool quick) {
  if (quick) {
    return Scale{2, minutes(1), 3, minutes(1)};
  }
  return Scale{3, minutes(4), 10, minutes(3)};
}

/// Value of `--name value` on the command line, or "" when absent. Used by
/// the corpus-backed bench variants (`--corpus DIR`).
inline std::string flag_value(int argc, char** argv, const std::string& name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) return argv[i + 1];
  }
  return {};
}

/// Strict integer parse; returns `fallback` on malformed or trailing input.
inline int parse_int_or(const std::string& v, int fallback) {
  int n = 0;
  const char* end = v.data() + v.size();
  const auto [ptr, ec] = std::from_chars(v.data(), end, n);
  return (ec == std::errc{} && ptr == end) ? n : fallback;
}

/// Applies `--threads N` (falling back to LTEFP_THREADS / hardware) and
/// returns the active worker count. Call once at the top of main().
inline int configure_threads(int argc, char** argv) {
  const std::string v = flag_value(argc, argv, "--threads");
  if (!v.empty()) set_thread_count(parse_int_or(v, 0));
  return thread_count();
}

/// Wall-clock timer for whole-bench runs. report() prints elapsed seconds
/// and the active thread count, so the same table bench is directly
/// comparable across `--threads` configurations (the per-table numbers
/// themselves are bit-identical by the determinism contract).
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  double elapsed_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  void report(const char* label) const {
    std::fprintf(stderr, "[%s] wall-clock %.2f s (threads=%d)\n", label, elapsed_s(),
                 thread_count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ltefp::bench
