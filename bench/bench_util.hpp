// Shared helpers for the table/figure benches: scale control and common
// experiment drivers.
//
// Every bench accepts --quick (or env LTEFP_QUICK=1) to run a reduced-size
// variant for smoke testing; the default sizes reproduce the paper's
// qualitative results in minutes on a laptop. The paper's own campaign
// (350k traces over six months) is out of scope for a bench run — what
// must match is the *shape* of each table, per DESIGN.md.
#pragma once

#include <cstdlib>
#include <string>

#include "common/sim_time.hpp"

namespace ltefp::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  const char* env = std::getenv("LTEFP_QUICK");
  return env != nullptr && std::string(env) == "1";
}

struct Scale {
  int traces_per_app;
  TimeMs trace_duration;
  int correlation_runs;
  TimeMs correlation_duration;
};

inline Scale scale_for(bool quick) {
  if (quick) {
    return Scale{2, minutes(1), 3, minutes(1)};
  }
  return Scale{3, minutes(4), 10, minutes(3)};
}

/// Value of `--name value` on the command line, or "" when absent. Used by
/// the corpus-backed bench variants (`--corpus DIR`).
inline std::string flag_value(int argc, char** argv, const std::string& name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == name) return argv[i + 1];
  }
  return {};
}

}  // namespace ltefp::bench
