// Reproduces Table V: the history attack on a T-Mobile-like network.
//
// Trains the fingerprinting pipeline, then lets a victim roam a 12-visit
// itinerary across three sniffed cell zones over "three days" of activity.
// The attack reconstructs (zone, time span, app) purely from the sniffers'
// identity-mapped captures. Paper result shape: 10/12 visits correctly
// identified (83% success rate), with predictions becoming unstable when
// the per-visit vote confidence drops below ~70%.
#include <cstdio>

#include "attacks/history.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bool quick = bench::quick_mode(argc, argv);
  const bench::Scale scale = bench::scale_for(quick);

  std::printf("Training fingerprinting pipeline on the T-Mobile profile...\n");
  attacks::PipelineConfig pipe_config;
  pipe_config.op = lte::Operator::kTmobile;
  pipe_config.traces_per_app = scale.traces_per_app;
  pipe_config.trace_duration = scale.trace_duration;
  pipe_config.seed = 1505;
  attacks::FingerprintPipeline pipeline(pipe_config);
  pipeline.train(attacks::build_dataset(pipe_config));

  attacks::HistoryConfig config;
  config.op = lte::Operator::kTmobile;
  config.zones = 3;
  config.seed = 505;
  config.itinerary = attacks::HistoryAttack::default_itinerary(config.seed);
  if (quick) {
    for (auto& visit : config.itinerary) visit.duration = minutes(1.5);
  }

  const attacks::HistoryAttack attack(pipeline);
  const attacks::HistoryResult result = attack.run(config);

  TextTable table({"Location", "Start", "End", "Duration", "Category", "F-score",
                   "Prediction", "Truth", "Result"});
  for (const auto& obs : result.observations) {
    const char zone_letter = static_cast<char>('A' + obs.zone);
    table.add_row({std::string("Zone ") + zone_letter + "'", format_hms(obs.start),
                   format_hms(obs.end), format_hms(obs.end - obs.start),
                   apps::to_string(obs.predicted_category), fmt_pct(obs.f_score),
                   apps::to_string(obs.predicted_app), apps::to_string(obs.true_app),
                   obs.correct ? "TRUE" : "FALSE"});
  }
  std::printf("%s", table.render("Table V - history attack").c_str());
  std::printf("Success rate: %s (paper: 83%% over 12 attempts)\n",
              fmt_pct(result.success_rate).c_str());
  clock.report("bench_table5");
  return 0;
}
