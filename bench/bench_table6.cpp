// Reproduces Table VI: DTW similarity scores D(T_w, T_a) of captured
// traffic-trace pairs for communicating users, per app and per network.
//
// Paper result shape: similarity .61-.93; lab pairs score higher than
// real-world pairs; within real networks, apps generating less traffic
// score lower (the paper's own observation).
#include <cstdio>

#include "attacks/correlation.hpp"
#include "bench/bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dtw/dtw.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));
  dtw::reset_kernel_counters();

  const apps::AppId kApps[] = {apps::AppId::kFacebookMessenger, apps::AppId::kWhatsApp,
                               apps::AppId::kTelegram,          apps::AppId::kFacebookCall,
                               apps::AppId::kWhatsAppCall,      apps::AppId::kSkype};
  const lte::Operator kOps[] = {lte::Operator::kLab, lte::Operator::kAtt,
                                lte::Operator::kTmobile, lte::Operator::kVerizon};

  TextTable table({"Network", "Facebook", "STD", "WhatsApp", "STD", "Telegram", "STD",
                   "Facebook Call", "STD", "WhatsApp Call", "STD", "Skype", "STD"});
  std::vector<RunningStats> per_app_stats(6);
  for (const lte::Operator op : kOps) {
    attacks::CorrelationConfig config;
    config.op = op;
    config.duration = scale.correlation_duration;
    config.seed = 1606 + static_cast<std::uint64_t>(op) * 131;
    std::vector<std::string> row{lte::to_string(op)};
    for (std::size_t a = 0; a < 6; ++a) {
      const auto stats = attacks::measure_similarity(kApps[a], scale.correlation_runs, config);
      row.push_back(fmt(stats.mean));
      row.push_back(fmt(stats.stddev));
      per_app_stats[a].add(stats.mean);
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"Average"};
  for (const auto& s : per_app_stats) {
    avg.push_back(fmt(s.mean()));
    avg.push_back(fmt(s.stddev()));
  }
  table.add_separator();
  table.add_row(std::move(avg));

  std::printf("%s",
              table.render("Table VI - DTW similarity scores D(T_w, T_a) of paired traces")
                  .c_str());
  const dtw::KernelCounters dp = dtw::kernel_counters();
  std::printf("dtw kernel: %llu DP calls, %llu band cells, %llu abandoned\n",
              static_cast<unsigned long long>(dp.dp_calls),
              static_cast<unsigned long long>(dp.dp_cells),
              static_cast<unsigned long long>(dp.dp_abandoned));
  clock.report("bench_table6");
  return 0;
}
