// Reproduces Table IV: real-world classification (downlink only) across
// Verizon, AT&T, and T-Mobile.
//
// Paper result shape: precision/recall/F-score drop 5-30 percentage points
// vs the lab (Table III) — F-scores .74-.91 — but every app remains
// identifiable with sufficient confidence. One model is trained per
// operator, as the paper does.
#include <cstdio>

#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));

  TextTable table({"Category", "Mobile App", "Verizon F", "P", "R", "AT&T F", "P", "R",
                   "T-Mobile F", "P", "R"});

  std::vector<std::vector<attacks::AppScore>> columns;
  for (const lte::Operator op :
       {lte::Operator::kVerizon, lte::Operator::kAtt, lte::Operator::kTmobile}) {
    attacks::PipelineConfig config;
    config.op = op;
    config.link = lte::LinkFilter::kDownlinkOnly;  // paper: "Downlink Only"
    config.traces_per_app = scale.traces_per_app;
    config.trace_duration = scale.trace_duration;
    config.seed = 1404 + static_cast<std::uint64_t>(op);
    columns.push_back(attacks::run_fingerprint_experiment(config));
  }

  apps::AppCategory last_category = apps::AppCategory::kVoip;
  for (int i = 0; i < apps::kNumApps; ++i) {
    const apps::AppId app = apps::kAllApps[static_cast<std::size_t>(i)];
    if (i > 0 && apps::category_of(app) != last_category) table.add_separator();
    last_category = apps::category_of(app);
    std::vector<std::string> row{apps::to_string(last_category), apps::to_string(app)};
    for (const auto& column : columns) {
      const attacks::AppScore& s = column[static_cast<std::size_t>(i)];
      row.push_back(fmt(s.f_score));
      row.push_back(fmt(s.precision));
      row.push_back(fmt(s.recall));
    }
    table.add_row(std::move(row));
  }

  std::printf(
      "%s",
      table.render("Table IV - real-world classification, downlink only (Random Forest)")
          .c_str());
  clock.report("bench_table4");
  return 0;
}
