// Design-choice ablations called out in DESIGN.md:
//   1. sliding-window size (the paper "set the time window as 100 ms
//      empirically" — we sweep it);
//   2. hierarchical (category -> app) vs flat 9-way Random Forest;
//   3. forest size (the paper fixes 100 trees).
#include <cstdio>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "ml/importance.hpp"
#include "ml/random_forest.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));

  // One shared pool of raw traces, re-windowed per ablation point.
  attacks::CollectConfig collect;
  collect.op = lte::Operator::kTmobile;
  collect.duration = scale.trace_duration;
  collect.seed = 3333;
  std::vector<attacks::CollectedTrace> traces;
  for (const apps::AppId app : apps::kAllApps) {
    for (auto& t : attacks::collect_traces(app, scale.traces_per_app, collect)) {
      traces.push_back(std::move(t));
    }
  }

  // --- 1. Window-size sweep.
  TextTable window_table({"Window (ms)", "Windows", "Weighted F", "Accuracy"});
  for (const TimeMs window_ms : {25, 50, 100, 200, 400, 1000}) {
    features::WindowConfig window;
    window.window_ms = window_ms;
    const features::Dataset data = attacks::dataset_from_traces(traces, window);
    Rng rng(7);
    auto [train, test] = features::train_test_split(data, 0.8, rng);
    attacks::PipelineConfig config;
    config.window_ms = window_ms;
    attacks::FingerprintPipeline pipeline(config);
    pipeline.train(train);
    const ml::ConfusionMatrix cm = pipeline.evaluate(test);
    window_table.add_row({std::to_string(window_ms), std::to_string(data.size()),
                          fmt(cm.weighted_f_score()), fmt(cm.accuracy())});
  }
  std::printf("%s", window_table.render("Ablation 1 - sliding-window size").c_str());

  // --- 2. Hierarchical vs flat, and 3. tree count, on the 100 ms windows.
  const features::Dataset data = attacks::dataset_from_traces(traces, features::WindowConfig{});
  Rng rng(8);
  auto [train, test] = features::train_test_split(data, 0.8, rng);

  TextTable model_table({"Model", "Weighted F", "Accuracy"});
  {
    attacks::FingerprintPipeline hierarchical{attacks::PipelineConfig{}};
    hierarchical.train(train);
    const auto cm = hierarchical.evaluate(test);
    model_table.add_row({"hierarchical RF (category->app)", fmt(cm.weighted_f_score()),
                         fmt(cm.accuracy())});
  }
  for (const int trees : {10, 50, 100, 200}) {
    ml::RandomForest flat(ml::ForestConfig{.num_trees = trees});
    flat.fit(train);
    ml::ConfusionMatrix cm(apps::kNumApps);
    for (const auto& s : test.samples) cm.add(s.label, flat.predict(s.features));
    model_table.add_row({"flat 9-way RF, " + std::to_string(trees) + " trees",
                         fmt(cm.weighted_f_score()), fmt(cm.accuracy())});
  }
  std::printf("%s", model_table.render("Ablations 2+3 - classifier structure").c_str());

  // --- 4. Which Table-II features carry the fingerprint?
  {
    ml::RandomForest rf(ml::ForestConfig{.num_trees = 60});
    rf.fit(train);
    features::Dataset probe = test;
    if (probe.samples.size() > 1500) probe.samples.resize(1500);
    const auto ranked = ml::permutation_importance(rf, probe, 2, 99);
    TextTable importance_table({"Rank", "Feature", "Accuracy drop when permuted"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
      importance_table.add_row({std::to_string(i + 1), ranked[i].name,
                                fmt(ranked[i].importance)});
    }
    std::printf("%s",
                importance_table.render("Ablation 4 - permutation feature importance").c_str());
  }
  clock.report("bench_ablation");
  return 0;
}
