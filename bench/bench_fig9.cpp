// Reproduces Figure 9: impact of noise traffic from background apps.
//
// The classifier is trained on single-app traces, then tested on traces
// where the victim UE runs 0-10 extra apps in the background (rotated
// every 3-4 s from a top-free-apps pool, as in the paper). The paper
// reports a 3-13% F-score drop per 10K added noise instances, with
// identification becoming impossible (<= 0.6) past ~30K instances.
#include <cstdio>

#include <algorithm>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bool quick = bench::quick_mode(argc, argv);
  const bench::Scale scale = bench::scale_for(quick);

  attacks::PipelineConfig config;
  config.op = lte::Operator::kTmobile;
  config.traces_per_app = scale.traces_per_app;
  config.trace_duration = scale.trace_duration;
  config.seed = 2010;
  config.session_day_range = 0;

  std::printf("Training on clean single-app traces (T-Mobile)...\n");
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(attacks::build_dataset(config));

  const features::WindowConfig window = pipeline.window_config();
  TextTable table({"Background apps", "Noise instances (K)", "YouTube window F",
                   "Trace verdict", "Identifiable?"});
  const int background_counts[] = {0, 1, 2, 3, 5, 8, 10};
  double baseline_instances = -1.0;
  for (const int bg : background_counts) {
    attacks::CollectConfig collect;
    collect.op = config.op;
    collect.duration = quick ? minutes(1.5) : minutes(4);
    collect.background_apps = bg;

    // Test windows come from YouTube sessions polluted by `bg` apps.
    ml::ConfusionMatrix cm(apps::kNumApps);
    std::size_t noise_instances = 0;
    attacks::TraceVerdict last_verdict;
    const int sessions = quick ? 2 : 3;
    for (int i = 0; i < sessions; ++i) {
      collect.seed = 4000 + 31ULL * static_cast<std::uint64_t>(bg) + static_cast<std::uint64_t>(i);
      const attacks::CollectedTrace capture =
          attacks::collect_trace(apps::AppId::kYoutube, collect);
      features::Dataset test;
      features::append_windows(test, capture.trace, capture.session_start, window,
                               static_cast<int>(apps::AppId::kYoutube));
      for (const auto& s : test.samples) {
        cm.add(s.label, pipeline.predict_window(s.features));
      }
      // Rough proxy for the paper's "instances": records beyond what the
      // clean app itself would produce.
      noise_instances += capture.trace.size();
      last_verdict = pipeline.classify_trace(capture.trace, capture.session_start);
    }
    const double f = cm.f_score(static_cast<int>(apps::AppId::kYoutube));
    if (baseline_instances < 0) baseline_instances = static_cast<double>(noise_instances);
    const double noise_only =
        std::max(0.0, static_cast<double>(noise_instances) - baseline_instances);
    table.add_row({std::to_string(bg), fmt(noise_only / 1000.0, 1), fmt(f),
                   apps::to_string(last_verdict.app),
                   f > 0.6 ? "yes" : "NO (below 0.6 floor)"});
  }
  std::printf("%s",
              table.render("Figure 9 - F-score vs background-app noise (train: single app)")
                  .c_str());
  std::printf("Paper shape: monotone drop, unusable once noise exceeds ~30K instances.\n");
  clock.report("bench_fig9");
  return 0;
}
