// Reproduces Table VIII: performance comparison of learning algorithms on
// a mixed real-world 3-class dataset (Streaming / Calling / Messenger).
//
// Hyper-parameters follow the paper: LR C = 1; kNN k selected by
// cross-validation over 1..10 (paper: k = 4); CNN with softmax
// cross-entropy; RF with 100 trees, seed 1; 80/20 train/test split.
// Paper result shape: RF (.821) > kNN (.735) > LR (.698) ~ CNN (.677).
#include <cstdio>
#include <memory>

#include "attacks/pipeline.hpp"
#include "bench/bench_util.hpp"
#include "common/table.hpp"
#include "ml/cnn.hpp"
#include "ml/knn.hpp"
#include "ml/logreg.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

using namespace ltefp;

namespace {

/// Relabels the 9-app dataset to the 3 coarse categories.
features::Dataset to_category_dataset(const features::Dataset& apps_data) {
  features::Dataset out;
  out.feature_names = apps_data.feature_names;
  out.label_names = {"Streaming", "Calling", "Messenger"};
  for (const auto& s : apps_data.samples) {
    const auto category = apps::category_of(static_cast<apps::AppId>(s.label));
    // Table ordering: Streaming, Calling (VoIP), Messenger.
    int label = 0;
    if (category == apps::AppCategory::kVoip) label = 1;
    if (category == apps::AppCategory::kMessaging) label = 2;
    out.add(s.features, label);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ltefp::bench::configure_threads(argc, argv);
  const ltefp::bench::WallClock clock;
  const bench::Scale scale = bench::scale_for(bench::quick_mode(argc, argv));

  // Mixed real-world dataset (the paper mixes per-class app data from its
  // commercial-network captures).
  attacks::PipelineConfig config;
  config.op = lte::Operator::kTmobile;
  config.traces_per_app = scale.traces_per_app;
  config.trace_duration = scale.trace_duration;
  config.seed = 1808;
  // The paper's mixed real-world set comes from everyday device usage:
  // several apps run alongside the labeled one, and captures span the
  // whole six-month campaign.
  config.background_apps = 3;
  config.session_day_range = 45;
  const features::Dataset dataset = to_category_dataset(attacks::build_dataset(config));
  std::printf("Dataset: %zu windows, 3 classes\n", dataset.size());

  Rng rng(config.seed);
  auto [train, test] = features::train_test_split(dataset, 0.8, rng);

  // kNN: select k by cross-validation over 1..10, as the paper does. Use a
  // subsample for the sweep to keep the O(n^2) affordable.
  features::Dataset cv_subset = train;
  if (cv_subset.samples.size() > 3000) cv_subset.samples.resize(3000);
  const int best_k = ml::select_k_by_cross_validation(cv_subset, 10, 5, 99);

  std::vector<std::unique_ptr<ml::Classifier>> models;
  models.push_back(std::make_unique<ml::LogisticRegression>(ml::LogRegConfig{.c = 1.0}));
  models.push_back(std::make_unique<ml::Knn>(ml::KnnConfig{best_k}));
  models.push_back(std::make_unique<ml::Cnn1D>());
  models.push_back(std::make_unique<ml::RandomForest>());

  TextTable table({"Algorithm", "Streaming", "Calling", "Messenger", "Average (weighted)"});
  for (const auto& model : models) {
    model->fit(train);
    ml::ConfusionMatrix cm(3);
    for (const auto& s : test.samples) cm.add(s.label, model->predict(s.features));
    table.add_row({model->name(), fmt(cm.recall(0)), fmt(cm.recall(1)), fmt(cm.recall(2)),
                   fmt(cm.accuracy())});
  }
  std::printf("%s", table.render("Table VIII - algorithm comparison (3-class, mixed "
                                 "real-world dataset, 80/20 split)")
                        .c_str());
  std::printf("Parameters: LR C=1; kNN k=%d (CV over 1..10); CNN softmax cross-entropy; "
              "RF 100 trees, seed 1\n",
              best_k);
  clock.report("bench_table8");
  return 0;
}
