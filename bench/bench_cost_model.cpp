// Evaluates the analytical attacker cost model (Section VII-D,
// Equations 2-3) with the drift period measured by the Figure 8
// experiment: performance decays below the 70% threshold around day 7, so
// the attacker amortises a full re-collection + re-training every 7 days.
#include <cstdio>

#include "attacks/cost.hpp"
#include "common/table.hpp"

using namespace ltefp;

int main() {
  attacks::CostModelParams params;
  params.training_apps = 9;       // the paper's app set
  params.app_versions = 2;        // versions distinct enough to matter
  params.instances_per_app = 10;  // paper: 10 collection repetitions
  params.victims = 3;
  params.apps_per_victim = 3.0;
  params.performance_threshold = 0.70;
  params.drift_period_days = 7;   // from Figure 8

  const attacks::CostModel model(params);

  TextTable table({"Cost component", "Symbol", "Work units"});
  table.add_row({"Recorded instances", "A_n = A_t x A_v x A_i",
                 std::to_string(model.recorded_instances())});
  table.add_row({"Collecting", "Col_cost(A_n)", fmt(model.collecting_cost(), 1)});
  table.add_row({"Training", "Train_cost(A_n, F_m, T_c)", fmt(model.training_cost(), 1)});
  table.add_row({"Identification", "Col_cost(T_d) + Id_cost(T_d, F_m, T_c)",
                 fmt(model.identification_cost(), 1)});
  table.add_row({"Perf() total (Eq. 2)", "", fmt(model.perf_cost(), 1)});
  table.add_row({"Retraining, amortised/day", "Retrain_cost / D",
                 fmt(model.retraining_cost() / params.drift_period_days, 1)});
  std::printf("%s", table.render("Attacker cost model (Eq. 2)").c_str());

  TextTable horizon({"Horizon (days)", "Classifier F", "Total cost (Eq. 3)",
                     "Retraining included?"});
  for (const int days : {7, 30, 90, 180}) {
    for (const double perf : {0.85, 0.65}) {
      const attacks::CostBreakdown b = model.total_cost(perf, days);
      horizon.add_row({std::to_string(days), fmt(perf, 2), fmt(b.total, 1),
                       perf < params.performance_threshold ? "yes (Perf < X)" : "no"});
    }
  }
  std::printf("%s", horizon.render("Sustained-attack cost (Eq. 3)").c_str());
  std::printf("An attacker below the %0.0f%% threshold pays %.1f units/day to sustain "
              "city-scale monitoring - well within a small organisation's budget, as the "
              "paper argues.\n",
              params.performance_threshold * 100.0,
              model.retraining_cost() / params.drift_period_days);
  return 0;
}
