#include "lte/enb.hpp"

#include <gtest/gtest.h>

#include "lte/crc.hpp"
#include "lte/operator_profile.hpp"

namespace ltefp::lte {
namespace {

Enb make_enb(Operator op = Operator::kLab) {
  EnbConfig config;
  config.cell = 1;
  config.profile = operator_profile(op);
  return Enb(config, Rng(77));
}

/// Steps the eNB until the UE connects; returns the elapsed subframes.
int connect_ue(Enb& enb, UeId ue, Tmsi tmsi, TimeMs& now) {
  enb.start_connection(ue, tmsi, now);
  for (int i = 0; i < 30; ++i) {
    const auto result = enb.step(now++);
    if (!result.established.empty()) return i;
  }
  ADD_FAILURE() << "connection never completed";
  return -1;
}

TEST(Enb, ContentionBasedConnectionSequence) {
  Enb enb = make_enb();
  TimeMs now = 0;
  enb.start_connection(10, 0xAABBCCDD, now);

  bool saw_rach = false, saw_rar = false, saw_request = false, saw_setup = false;
  Rnti assigned = 0;
  for (int i = 0; i < 20 && !saw_setup; ++i) {
    const auto result = enb.step(now++);
    if (!result.rach.empty()) {
      saw_rach = true;
      EXPECT_FALSE(saw_rar) << "Msg1 must precede Msg2";
    }
    if (!result.rars.empty()) {
      saw_rar = true;
      assigned = result.rars[0].assigned_rnti;
      EXPECT_TRUE(saw_rach);
    }
    if (!result.rrc_requests.empty()) {
      saw_request = true;
      EXPECT_TRUE(saw_rar);
      EXPECT_EQ(result.rrc_requests[0].s_tmsi, 0xAABBCCDD);  // plain-text S-TMSI
      EXPECT_EQ(result.rrc_requests[0].rnti, assigned);
    }
    if (!result.rrc_setups.empty()) {
      saw_setup = true;
      EXPECT_TRUE(saw_request);
      // Contention resolution identity echoes the request.
      EXPECT_EQ(result.rrc_setups[0].contention_resolution_identity, 0xAABBCCDD);
      ASSERT_FALSE(result.established.empty());
      EXPECT_EQ(result.established[0].ue, 10u);
      EXPECT_EQ(result.established[0].rnti, assigned);
      // Msg4 rides on a DL DCI addressed to the new C-RNTI.
      bool found_msg4_dci = false;
      for (const auto& enc : result.pdcch.dcis) {
        if (recover_rnti(enc.payload, enc.masked_crc) == assigned) found_msg4_dci = true;
      }
      EXPECT_TRUE(found_msg4_dci);
    }
  }
  EXPECT_TRUE(saw_setup);
  EXPECT_TRUE(enb.is_connected(10));
  EXPECT_EQ(enb.rnti_of(10), assigned);
}

TEST(Enb, HandoverAdmissionSkipsMsg3) {
  Enb enb = make_enb();
  TimeMs now = 0;
  enb.admit_handover(5, 0x11112222, now);
  bool established = false;
  for (int i = 0; i < 10; ++i) {
    const auto result = enb.step(now++);
    EXPECT_TRUE(result.rrc_requests.empty()) << "contention-free RACH has no Msg3";
    EXPECT_TRUE(result.rrc_setups.empty());
    if (!result.established.empty()) {
      established = true;
      break;
    }
  }
  EXPECT_TRUE(established);
  EXPECT_TRUE(enb.is_connected(5));
}

TEST(Enb, DuplicateConnectionRequestsIgnored) {
  Enb enb = make_enb();
  TimeMs now = 0;
  enb.start_connection(1, 0xAA, now);
  enb.start_connection(1, 0xAA, now);  // duplicate while connecting
  int established = 0;
  for (int i = 0; i < 20; ++i) {
    established += static_cast<int>(enb.step(now++).established.size());
  }
  EXPECT_EQ(established, 1);
  enb.start_connection(1, 0xAA, now);  // already connected
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(enb.step(now++).established.empty());
  }
}

TEST(Enb, TrafficProducesDcisAndDrainsBuffer) {
  Enb enb = make_enb();
  TimeMs now = 0;
  connect_ue(enb, 1, 0xAA, now);
  const Rnti rnti = *enb.rnti_of(1);

  enb.push_traffic(1, Direction::kDownlink, 10'000, now);
  enb.push_traffic(1, Direction::kUplink, 4'000, now);
  long long dl_tbs = 0, ul_tbs = 0;
  for (int i = 0; i < 200; ++i) {
    const auto result = enb.step(now++);
    for (const auto& enc : result.pdcch.dcis) {
      if (recover_rnti(enc.payload, enc.masked_crc) != rnti) continue;
      const auto dci = decode_dci_fields(enc);
      ASSERT_TRUE(dci.has_value());
      if (dci->direction == Direction::kDownlink) {
        dl_tbs += dci->tb_bytes();
      } else {
        ul_tbs += dci->tb_bytes();
      }
    }
  }
  EXPECT_GE(dl_tbs, 10'000);  // TBS padding means >= payload
  EXPECT_GE(ul_tbs, 4'000);
  EXPECT_LT(dl_tbs, 10'000 + 3000) << "padding should be bounded";
}

TEST(Enb, InactivityReleasesRntiAndEmitsRrcRelease) {
  Enb enb = make_enb();  // lab profile: 10 s timeout
  TimeMs now = 0;
  connect_ue(enb, 1, 0xAA, now);
  const Rnti rnti = *enb.rnti_of(1);

  bool released = false;
  for (int i = 0; i < 11'000 && !released; ++i) {
    const auto result = enb.step(now++);
    if (!result.rrc_releases.empty()) {
      EXPECT_EQ(result.rrc_releases[0].rnti, rnti);
      ASSERT_FALSE(result.released.empty());
      EXPECT_EQ(result.released[0], 1u);
      released = true;
    }
  }
  EXPECT_TRUE(released);
  EXPECT_FALSE(enb.is_connected(1));
  EXPECT_GE(now, operator_profile(Operator::kLab).inactivity_timeout);
}

TEST(Enb, ActivityRefreshesInactivityTimer) {
  Enb enb = make_enb();
  TimeMs now = 0;
  connect_ue(enb, 1, 0xAA, now);
  // Keep nudging traffic every 5 s; the 10 s timer must never fire.
  for (int burst = 0; burst < 4; ++burst) {
    enb.push_traffic(1, Direction::kUplink, 100, now);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_TRUE(enb.step(now++).released.empty());
    }
  }
  EXPECT_TRUE(enb.is_connected(1));
}

TEST(Enb, ReconnectAssignsFreshRnti) {
  Enb enb = make_enb();
  TimeMs now = 0;
  connect_ue(enb, 1, 0xAA, now);
  const Rnti first = *enb.rnti_of(1);
  enb.release_ue(1, now);
  EXPECT_FALSE(enb.is_connected(1));
  connect_ue(enb, 1, 0xAA, now);
  const Rnti second = *enb.rnti_of(1);
  EXPECT_NE(first, second) << "cooldown must prevent immediate RNTI reuse";
}

TEST(Enb, PagingEmitsPRntiDci) {
  Enb enb = make_enb();
  enb.page(0x1234);
  const auto result = enb.step(0);
  ASSERT_FALSE(result.pdcch.dcis.empty());
  EXPECT_EQ(recover_rnti(result.pdcch.dcis[0].payload, result.pdcch.dcis[0].masked_crc),
            kPagingRnti);
}

TEST(Enb, PushTrafficForUnknownUeIsIgnored) {
  Enb enb = make_enb();
  enb.push_traffic(99, Direction::kDownlink, 100, 0);  // must not crash
  const auto result = enb.step(0);
  EXPECT_TRUE(result.pdcch.dcis.empty());
}

}  // namespace
}  // namespace ltefp::lte
