// The determinism contract of common/parallel.hpp, end to end: the
// primitives themselves (coverage, ordering, exceptions, nesting), the
// seed-derivation regression pins, and bit-identity of every parallelised
// pipeline stage at 1/2/8 threads.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/collect.hpp"
#include "attacks/correlation.hpp"
#include "attacks/pipeline.hpp"
#include "attacks/replay.hpp"
#include "common/rng.hpp"
#include "dtw/dtw.hpp"
#include "lte/dci.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "sniffer/sniffer.hpp"

namespace ltefp {
namespace {

/// Restores the default pool size when a test exits, pass or fail.
struct ThreadGuard {
  ~ThreadGuard() { set_thread_count(0); }
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const ThreadGuard guard;
  for (const int threads : {1, 2, 8}) {
    set_thread_count(threads);
    for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      for (const std::size_t chunk : {0u, 1u, 3u, 64u, 2000u}) {
        std::vector<std::atomic<int>> hits(n);
        parallel_for(n, chunk, [&](std::size_t begin, std::size_t end) {
          ASSERT_LE(begin, end);
          ASSERT_LE(end, n);
          for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                       << " chunk=" << chunk << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelFor, SingleThreadRunsChunksInAscendingOrderInline) {
  const ThreadGuard guard;
  set_thread_count(1);
  std::vector<std::size_t> order;
  parallel_for(100, 7, [&](std::size_t begin, std::size_t) {
    order.push_back(begin);  // safe unsynchronised: serial by contract
    EXPECT_TRUE(in_parallel_region());
  });
  ASSERT_EQ(order.size(), 15u);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelFor, NestedRegionRunsInline) {
  const ThreadGuard guard;
  set_thread_count(8);
  std::atomic<int> inner_total{0};
  parallel_for(4, 1, [&](std::size_t begin, std::size_t end) {
    EXPECT_TRUE(in_parallel_region());
    for (std::size_t i = begin; i < end; ++i) {
      // Must not deadlock waiting for pool workers that are all busy here.
      parallel_for(10, 1, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ParallelFor, PropagatesFirstException) {
  const ThreadGuard guard;
  for (const int threads : {1, 8}) {
    set_thread_count(threads);
    EXPECT_THROW(parallel_for(100, 1,
                              [](std::size_t begin, std::size_t) {
                                if (begin == 42) throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> total{0};
    parallel_for(10, 1,
                 [&](std::size_t b, std::size_t e) { total.fetch_add(static_cast<int>(e - b)); });
    EXPECT_EQ(total.load(), 10);
  }
}

TEST(ParallelMap, OrderMatchesSerialAtAnyThreadCount) {
  const ThreadGuard guard;
  const auto square = [](std::size_t i) { return i * i; };
  set_thread_count(1);
  const auto serial = parallel_map(500, square);
  for (const int threads : {2, 8}) {
    set_thread_count(threads);
    EXPECT_EQ(parallel_map(500, square), serial) << "threads=" << threads;
  }
  ASSERT_EQ(serial.size(), 500u);
  EXPECT_EQ(serial[499], 499u * 499u);
}

TEST(ParallelConfig, SetThreadCountRoundTrips) {
  const ThreadGuard guard;
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3);
  set_thread_count(0);  // back to env/hardware default
  EXPECT_GE(thread_count(), 1);
}

// --- seed derivation pins ------------------------------------------------
// These constants define every dataset in the repo. A change here re-rolls
// all collected traces and trained forests — it must be deliberate.

TEST(SeedDerivation, SplitMixConstantsPinned) {
  EXPECT_EQ(derive_seed({}), 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(derive_seed({1}), 0xe99ff867dbf682c9ULL);
  EXPECT_EQ(derive_seed({1, 2}), 0x848a139037105040ULL);
  EXPECT_EQ(derive_seed({2, 1}), 0x2ee7471d39617aa8ULL);  // order-sensitive
}

TEST(SeedDerivation, SessionSeedPinned) {
  using attacks::session_seed;
  EXPECT_EQ(session_seed(42, static_cast<apps::AppId>(0), 0, 0), 0x126b7212c13d5e99ULL);
  EXPECT_EQ(session_seed(42, static_cast<apps::AppId>(3), 7, 2), 0xf6e5a2480ad67352ULL);
  // Negative days sign-extend; -1 must not collide with some positive day.
  EXPECT_EQ(session_seed(42, static_cast<apps::AppId>(3), 7, -1), 0x591479024413ac7fULL);
}

TEST(SeedDerivation, SessionSeedIsInjectiveAcrossNearbyCoordinates) {
  std::vector<std::uint64_t> seeds;
  for (int app = 0; app < apps::kNumApps; ++app) {
    for (int idx = 0; idx < 4; ++idx) {
      for (int day = 0; day < 3; ++day) {
        seeds.push_back(attacks::session_seed(7, static_cast<apps::AppId>(app), idx, day));
      }
    }
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// --- bit-identity of the parallelised stages -----------------------------

template <typename Fn>
auto at_threads(int threads, Fn&& fn) {
  const ThreadGuard guard;
  set_thread_count(threads);
  return fn();
}

TEST(BitIdentity, CollectTracesMatchAcrossThreadCounts) {
  attacks::CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(30);
  config.seed = 5;
  const auto collect = [&] {
    return attacks::collect_traces(apps::AppId::kWhatsApp, 4, config);
  };
  const auto base = at_threads(1, collect);
  ASSERT_EQ(base.size(), 4u);
  for (const int threads : {2, 8}) {
    const auto traces = at_threads(threads, collect);
    ASSERT_EQ(traces.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(traces[i].trace, base[i].trace) << "threads=" << threads << " session=" << i;
      EXPECT_EQ(traces[i].session_start, base[i].session_start);
      EXPECT_EQ(traces[i].rnti_count, base[i].rnti_count);
    }
  }
}

TEST(BitIdentity, RandomForestFitMatchesAcrossThreadCounts) {
  Rng rng(17);
  features::Dataset data;
  data.feature_names = features::feature_names();
  data.label_names = {"a", "b", "c"};
  for (int i = 0; i < 300; ++i) {
    features::FeatureVector x(features::kFeatureCount);
    for (auto& v : x) v = rng.normal(i % 3, 1.0);
    data.add(std::move(x), i % 3);
  }
  const auto fit_serialized = [&] {
    ml::RandomForest rf(ml::ForestConfig{.num_trees = 12, .seed = 9});
    rf.fit(data);
    std::ostringstream out;
    ml::save_forest(out, rf);
    return out.str();
  };
  const std::string base = at_threads(1, fit_serialized);
  EXPECT_EQ(at_threads(2, fit_serialized), base);
  EXPECT_EQ(at_threads(8, fit_serialized), base);
}

TEST(BitIdentity, BlindDecodeBatchMatchesSerialReference) {
  Rng rng(23);
  std::vector<lte::PdcchSubframe> subframes;
  for (int t = 0; t < 200; ++t) {
    lte::PdcchSubframe sf;
    sf.time = t;
    const int dcis = static_cast<int>(rng.uniform_int(0, 6));
    for (int i = 0; i < dcis; ++i) {
      lte::Dci dci;
      dci.direction = rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink;
      dci.rnti = static_cast<lte::Rnti>(rng.uniform_int(lte::kMinCRnti, lte::kMaxCRnti));
      dci.mcs = static_cast<std::uint8_t>(rng.uniform_int(0, 28));
      dci.nprb = static_cast<std::uint8_t>(rng.uniform_int(1, 100));
      sf.dcis.push_back(lte::encode_dci(dci));
    }
    subframes.push_back(std::move(sf));
  }
  // Serial reference straight from the pure per-DCI core.
  sniffer::Trace reference;
  for (const auto& sf : subframes) {
    for (const auto& enc : sf.dcis) {
      const auto r = sniffer::blind_decode_dci(enc, sf.time, sf.cell);
      if (r.kind == sniffer::BlindDecodeResult::Kind::kRecord) reference.push_back(r.record);
    }
  }
  for (const int threads : {1, 2, 8}) {
    const auto batch = at_threads(threads, [&] { return sniffer::blind_decode(subframes); });
    EXPECT_EQ(batch, reference) << "threads=" << threads;
  }
}

TEST(BitIdentity, DtwSimilarityMatrixMatchesAcrossThreadCounts) {
  Rng rng(31);
  std::vector<std::vector<double>> series(9);
  for (auto& s : series) {
    s.resize(40);
    for (auto& v : s) v = rng.uniform(0, 30);
  }
  dtw::DtwOptions options;
  options.band = 6;
  const auto compute = [&] { return dtw::similarity_matrix(series, options); };
  const auto base = at_threads(1, compute);
  ASSERT_EQ(base.size(), series.size() * series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(base[i * series.size() + i], 1.0);  // self-similarity
    for (std::size_t j = 0; j < series.size(); ++j) {
      EXPECT_EQ(base[i * series.size() + j], base[j * series.size() + i]);
    }
  }
  EXPECT_EQ(at_threads(2, compute), base);
  EXPECT_EQ(at_threads(8, compute), base);
}

TEST(BitIdentity, TraceSimilarityMatrixMatchesAcrossThreadCounts) {
  attacks::CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(20);
  config.seed = 3;
  const auto traces = at_threads(1, [&] {
    std::vector<sniffer::Trace> out;
    for (const auto& t : attacks::collect_traces(apps::AppId::kSkype, 3, config)) {
      out.push_back(t.trace);
    }
    return out;
  });
  const auto compute = [&] {
    return attacks::trace_similarity_matrix(traces, 0, seconds(1), config.duration);
  };
  const auto base = at_threads(1, compute);
  EXPECT_EQ(at_threads(2, compute), base);
  EXPECT_EQ(at_threads(8, compute), base);
}

TEST(BitIdentity, FingerprintExperimentMatchesAcrossThreadCounts) {
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 2;
  config.trace_duration = seconds(45);
  config.forest.num_trees = 8;
  config.seed = 13;
  const auto run = [&] { return attacks::run_fingerprint_experiment(config); };
  const auto base = at_threads(1, run);
  ASSERT_EQ(base.size(), static_cast<std::size_t>(apps::kNumApps));
  for (const int threads : {2, 8}) {
    const auto scores = at_threads(threads, run);
    ASSERT_EQ(scores.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(scores[i].app, base[i].app) << "threads=" << threads;
      EXPECT_EQ(scores[i].f_score, base[i].f_score) << "threads=" << threads;
      EXPECT_EQ(scores[i].precision, base[i].precision) << "threads=" << threads;
      EXPECT_EQ(scores[i].recall, base[i].recall) << "threads=" << threads;
    }
  }
}

TEST(BitIdentity, CorpusRecordAndParallelReplayRoundTrips) {
  const auto dir = (std::filesystem::temp_directory_path() /
                    "ltefp_test_parallel_corpus")
                       .string();
  std::filesystem::remove_all(dir);
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 1;
  config.trace_duration = seconds(20);
  config.seed = 21;
  const auto recorded = at_threads(2, [&] {
    attacks::record_corpus(config, dir);
    return attacks::collect_all_traces(config);
  });
  for (const int threads : {1, 8}) {
    const auto replayed = at_threads(threads, [&] { return attacks::load_corpus(dir, {}); });
    ASSERT_EQ(replayed.size(), recorded.size());
    for (std::size_t i = 0; i < recorded.size(); ++i) {
      EXPECT_EQ(replayed[i].app, recorded[i].app) << "threads=" << threads;
      EXPECT_EQ(replayed[i].trace, recorded[i].trace) << "threads=" << threads;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ltefp
