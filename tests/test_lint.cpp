// Tests for ltefp-lint (tools/lint/): tokenizer, every shipped rule (a
// seeded violation fires, a lint:allow suppresses), configuration parsing,
// the directory walker, and CLI exit-code semantics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace lint = ltefp::lint;
namespace fs = std::filesystem;

namespace {

std::vector<std::string> all_ids() {
  std::vector<std::string> ids;
  for (const auto* rule : lint::all_rules()) ids.push_back(rule->id());
  return ids;
}

/// Lints a snippet with every rule enabled (header-hygiene only applies
/// when the path looks like a header).
std::vector<lint::Finding> lint_cpp(std::string_view src,
                                    std::string_view path = "src/x.cpp",
                                    std::string_view sibling = {}) {
  return lint::lint_source(path, src, all_ids(), sibling);
}

bool has_rule(const std::vector<lint::Finding>& fs, std::string_view rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenizer

TEST(Lexer, ClassifiesAndCountsLines) {
  const auto toks = lint::lex("int a = 1;\n// note\ndouble b = 2.5;\n");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, lint::TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1);
  // The comment is its own token on line 2.
  bool saw_comment = false;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::kComment) {
      EXPECT_EQ(t.line, 2);
      EXPECT_EQ(t.text, "// note");
      saw_comment = true;
    }
  }
  EXPECT_TRUE(saw_comment);
}

TEST(Lexer, CodeInsideStringsAndCommentsIsNotCode) {
  // rand( appears only inside a string, a char-ish string, a line comment,
  // and a block comment: the determinism rule must stay silent.
  const auto findings = lint_cpp(
      "const char* s = \"rand()\";\n"
      "// rand()\n"
      "/* std::random_device d; */\n"
      "const char* r = R\"(time(nullptr))\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Lexer, RawStringsWithDelimiters) {
  const auto toks = lint::lex("auto s = R\"xx(a \" )\" rand() )xx\";\nint z;\n");
  bool saw_string = false;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::kString) saw_string = true;
    EXPECT_NE(t.text, "rand");
  }
  EXPECT_TRUE(saw_string);
  EXPECT_EQ(toks.back().line, 2);
}

TEST(Lexer, PreprocessorLinesAreSingleTokens) {
  const auto toks = lint::lex("#define F(x) \\\n  ((x) + 1)\nint after;\n");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, lint::TokKind::kPreproc);
  // The continuation folds into the directive; `after` is on line 3.
  EXPECT_EQ(toks[1].text, "int");
  EXPECT_EQ(toks[1].line, 3);
}

TEST(Lexer, FloatLiteralClassification) {
  EXPECT_TRUE(lint::is_float_literal("1.0"));
  EXPECT_TRUE(lint::is_float_literal("0.5f"));
  EXPECT_TRUE(lint::is_float_literal(".25"));
  EXPECT_TRUE(lint::is_float_literal("1e9"));
  EXPECT_TRUE(lint::is_float_literal("0x1.8p3"));
  EXPECT_FALSE(lint::is_float_literal("42"));
  EXPECT_FALSE(lint::is_float_literal("0x1E"));  // hex digit E is not an exponent
  EXPECT_FALSE(lint::is_float_literal("100ULL"));
}

TEST(Lexer, MultiCharOperatorsStayWhole) {
  const auto toks = lint::lex("a == b; c != d; e::f; g->h;");
  std::vector<std::string> ops;
  for (const auto& t : toks) {
    if (t.kind == lint::TokKind::kPunct && t.text.size() > 1) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"==", "!=", "::", "->"}));
}

// ---------------------------------------------------------------------------
// determinism

TEST(DeterminismRule, FiresOnSeededViolations) {
  EXPECT_TRUE(has_rule(lint_cpp("int x = std::rand();\n"), "determinism"));
  EXPECT_TRUE(has_rule(lint_cpp("srand(42);\n"), "determinism"));
  EXPECT_TRUE(has_rule(lint_cpp("std::random_device rd;\n"), "determinism"));
  EXPECT_TRUE(
      has_rule(lint_cpp("auto t = std::chrono::steady_clock::now();\n"), "determinism"));
  EXPECT_TRUE(
      has_rule(lint_cpp("auto t = high_resolution_clock::now();\n"), "determinism"));
  EXPECT_TRUE(has_rule(lint_cpp("std::time_t t = time(nullptr);\n"), "determinism"));
}

TEST(DeterminismRule, IgnoresMemberFunctionsNamedLikeBannedCalls) {
  // sim.time() / obj->clock() are project accessors, not libc calls.
  EXPECT_FALSE(has_rule(lint_cpp("auto t = sim.time();\n"), "determinism"));
  EXPECT_FALSE(has_rule(lint_cpp("auto t = obj->clock();\n"), "determinism"));
  // A variable merely named `time` is not a call.
  EXPECT_FALSE(has_rule(lint_cpp("TimeMs time = 0;\n"), "determinism"));
}

TEST(DeterminismRule, SuppressedByAllow) {
  EXPECT_FALSE(has_rule(
      lint_cpp("int x = std::rand();  // lint:allow(determinism) — test shim\n"),
      "determinism"));
  // A standalone allow-comment covers the following line.
  EXPECT_FALSE(has_rule(lint_cpp("// lint:allow(determinism) — seeding the fixture\n"
                                 "int x = std::rand();\n"),
                        "determinism"));
  // ...but only the following line, not the whole file.
  EXPECT_TRUE(has_rule(lint_cpp("// lint:allow(determinism)\n"
                                "int ok = 0;\n"
                                "int x = std::rand();\n"),
                       "determinism"));
}

// ---------------------------------------------------------------------------
// ordered-iteration

TEST(OrderedIterationRule, FiresOnRangeForOverUnorderedMember) {
  const auto findings = lint_cpp(
      "std::unordered_map<int, double> scores_;\n"
      "void dump() {\n"
      "  for (const auto& [k, v] : scores_) emit(k, v);\n"
      "}\n");
  ASSERT_TRUE(has_rule(findings, "ordered-iteration"));
  EXPECT_EQ(findings[0].line, 3);
}

TEST(OrderedIterationRule, FindsDeclarationsInSiblingHeader) {
  // The member lives in the paired header; the .cpp only iterates it.
  const std::string header = "struct S { std::unordered_set<int> seen_; };\n";
  const auto findings = lint_cpp("void S::dump() { for (int v : seen_) emit(v); }\n",
                                 "src/s.cpp", header);
  EXPECT_TRUE(has_rule(findings, "ordered-iteration"));
}

TEST(OrderedIterationRule, OrderedContainersAndLookupsAreFine) {
  EXPECT_FALSE(has_rule(lint_cpp("std::map<int, int> m_;\n"
                                 "void dump() { for (auto& [k, v] : m_) emit(k); }\n"),
                        "ordered-iteration"));
  // Lookups into an unordered container do not fire; only iteration does.
  EXPECT_FALSE(has_rule(lint_cpp("std::unordered_map<int, int> m_;\n"
                                 "int get(int k) { return m_.at(k); }\n"),
                        "ordered-iteration"));
  // A classic indexed for over a vector is fine.
  EXPECT_FALSE(has_rule(lint_cpp("std::vector<int> v_;\n"
                                 "void f() { for (std::size_t i = 0; i < v_.size(); ++i) g(i); }\n"),
                        "ordered-iteration"));
}

TEST(OrderedIterationRule, SuppressedByAllow) {
  EXPECT_FALSE(has_rule(
      lint_cpp("std::unordered_map<int, int> m_;\n"
               "void f() {\n"
               "  // lint:allow(ordered-iteration) — result is sorted below\n"
               "  for (auto& [k, v] : m_) out.push_back(k);\n"
               "}\n"),
      "ordered-iteration"));
}

TEST(OrderedIterationRule, FlagsAoSSamplesLoopInMlHotPath) {
  const std::string src =
      "void fit(const Dataset& train) {\n"
      "  for (const auto& s : train.samples) use(s.features);\n"
      "}\n";
  const auto findings = lint_cpp(src, "src/ml/model.cpp");
  ASSERT_TRUE(has_rule(findings, "ordered-iteration"));
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("DatasetMatrix"), std::string::npos);
}

TEST(OrderedIterationRule, SamplesLoopOutsideMlIsFine) {
  // Collection/feature-extraction code builds datasets sample-by-sample by
  // design; only src/ml/ hot paths are steered to the columnar matrix.
  const std::string src =
      "void windows(const Dataset& d) {\n"
      "  for (const auto& s : d.samples) use(s);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_cpp(src, "src/features/window.cpp"), "ordered-iteration"));
  EXPECT_FALSE(has_rule(lint_cpp(src, "tests/test_x.cpp"), "ordered-iteration"));
}

TEST(OrderedIterationRule, IndexedSamplesLoopInMlIsFine) {
  // Indexed loops (fold assembly, histogram builds) are not flagged — only
  // range-fors walking the AoS samples.
  const std::string src =
      "void folds(const Dataset& d) {\n"
      "  for (std::size_t i = 0; i < d.samples.size(); ++i) use(d.samples[i]);\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_cpp(src, "src/ml/crossval.cpp"), "ordered-iteration"));
}

// ---------------------------------------------------------------------------
// decoder-hardening

TEST(DecoderHardeningRule, FiresOnSeededViolations) {
  EXPECT_TRUE(has_rule(lint_cpp("int v = atoi(s);\n"), "decoder-hardening"));
  EXPECT_TRUE(has_rule(lint_cpp("int v = std::stoi(field);\n"), "decoder-hardening"));
  EXPECT_TRUE(has_rule(lint_cpp("long v = strtol(p, &e, 10);\n"), "decoder-hardening"));
  EXPECT_TRUE(has_rule(lint_cpp("sscanf(line, \"%d\", &v);\n"), "decoder-hardening"));
}

TEST(DecoderHardeningRule, FromCharsIsTheBlessedPath) {
  EXPECT_FALSE(has_rule(
      lint_cpp("auto [p, ec] = std::from_chars(b, e, v);\nif (ec != std::errc{}) fail();\n"),
      "decoder-hardening"));
}

TEST(DecoderHardeningRule, SuppressedByAllow) {
  EXPECT_FALSE(has_rule(
      lint_cpp("int v = atoi(s);  // lint:allow(decoder-hardening) — trusted fixture\n"),
      "decoder-hardening"));
}

// ---------------------------------------------------------------------------
// header-hygiene

TEST(HeaderHygieneRule, MissingPragmaOnceFires) {
  const auto findings = lint_cpp("int f();\n", "src/x.hpp");
  ASSERT_TRUE(has_rule(findings, "header-hygiene"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(HeaderHygieneRule, PragmaOnceSatisfies) {
  EXPECT_FALSE(has_rule(lint_cpp("// doc\n#pragma once\nint f();\n", "src/x.hpp"),
                        "header-hygiene"));
  // Extra whitespace in the directive is fine.
  EXPECT_FALSE(has_rule(lint_cpp("#  pragma   once\nint f();\n", "src/x.hpp"),
                        "header-hygiene"));
}

TEST(HeaderHygieneRule, UsingNamespaceInHeaderFires) {
  EXPECT_TRUE(has_rule(
      lint_cpp("#pragma once\nusing namespace std;\n", "src/x.hpp"), "header-hygiene"));
  // using-declarations and aliases are fine.
  EXPECT_FALSE(has_rule(
      lint_cpp("#pragma once\nusing std::vector;\nnamespace fs = std::filesystem;\n",
               "src/x.hpp"),
      "header-hygiene"));
}

TEST(HeaderHygieneRule, OnlyAppliesToHeaders) {
  EXPECT_FALSE(has_rule(lint_cpp("using namespace std;\nint f();\n", "src/x.cpp"),
                        "header-hygiene"));
}

TEST(HeaderHygieneRule, SuppressedByAllow) {
  EXPECT_FALSE(has_rule(
      lint_cpp("#pragma once\nusing namespace std::chrono_literals;  "
               "// lint:allow(header-hygiene) — literal suffixes only\n",
               "src/x.hpp"),
      "header-hygiene"));
}

// ---------------------------------------------------------------------------
// float-eq

TEST(FloatEqRule, FiresOnSeededViolations) {
  EXPECT_TRUE(has_rule(lint_cpp("if (x == 0.0) f();\n"), "float-eq"));
  EXPECT_TRUE(has_rule(lint_cpp("if (1.5f != y) f();\n"), "float-eq"));
  EXPECT_TRUE(has_rule(lint_cpp("bool b = x == (0.25);\n"), "float-eq"));
  EXPECT_TRUE(has_rule(lint_cpp("bool b = x == -1.0;\n"), "float-eq"));
}

TEST(FloatEqRule, IntegerAndOrderingComparisonsAreFine) {
  EXPECT_FALSE(has_rule(lint_cpp("if (x == 0) f();\n"), "float-eq"));
  EXPECT_FALSE(has_rule(lint_cpp("if (x <= 0.0) f();\n"), "float-eq"));
  EXPECT_FALSE(has_rule(lint_cpp("if (n != 42u) f();\n"), "float-eq"));
}

TEST(FloatEqRule, SuppressedByAllow) {
  EXPECT_FALSE(has_rule(
      lint_cpp("if (x == 0.0) f();  // lint:allow(float-eq) — sentinel check\n"),
      "float-eq"));
}

// ---------------------------------------------------------------------------
// bounded-queues

TEST(BoundedQueuesRule, FiresOnSeededViolations) {
  EXPECT_TRUE(has_rule(lint_cpp("std::deque<Item> backlog;\n"), "bounded-queues"));
  EXPECT_TRUE(has_rule(lint_cpp("std::queue<int> q;\n"), "bounded-queues"));
  EXPECT_TRUE(
      has_rule(lint_cpp("std::priority_queue<Head> heads;\n"), "bounded-queues"));
}

TEST(BoundedQueuesRule, BoundedAndUnqualifiedNamesAreFine) {
  // The project's own bounded ring is the blessed hand-off.
  EXPECT_FALSE(has_rule(lint_cpp("SpscQueue<Item> q(4096);\n"), "bounded-queues"));
  EXPECT_FALSE(
      has_rule(lint_cpp("ltefp::SpscQueue<Item> q(64);\n"), "bounded-queues"));
  // Only std:: FIFOs are banned; a local identifier named `queue` is not.
  EXPECT_FALSE(has_rule(lint_cpp("auto& queue = worker.queue;\n"), "bounded-queues"));
  EXPECT_FALSE(has_rule(lint_cpp("my::queue<int> q;\n"), "bounded-queues"));
}

TEST(BoundedQueuesRule, SuppressedByAllow) {
  EXPECT_FALSE(has_rule(
      lint_cpp("// lint:allow(bounded-queues) — drained before each return\n"
               "std::deque<Item> scratch;\n"),
      "bounded-queues"));
}

// ---------------------------------------------------------------------------
// Suppression hygiene

TEST(Suppressions, UnknownRuleIdIsItselfAFinding) {
  const auto findings = lint_cpp("int x = 1;  // lint:allow(no-such-rule)\n");
  ASSERT_TRUE(has_rule(findings, "bad-suppression"));
}

TEST(Suppressions, EmptyAllowIsItselfAFinding) {
  EXPECT_TRUE(has_rule(lint_cpp("int x = 1;  // lint:allow()\n"), "bad-suppression"));
}

TEST(Suppressions, AllowOnlySilencesTheNamedRule) {
  // The allow names float-eq but the violation is determinism.
  EXPECT_TRUE(has_rule(
      lint_cpp("int x = std::rand();  // lint:allow(float-eq)\n"), "determinism"));
}

// ---------------------------------------------------------------------------
// Configuration

constexpr const char* kConfig =
    "# comment\n"
    "ignore = [\"build*\", \".git\"]\n"
    "\n"
    "[default]\n"
    "rules = [\"header-hygiene\", \"float-eq\"]\n"
    "\n"
    "[dir.\"src\"]\n"
    "enable = [\"determinism\"]\n"
    "\n"
    "[dir.\"src/sniffer\"]\n"
    "enable = [\"decoder-hardening\"]\n"
    "\n"
    "[dir.\"tests\"]\n"
    "disable = [\"float-eq\"]\n";

TEST(Config, ParsesSectionsKeysAndIgnores) {
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(kConfig, &config, &error)) << error;
  EXPECT_EQ(config.ignore, (std::vector<std::string>{"build*", ".git"}));
  EXPECT_EQ(config.default_rules,
            (std::vector<std::string>{"header-hygiene", "float-eq"}));
  ASSERT_EQ(config.dirs.size(), 3u);
  EXPECT_EQ(config.dirs[0].prefix, "src");
  EXPECT_EQ(config.dirs[0].enable, (std::vector<std::string>{"determinism"}));
}

TEST(Config, RulesForAppliesOverridesBySpecificity) {
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(kConfig, &config, &error)) << error;

  const auto src = lint::rules_for(config, "src/lte/enb.cpp");
  EXPECT_EQ(src, (std::vector<std::string>{"header-hygiene", "float-eq", "determinism"}));

  const auto sniffer = lint::rules_for(config, "src/sniffer/trace.cpp");
  EXPECT_EQ(sniffer, (std::vector<std::string>{"header-hygiene", "float-eq",
                                               "determinism", "decoder-hardening"}));

  const auto tests = lint::rules_for(config, "tests/test_lint.cpp");
  EXPECT_EQ(tests, (std::vector<std::string>{"header-hygiene"}));

  // Prefix matching is per path component: "src-extra" is not under "src".
  const auto other = lint::rules_for(config, "src-extra/x.cpp");
  EXPECT_EQ(other, (std::vector<std::string>{"header-hygiene", "float-eq"}));
}

TEST(Config, StreamDirStacksBoundedQueuesOnDeterminism) {
  // The shipped config's shape for stream code: the src-wide determinism
  // contract plus the stream-only bounded-queues contract.
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(
      "[default]\nrules = [\"header-hygiene\"]\n"
      "[dir.\"src\"]\nenable = [\"determinism\"]\n"
      "[dir.\"src/stream\"]\nenable = [\"bounded-queues\"]\n",
      &config, &error))
      << error;
  EXPECT_EQ(lint::rules_for(config, "src/stream/daemon.cpp"),
            (std::vector<std::string>{"header-hygiene", "determinism", "bounded-queues"}));
  EXPECT_EQ(lint::rules_for(config, "src/ml/random_forest.cpp"),
            (std::vector<std::string>{"header-hygiene", "determinism"}));
}

TEST(Config, RulesReplaceOverridesDefaults) {
  lint::Config config;
  std::string error;
  ASSERT_TRUE(lint::parse_config(
      "[default]\nrules = [\"float-eq\"]\n[dir.\"bench\"]\nrules = [\"determinism\"]\n",
      &config, &error))
      << error;
  EXPECT_EQ(lint::rules_for(config, "bench/bench_micro.cpp"),
            (std::vector<std::string>{"determinism"}));
}

TEST(Config, RejectsMalformedInput) {
  lint::Config config;
  std::string error;
  EXPECT_FALSE(lint::parse_config("[default]\nrules = [\"no-such-rule\"]\n", &config,
                                  &error));
  EXPECT_NE(error.find("no-such-rule"), std::string::npos);

  EXPECT_FALSE(lint::parse_config("[bogus-section]\n", &config, &error));
  EXPECT_FALSE(lint::parse_config("[default]\nbogus = [\"x\"]\n", &config, &error));
  EXPECT_FALSE(lint::parse_config("[default]\nrules = \"not-an-array\"\n", &config,
                                  &error));
  EXPECT_FALSE(lint::parse_config("stray line\n", &config, &error));
}

TEST(Config, GlobMatch) {
  EXPECT_TRUE(lint::glob_match("build*", "build-asan"));
  EXPECT_TRUE(lint::glob_match("build*", "build"));
  EXPECT_TRUE(lint::glob_match("*.cpp", "x.cpp"));
  EXPECT_TRUE(lint::glob_match("?.cpp", "x.cpp"));
  EXPECT_FALSE(lint::glob_match("build*", "rebuild"));
  EXPECT_FALSE(lint::glob_match("*.cpp", "x.hpp"));
}

// ---------------------------------------------------------------------------
// CLI behavior (exit codes, walking, ignore patterns)

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "ltefp_lint_cli" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << text;
  }

  int run(std::vector<std::string> args, std::string* out_text = nullptr,
          std::string* err_text = nullptr) {
    std::vector<std::string> argv_s = {"ltefp-lint", "--root", root_.string()};
    for (auto& a : args) argv_s.push_back(std::move(a));
    std::vector<const char*> argv;
    for (const auto& s : argv_s) argv.push_back(s.c_str());
    std::ostringstream out, err;
    const int rc = lint::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
    if (out_text) *out_text = out.str();
    if (err_text) *err_text = err.str();
    return rc;
  }

  fs::path root_;
};

TEST_F(CliTest, ExitZeroOnCleanTree) {
  write("src/ok.cpp", "int f() { return 1; }\n");
  write("src/ok.hpp", "#pragma once\nint f();\n");
  EXPECT_EQ(run({"src"}), 0);
}

TEST_F(CliTest, ExitOneOnFindingsAndReportsFileLineRule) {
  write("src/bad.cpp", "int x = std::rand();\n");
  std::string out;
  EXPECT_EQ(run({"src"}, &out), 1);
  EXPECT_NE(out.find("src/bad.cpp:1: determinism:"), std::string::npos);
}

TEST_F(CliTest, ExitTwoOnUsageErrors) {
  EXPECT_EQ(run({"--bogus-flag"}), 2);
  EXPECT_EQ(run({}), 2);                       // no paths
  EXPECT_EQ(run({"no/such/dir"}), 2);          // nonexistent input
  EXPECT_EQ(run({"--config"}), 2);             // flag missing its value
}

TEST_F(CliTest, ExitTwoOnBadConfig) {
  write("src/ok.cpp", "int f();\n");
  write("bad.toml", "[default]\nrules = [\"no-such-rule\"]\n");
  std::string err;
  EXPECT_EQ(run({"--config", (root_ / "bad.toml").string(), "src"}, nullptr, &err), 2);
  EXPECT_NE(err.find("no-such-rule"), std::string::npos);
}

TEST_F(CliTest, ImplicitConfigIsPickedUpFromRoot) {
  // float-eq disabled for src via the root config: the violation passes.
  write(".ltefp-lint.toml", "[default]\nrules = [\"float-eq\"]\n"
                            "[dir.\"src\"]\ndisable = [\"float-eq\"]\n");
  write("src/f.cpp", "bool b = x == 0.5;\n");
  EXPECT_EQ(run({"src"}), 0);
}

TEST_F(CliTest, WalksRecursivelyAndHonorsIgnorePatterns) {
  write(".ltefp-lint.toml", "ignore = [\"build*\", \"vendored\"]\n"
                            "[default]\nrules = [\"determinism\"]\n");
  write("src/deep/nested/bad.cpp", "srand(1);\n");
  write("src/build-asan/generated.cpp", "srand(1);\n");   // ignored
  write("src/vendored/third_party.cpp", "srand(1);\n");   // ignored
  std::string out;
  EXPECT_EQ(run({"src"}, &out), 1);
  EXPECT_NE(out.find("src/deep/nested/bad.cpp:1"), std::string::npos);
  EXPECT_EQ(out.find("build-asan"), std::string::npos);
  EXPECT_EQ(out.find("vendored"), std::string::npos);
}

TEST_F(CliTest, NonSourceFilesAreSkipped) {
  write("src/readme.md", "rand() everywhere\n");
  write("src/data.csv", "time(nullptr)\n");
  EXPECT_EQ(run({"src"}), 0);
}

TEST_F(CliTest, SiblingHeaderInformsOrderedIteration) {
  write("src/s.hpp", "#pragma once\nstruct S { std::unordered_map<int, int> m_; };\n");
  write("src/s.cpp", "void S::f() { for (auto& [k, v] : m_) g(k); }\n");
  std::string out;
  EXPECT_EQ(run({"src"}, &out), 1);
  EXPECT_NE(out.find("src/s.cpp:1: ordered-iteration"), std::string::npos);
}

TEST_F(CliTest, ListRulesPrintsEveryShippedRule) {
  std::string out;
  EXPECT_EQ(run({"--list-rules"}, &out), 0);
  for (const auto* rule : lint::all_rules()) {
    EXPECT_NE(out.find(rule->id()), std::string::npos) << rule->id();
  }
}

TEST_F(CliTest, LintsASingleFileArgument) {
  write("src/bad.cpp", "int v = atoi(s);\n");
  write(".ltefp-lint.toml", "[default]\nrules = [\"decoder-hardening\"]\n");
  EXPECT_EQ(run({"src/bad.cpp"}), 1);
}

}  // namespace
