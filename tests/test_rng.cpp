#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace ltefp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork();
  // Replaying the parent from the same seed and forking again must give
  // the same child stream.
  Rng parent2(7);
  Rng child2 = parent2.fork();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child(), child2());
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealInHalfOpenRange) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    ASSERT_GE(v, 2.0);
    ASSERT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(8);
  for (const double mean : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    const int n = 50'000;
    for (int i = 0; i < n; ++i) sum += rng.poisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(8);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(12);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(13);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{7});
}

// Property sweep: every seed yields in-range indices and usable pick().
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, IndexAlwaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.index(17), 17u);
  }
}

TEST_P(RngSeedSweep, LognormalPositive) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.lognormal(3.0, 1.0), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace ltefp
