#include "features/window.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ltefp::features {
namespace {

using sniffer::Trace;
using sniffer::TraceRecord;

TraceRecord rec(TimeMs t, int bytes, lte::Direction dir = lte::Direction::kDownlink,
                lte::Rnti rnti = 0x100) {
  return TraceRecord{t, rnti, dir, bytes, 0};
}

TEST(FeatureNames, MatchesFeatureCount) {
  EXPECT_EQ(feature_names().size(), kFeatureCount);
}

TEST(ExtractWindows, EmptyTraceYieldsNothing) {
  EXPECT_TRUE(extract_windows({}, 0, WindowConfig{}).empty());
}

TEST(ExtractWindows, SkipsEmptyWindowsByDefault) {
  // Frames at 0-100ms and 500-600ms: three empty windows in between.
  const Trace t{rec(10, 100), rec(550, 200)};
  const auto windows = extract_windows(t, 0, WindowConfig{});
  EXPECT_EQ(windows.size(), 2u);
}

TEST(ExtractWindows, IncludeEmptyEmitsAllWindows) {
  WindowConfig config;
  config.include_empty = true;
  const Trace t{rec(10, 100), rec(550, 200)};
  const auto windows = extract_windows(t, 0, config);
  EXPECT_EQ(windows.size(), 6u);  // windows [0,600) @ 100 ms
  EXPECT_EQ(windows[1][0], 0.0);  // empty window has zero frames
}

TEST(ExtractWindows, BasicAggregates) {
  const Trace t{rec(10, 100, lte::Direction::kDownlink),
                rec(40, 300, lte::Direction::kUplink),
                rec(90, 200, lte::Direction::kDownlink)};
  const auto windows = extract_windows(t, 0, WindowConfig{});
  ASSERT_EQ(windows.size(), 1u);
  const auto& f = windows[0];
  EXPECT_EQ(f[0], 3.0);               // frame_count
  EXPECT_EQ(f[1], 600.0);             // total_bytes
  EXPECT_NEAR(f[2], 200.0, 1e-9);     // mean size
  EXPECT_EQ(f[4], 100.0);             // min
  EXPECT_EQ(f[5], 300.0);             // max
  EXPECT_NEAR(f[6], 40.0, 1e-9);      // mean interarrival: (30+50)/2
  EXPECT_NEAR(f[9], 2.0 / 3.0, 1e-9); // dl frame fraction
  EXPECT_NEAR(f[10], 0.5, 1e-9);      // dl byte fraction 300/600
  EXPECT_EQ(f[11], 2.0);              // dl count
  EXPECT_EQ(f[12], 1.0);              // ul count
  EXPECT_EQ(f[14], 1.0);              // one RNTI
}

TEST(ExtractWindows, CumulativeTimeAnchorsToSessionStart) {
  const Trace t{rec(5'010, 100), rec(8'020, 100)};
  const auto windows = extract_windows(t, 5'000, WindowConfig{});
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_NEAR(windows[0][8], 0.0, 1e-9);  // first window starts at session start
  EXPECT_NEAR(windows[1][8], 3.0, 1e-9);  // 3 s into the session
}

TEST(ExtractWindows, GapBeforeTracksCrossWindowSilence) {
  const Trace t{rec(50, 100), rec(4'060, 100)};
  const auto windows = extract_windows(t, 0, WindowConfig{});
  ASSERT_EQ(windows.size(), 2u);
  // Second window starts at 4000; last prior frame was at 50.
  EXPECT_NEAR(windows[1][15], 3'950.0, 1e-9);
}

TEST(ExtractWindows, RntiChurnCounted) {
  const Trace t{rec(10, 100, lte::Direction::kDownlink, 0x100),
                rec(20, 100, lte::Direction::kDownlink, 0x200)};
  const auto windows = extract_windows(t, 0, WindowConfig{});
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0][14], 2.0);
}

TEST(ExtractWindows, DirectionFilterApplies) {
  WindowConfig config;
  config.link = lte::LinkFilter::kUplinkOnly;
  const Trace t{rec(10, 100, lte::Direction::kDownlink),
                rec(20, 300, lte::Direction::kUplink)};
  const auto windows = extract_windows(t, 0, config);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0][0], 1.0);
  EXPECT_EQ(windows[0][1], 300.0);
}

TEST(ExtractWindows, SizeHistogramFractions) {
  const Trace t{rec(1, 40), rec(2, 120), rec(3, 350), rec(4, 800), rec(5, 2000)};
  const auto windows = extract_windows(t, 0, WindowConfig{});
  ASSERT_EQ(windows.size(), 1u);
  const auto& f = windows[0];
  EXPECT_NEAR(f[16], 0.2, 1e-9);  // <=50
  EXPECT_NEAR(f[17], 0.2, 1e-9);  // <=150
  EXPECT_NEAR(f[18], 0.2, 1e-9);  // <=400
  EXPECT_NEAR(f[19], 0.2, 1e-9);  // <=1000
  EXPECT_NEAR(f[20], 0.2, 1e-9);  // >1000
  EXPECT_EQ(f[21], 350.0);        // median
}

TEST(AppendWindows, SetsLabelAndNames) {
  Dataset data;
  const Trace t{rec(10, 100), rec(210, 100)};
  append_windows(data, t, 0, WindowConfig{}, 4);
  EXPECT_EQ(data.feature_names.size(), kFeatureCount);
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data.samples[0].label, 4);
}

// Window-size sweep: structural invariants hold for any window size.
class WindowSizeSweep : public ::testing::TestWithParam<TimeMs> {};

TEST_P(WindowSizeSweep, FrameCountConserved) {
  Rng rng(31);
  Trace t;
  TimeMs time = 0;
  for (int i = 0; i < 500; ++i) {
    time += rng.uniform_int(1, 120);
    t.push_back(rec(time, static_cast<int>(rng.uniform_int(16, 2000)),
                    rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink));
  }
  WindowConfig config;
  config.window_ms = GetParam();
  const auto windows = extract_windows(t, 0, config);
  double frames = 0.0, bytes = 0.0;
  for (const auto& w : windows) {
    frames += w[0];
    bytes += w[1];
    ASSERT_EQ(w.size(), kFeatureCount);
    ASSERT_GE(w[0], 1.0) << "empty windows must be skipped";
    ASSERT_GE(w[5], w[4]) << "max >= min";
    ASSERT_LE(w[9], 1.0);
    ASSERT_GE(w[9], 0.0);
  }
  EXPECT_EQ(frames, 500.0);
  EXPECT_EQ(bytes, static_cast<double>(total_bytes(t)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, WindowSizeSweep,
                         ::testing::Values<TimeMs>(20, 50, 100, 250, 1000));

}  // namespace
}  // namespace ltefp::features
