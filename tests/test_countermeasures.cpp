#include "lte/countermeasures.hpp"

#include <gtest/gtest.h>

#include <set>

#include "apps/factory.hpp"
#include "attacks/collect.hpp"
#include "lte/network.hpp"
#include "lte/operator_profile.hpp"
#include "sniffer/sniffer.hpp"

namespace ltefp::lte {
namespace {

TEST(PadTbBytes, LadderRounding) {
  CountermeasureConfig config;
  config.pad_to_bytes = 256;
  EXPECT_EQ(pad_tb_bytes(1, config), 256);
  EXPECT_EQ(pad_tb_bytes(256, config), 256);
  EXPECT_EQ(pad_tb_bytes(257, config), 512);
  EXPECT_EQ(pad_tb_bytes(1000, config), 1024);
}

TEST(PadTbBytes, DisabledIsIdentity) {
  CountermeasureConfig config;
  EXPECT_EQ(pad_tb_bytes(123, config), 123);
  EXPECT_FALSE(config.enabled());
  config.pad_to_bytes = 64;
  EXPECT_TRUE(config.enabled());
}

class DefendedCell : public ::testing::Test {
 protected:
  sniffer::Trace run_victim(const CountermeasureConfig& countermeasures, bool conceal,
                            TimeMs duration = seconds(25)) {
    Simulation sim(77);
    const CellId cell = sim.add_cell(operator_profile(Operator::kLab), countermeasures, conceal);
    const UeId ue = sim.add_ue(42);
    sim.camp(ue, cell);
    sniffer_ = std::make_unique<sniffer::Sniffer>(sniffer::SnifferConfig{}, Rng(9));
    sim.add_observer(cell, *sniffer_);
    tmsi_ = sim.tmsi_of(ue);
    sim.set_traffic_source(ue,
                           apps::make_app_source(apps::AppId::kSkype, duration, Rng(3)));
    sim.run_for(duration);
    return sniffer_->trace_of_tmsi(tmsi_);
  }

  std::unique_ptr<sniffer::Sniffer> sniffer_;
  Tmsi tmsi_ = 0;
};

TEST_F(DefendedCell, RekeyShedsThePassiveTracker) {
  const sniffer::Trace baseline = run_victim({}, false);
  CountermeasureConfig rekey;
  rekey.rnti_rekey_period = seconds(2);
  const sniffer::Trace defended = run_victim(rekey, false);
  // After the first re-key the victim's new RNTI is unknown to the
  // identity map, so attributable capture collapses.
  EXPECT_LT(defended.size(), baseline.size() / 4);
  // But the cell kept serving the victim: unattributed records exist.
  EXPECT_GT(sniffer_->decoded_count(), defended.size());
}

TEST_F(DefendedCell, RekeyChangesObservedRntiPopulation) {
  CountermeasureConfig rekey;
  rekey.rnti_rekey_period = seconds(2);
  run_victim(rekey, false, seconds(11));
  // One UE, ~11 s, re-keyed every 2 s: the raw capture (all RNTIs) must
  // show several distinct C-RNTIs.
  std::set<Rnti> rntis;
  for (const auto& r : sniffer_->records()) rntis.insert(r.rnti);
  EXPECT_GE(rntis.size(), 4u);
}

TEST_F(DefendedCell, PaddingQuantisesObservedSizes) {
  CountermeasureConfig pad;
  pad.pad_to_bytes = 512;
  const sniffer::Trace defended = run_victim(pad, false);
  ASSERT_FALSE(defended.empty());
  // Observed TBS must always cover the padded ladder step: the grant is
  // inflated, so sizes concentrate on few large values.
  std::set<int> distinct;
  for (const auto& r : defended) distinct.insert(r.tb_bytes);
  const sniffer::Trace baseline = run_victim({}, false);
  std::set<int> baseline_distinct;
  for (const auto& r : baseline) baseline_distinct.insert(r.tb_bytes);
  EXPECT_LT(distinct.size(), baseline_distinct.size());
  // And padding costs bytes on the air.
  EXPECT_GT(sniffer::total_bytes(defended), sniffer::total_bytes(baseline));
}

TEST_F(DefendedCell, ChaffAddsRecordsBeyondRealTraffic) {
  const sniffer::Trace baseline = run_victim({}, false);
  CountermeasureConfig chaff;
  chaff.dummy_grant_rate = 0.2;
  const sniffer::Trace defended = run_victim(chaff, false);
  EXPECT_GT(defended.size(), baseline.size());
}

TEST_F(DefendedCell, SuciConcealmentBreaksIdentityMapping) {
  const sniffer::Trace defended = run_victim({}, true);
  // Msg3/Msg4 still happen, but with one-time identities: nothing maps to
  // the victim's TMSI, so the targeted trace is empty.
  EXPECT_TRUE(defended.empty());
  EXPECT_TRUE(sniffer_->identities().bindings_of(tmsi_).empty());
  // The RRC exchange itself was observed (the defence hides identity, not
  // activity).
  EXPECT_GE(sniffer_->rach_count(), 1u);
}

TEST(DefendedCollect, CountermeasuresFlowThroughCollectConfig) {
  attacks::CollectConfig config;
  config.op = Operator::kLab;
  config.duration = seconds(15);
  config.seed = 5;
  const auto baseline = attacks::collect_trace(apps::AppId::kSkype, config);
  config.conceal_identity = true;
  const auto concealed = attacks::collect_trace(apps::AppId::kSkype, config);
  EXPECT_GT(baseline.trace.size(), 0u);
  EXPECT_EQ(concealed.trace.size(), 0u);
}

}  // namespace
}  // namespace ltefp::lte
