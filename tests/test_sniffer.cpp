#include "sniffer/sniffer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "apps/factory.hpp"
#include "lte/network.hpp"
#include "lte/operator_profile.hpp"
#include "lte/tbs.hpp"

namespace ltefp::sniffer {
namespace {

lte::PdcchSubframe subframe_with(TimeMs t, std::initializer_list<lte::Dci> dcis) {
  lte::PdcchSubframe sf;
  sf.time = t;
  sf.cell = 0;
  for (const auto& dci : dcis) sf.dcis.push_back(lte::encode_dci(dci));
  return sf;
}

lte::Dci dci_for(lte::Rnti rnti, lte::Direction dir = lte::Direction::kDownlink,
                 std::uint8_t mcs = 10, std::uint8_t nprb = 8) {
  lte::Dci dci;
  dci.rnti = rnti;
  dci.direction = dir;
  dci.mcs = mcs;
  dci.nprb = nprb;
  return dci;
}

TEST(Sniffer, BlindDecodeRecoversRntiDirectionAndTbs) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.on_subframe(subframe_with(
      5, {dci_for(0x1234, lte::Direction::kDownlink, 12, 20),
          dci_for(0x4321, lte::Direction::kUplink, 5, 3)}));

  ASSERT_EQ(sniffer.decoded_count(), 2u);
  const auto& records = sniffer.records();
  EXPECT_EQ(records[0].time, 5);
  EXPECT_EQ(records[0].rnti, 0x1234);
  EXPECT_EQ(records[0].direction, lte::Direction::kDownlink);
  EXPECT_EQ(records[0].tb_bytes, lte::max_tb_bytes(12, 20));
  EXPECT_EQ(records[1].rnti, 0x4321);
  EXPECT_EQ(records[1].direction, lte::Direction::kUplink);
}

TEST(Sniffer, PagingDcisCountedNotTraced) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.on_subframe(subframe_with(0, {dci_for(lte::kPagingRnti)}));
  EXPECT_EQ(sniffer.decoded_count(), 0u);
  EXPECT_EQ(sniffer.paging_count(), 1u);
}

TEST(Sniffer, ReservedRntisFiltered) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.on_subframe(subframe_with(0, {dci_for(0x0001)}));  // below C-RNTI range
  EXPECT_EQ(sniffer.decoded_count(), 0u);
}

TEST(Sniffer, MissRateDropsApproximatelyThatFraction) {
  SnifferConfig config;
  config.miss_rate = 0.3;
  Sniffer sniffer(config, Rng(7));
  for (int t = 0; t < 10'000; ++t) {
    sniffer.on_subframe(subframe_with(t, {dci_for(0x2000)}));
  }
  const double kept = static_cast<double>(sniffer.decoded_count()) / 10'000.0;
  EXPECT_NEAR(kept, 0.7, 0.03);
  EXPECT_NEAR(static_cast<double>(sniffer.missed_count()) / 10'000.0, 0.3, 0.03);
}

TEST(Sniffer, FalseRateInjectsBogusRecords) {
  SnifferConfig config;
  config.false_rate = 0.1;
  Sniffer sniffer(config, Rng(8));
  for (int t = 0; t < 5'000; ++t) {
    sniffer.on_subframe(lte::PdcchSubframe{t, 0, {}});
  }
  EXPECT_NEAR(static_cast<double>(sniffer.decoded_count()) / 5'000.0, 0.1, 0.02);
}

TEST(Sniffer, ActiveRntiTrackingHonoursHorizon) {
  SnifferConfig config;
  config.activity_horizon = 1000;
  Sniffer sniffer(config, Rng(9));
  sniffer.on_subframe(subframe_with(0, {dci_for(0x1111)}));
  sniffer.on_subframe(subframe_with(500, {dci_for(0x2222)}));
  auto active = sniffer.active_rntis(900);
  EXPECT_EQ(active.size(), 2u);
  active = sniffer.active_rntis(1200);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], 0x2222);
}

TEST(Sniffer, TraceOfRntiSelectsOnlyThatRnti) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.on_subframe(subframe_with(0, {dci_for(0x1000), dci_for(0x2000)}));
  sniffer.on_subframe(subframe_with(1, {dci_for(0x1000)}));
  EXPECT_EQ(sniffer.trace_of_rnti(0x1000).size(), 2u);
  EXPECT_EQ(sniffer.trace_of_rnti(0x2000).size(), 1u);
  EXPECT_TRUE(sniffer.trace_of_rnti(0x3000).empty());
}

TEST(Sniffer, IdentityMappedTraceSpansRntiRefreshes) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  // Connection 1 under RNTI 0x100.
  sniffer.on_rar(lte::RandomAccessResponse{0, 0, 1, 0x100});
  sniffer.on_rrc_request(lte::RrcConnectionRequest{2, 0, 0x100, 0xCAFE});
  sniffer.on_rrc_setup(lte::RrcConnectionSetup{4, 0, 0x100, 0xCAFE});
  sniffer.on_subframe(subframe_with(10, {dci_for(0x100)}));
  sniffer.on_rrc_release(lte::RrcConnectionRelease{100, 0, 0x100});
  // RNTI 0x100 later belongs to someone else.
  sniffer.on_rar(lte::RandomAccessResponse{200, 0, 2, 0x100});
  sniffer.on_rrc_request(lte::RrcConnectionRequest{202, 0, 0x100, 0xBEEF});
  sniffer.on_rrc_setup(lte::RrcConnectionSetup{204, 0, 0x100, 0xBEEF});
  sniffer.on_subframe(subframe_with(210, {dci_for(0x100)}));
  // Victim reconnects under RNTI 0x300.
  sniffer.on_rar(lte::RandomAccessResponse{300, 0, 3, 0x300});
  sniffer.on_rrc_request(lte::RrcConnectionRequest{302, 0, 0x300, 0xCAFE});
  sniffer.on_rrc_setup(lte::RrcConnectionSetup{304, 0, 0x300, 0xCAFE});
  sniffer.on_subframe(subframe_with(310, {dci_for(0x300)}));

  const Trace victim = sniffer.trace_of_tmsi(0xCAFE);
  ASSERT_EQ(victim.size(), 2u);
  EXPECT_EQ(victim[0].time, 10);
  EXPECT_EQ(victim[0].rnti, 0x100);
  EXPECT_EQ(victim[1].time, 310);
  EXPECT_EQ(victim[1].rnti, 0x300);

  const Trace other = sniffer.trace_of_tmsi(0xBEEF);
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].time, 210);
}

TEST(Sniffer, RestrictToTmsiStoresOnlyVictimRecords) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.restrict_to_tmsi(0xCAFE);
  sniffer.on_rrc_request(lte::RrcConnectionRequest{0, 0, 0x100, 0xCAFE});
  sniffer.on_rrc_setup(lte::RrcConnectionSetup{1, 0, 0x100, 0xCAFE});
  sniffer.on_rrc_request(lte::RrcConnectionRequest{0, 0, 0x200, 0xBEEF});
  sniffer.on_rrc_setup(lte::RrcConnectionSetup{1, 0, 0x200, 0xBEEF});

  sniffer.on_subframe(subframe_with(5, {dci_for(0x100), dci_for(0x200), dci_for(0x300)}));
  ASSERT_EQ(sniffer.decoded_count(), 1u);
  EXPECT_EQ(sniffer.records()[0].rnti, 0x100);
}

TEST(Sniffer, RestrictAfterBindingPicksUpLiveRnti) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.on_rrc_request(lte::RrcConnectionRequest{0, 0, 0x100, 0xCAFE});
  sniffer.on_rrc_setup(lte::RrcConnectionSetup{1, 0, 0x100, 0xCAFE});
  sniffer.restrict_to_tmsi(0xCAFE);  // binding already open
  sniffer.on_subframe(subframe_with(5, {dci_for(0x100)}));
  EXPECT_EQ(sniffer.decoded_count(), 1u);
}

TEST(Sniffer, ManualBindingFeedsTargetFilter) {
  Sniffer sniffer(SnifferConfig{}, Rng(1));
  sniffer.restrict_to_tmsi(0xCAFE);
  sniffer.add_manual_binding(0x555, 0xCAFE, 0, 0);
  sniffer.on_subframe(subframe_with(5, {dci_for(0x555)}));
  EXPECT_EQ(sniffer.decoded_count(), 1u);
  EXPECT_EQ(sniffer.trace_of_tmsi(0xCAFE).size(), 1u);
}

// Integration: sniffer against the full simulator.
TEST(SnifferIntegration, ObservesEverythingAVictimDoes) {
  lte::Simulation sim(99);
  const lte::CellId cell = sim.add_cell(lte::operator_profile(lte::Operator::kLab));
  Sniffer sniffer(SnifferConfig{}, Rng(5));
  sim.add_observer(cell, sniffer);

  const lte::UeId ue = sim.add_ue(12345);
  sim.camp(ue, cell);
  sim.set_traffic_source(
      ue, apps::make_app_source(apps::AppId::kSkype, seconds(20), Rng(3)));
  sim.run_for(seconds(20));

  // Identity mapping caught the RRC exchange.
  EXPECT_GE(sniffer.identities().confirmed_count(), 1u);
  const Trace victim = sniffer.trace_of_tmsi(sim.tmsi_of(ue));
  EXPECT_GT(victim.size(), 100u);
  // VoIP is bidirectional: both directions present.
  bool saw_ul = false, saw_dl = false;
  for (const auto& r : victim) {
    saw_ul |= r.direction == lte::Direction::kUplink;
    saw_dl |= r.direction == lte::Direction::kDownlink;
  }
  EXPECT_TRUE(saw_ul);
  EXPECT_TRUE(saw_dl);
  // And the sniffer never needed simulator internals: every record's RNTI
  // was recovered from CRC unmasking alone.
}

}  // namespace
}  // namespace ltefp::sniffer
