// Integration tests for the three attacks (short sessions keep them fast).
#include <gtest/gtest.h>

#include <set>

#include "attacks/collect.hpp"
#include "common/stats.hpp"
#include "attacks/correlation.hpp"
#include "attacks/cost.hpp"
#include "attacks/history.hpp"
#include "attacks/pipeline.hpp"

namespace ltefp::attacks {
namespace {

PipelineConfig small_lab_config() {
  PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 2;
  config.trace_duration = minutes(1);
  config.seed = 31337;
  return config;
}

TEST(Collect, ProducesIdentityMappedTrace) {
  CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(30);
  config.seed = 5;
  const CollectedTrace capture = collect_trace(apps::AppId::kSkype, config);
  EXPECT_EQ(capture.app, apps::AppId::kSkype);
  EXPECT_GT(capture.trace.size(), 200u);
  EXPECT_GE(capture.rnti_count, 1u);
  // Trace is time-ordered.
  for (std::size_t i = 1; i < capture.trace.size(); ++i) {
    ASSERT_GE(capture.trace[i].time, capture.trace[i - 1].time);
  }
}

TEST(Collect, DeterministicForSameSeed) {
  CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(15);
  config.seed = 6;
  const CollectedTrace a = collect_trace(apps::AppId::kYoutube, config);
  const CollectedTrace b = collect_trace(apps::AppId::kYoutube, config);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(Collect, MessagingRefreshesRntis) {
  CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = minutes(3);
  config.seed = 7;
  const CollectedTrace capture = collect_trace(apps::AppId::kWhatsApp, config);
  // Chat lulls exceed the inactivity timeout, so the victim reconnects
  // under fresh RNTIs — the IM signature the paper highlights.
  EXPECT_GE(capture.rnti_count, 2u);
}

TEST(Collect, BackgroundAppsInflateTraffic) {
  CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(30);
  config.seed = 8;
  const auto clean = collect_trace(apps::AppId::kTelegram, config);
  config.background_apps = 6;
  const auto noisy = collect_trace(apps::AppId::kTelegram, config);
  EXPECT_GT(noisy.trace.size(), clean.trace.size());
}

TEST(Collect, CollectTracesUsesDistinctSeeds) {
  CollectConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(10);
  config.seed = 9;
  const auto traces = collect_traces(apps::AppId::kSkype, 3, config);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_NE(traces[0].trace.size(), 0u);
  EXPECT_FALSE(traces[0].trace == traces[1].trace);
}

TEST(Pipeline, DatasetHasAllNineLabels) {
  const features::Dataset data = build_dataset(small_lab_config());
  EXPECT_EQ(data.label_names.size(), static_cast<std::size_t>(apps::kNumApps));
  const auto hist = data.class_histogram();
  ASSERT_EQ(hist.size(), static_cast<std::size_t>(apps::kNumApps));
  for (int i = 0; i < apps::kNumApps; ++i) {
    EXPECT_GT(hist[static_cast<std::size_t>(i)], 10u)
        << data.label_names[static_cast<std::size_t>(i)];
  }
}

TEST(Pipeline, TrainEvaluateClassify) {
  const PipelineConfig config = small_lab_config();
  const features::Dataset data = build_dataset(config);
  Rng rng(1);
  auto [train, test] = features::train_test_split(data, 0.8, rng);

  FingerprintPipeline pipeline(config);
  EXPECT_FALSE(pipeline.trained());
  EXPECT_THROW(pipeline.predict_window(test.samples[0].features), std::logic_error);
  pipeline.train(train);
  EXPECT_TRUE(pipeline.trained());

  const ml::ConfusionMatrix cm = pipeline.evaluate(test);
  EXPECT_GT(cm.accuracy(), 0.75) << "lab windows should classify well";

  // Whole-trace verdict on an unseen capture.
  CollectConfig collect;
  collect.op = config.op;
  collect.duration = minutes(1);
  collect.seed = 777;
  const CollectedTrace capture = collect_trace(apps::AppId::kNetflix, collect);
  const TraceVerdict verdict = pipeline.classify_trace(capture.trace, capture.session_start);
  EXPECT_EQ(verdict.app, apps::AppId::kNetflix);
  EXPECT_EQ(verdict.category, apps::AppCategory::kStreaming);
  EXPECT_GT(verdict.confidence, 0.5);
  EXPECT_GT(verdict.window_count, 10u);
}

TEST(Pipeline, ScoresFromConfusionShape) {
  ml::ConfusionMatrix cm(apps::kNumApps);
  cm.add(0, 0);
  cm.add(1, 0);
  const auto scores = scores_from_confusion(cm);
  ASSERT_EQ(scores.size(), static_cast<std::size_t>(apps::kNumApps));
  EXPECT_EQ(scores[0].app, apps::AppId::kNetflix);
  EXPECT_EQ(scores[0].recall, 1.0);
  EXPECT_EQ(scores[1].recall, 0.0);
}

TEST(Pipeline, EmptyTraceVerdictIsHarmless) {
  FingerprintPipeline pipeline(small_lab_config());
  features::Dataset tiny;
  tiny.feature_names = features::feature_names();
  tiny.label_names.resize(apps::kNumApps);
  for (int i = 0; i < apps::kNumApps; ++i) {
    features::FeatureVector x(features::kFeatureCount, static_cast<double>(i));
    tiny.add(x, i);
  }
  pipeline.train(tiny);
  const TraceVerdict verdict = pipeline.classify_trace({}, 0);
  EXPECT_EQ(verdict.window_count, 0u);
  EXPECT_EQ(verdict.confidence, 0.0);
}

TEST(History, ReconstructsShortItinerary) {
  PipelineConfig config = small_lab_config();
  FingerprintPipeline pipeline(config);
  pipeline.train(build_dataset(config));

  HistoryConfig history;
  history.op = lte::Operator::kLab;
  history.zones = 2;
  history.seed = 404;
  history.itinerary = {
      ZoneVisit{0, apps::AppId::kNetflix, minutes(1), seconds(30)},
      ZoneVisit{1, apps::AppId::kSkype, minutes(1), seconds(30)},
      ZoneVisit{0, apps::AppId::kYoutube, minutes(1), seconds(30)},
  };
  const HistoryAttack attack(pipeline);
  const HistoryResult result = attack.run(history);
  ASSERT_EQ(result.observations.size(), 3u);
  EXPECT_EQ(result.observations[0].zone, 0);
  EXPECT_EQ(result.observations[1].zone, 1);
  // The attack should at least nail the streaming/VoIP categories.
  int category_correct = 0;
  for (const auto& obs : result.observations) {
    if (obs.predicted_category == apps::category_of(obs.true_app)) ++category_correct;
  }
  EXPECT_GE(category_correct, 2);
  EXPECT_GE(result.success_rate, 2.0 / 3.0);
}

TEST(History, RequiresTrainedPipelineAndItinerary) {
  FingerprintPipeline untrained(small_lab_config());
  EXPECT_THROW(HistoryAttack{untrained}, std::invalid_argument);

  PipelineConfig config = small_lab_config();
  FingerprintPipeline pipeline(config);
  features::Dataset tiny;
  tiny.feature_names = features::feature_names();
  tiny.label_names.resize(apps::kNumApps);
  for (int i = 0; i < apps::kNumApps; ++i) {
    tiny.add(features::FeatureVector(features::kFeatureCount, static_cast<double>(i)), i);
  }
  pipeline.train(tiny);
  const HistoryAttack attack(pipeline);
  EXPECT_THROW(attack.run(HistoryConfig{}), std::invalid_argument);
  HistoryConfig bad;
  bad.itinerary = {ZoneVisit{7, apps::AppId::kSkype, seconds(10), seconds(5)}};
  EXPECT_THROW(attack.run(bad), std::out_of_range);
}

TEST(History, DefaultItineraryShape) {
  const auto itinerary = HistoryAttack::default_itinerary(1);
  ASSERT_EQ(itinerary.size(), 12u);  // the paper's 12 attempts
  std::set<int> zones;
  for (const auto& visit : itinerary) {
    zones.insert(visit.zone);
    EXPECT_GE(visit.duration, minutes(5));
    EXPECT_LE(visit.duration, minutes(10));
  }
  EXPECT_EQ(zones.size(), 3u);
}

TEST(Correlation, PairedScoresHigherThanUnpaired) {
  CorrelationConfig config;
  config.op = lte::Operator::kLab;
  config.duration = minutes(1.5);
  config.seed = 2024;
  RunningStats paired, unpaired;
  for (int i = 0; i < 3; ++i) {
    CorrelationConfig c = config;
    c.seed += static_cast<std::uint64_t>(i) * 1009;
    paired.add(run_pair_session(apps::AppId::kSkype, true, c).similarity);
    unpaired.add(run_pair_session(apps::AppId::kSkype, false, c).similarity);
  }
  EXPECT_GT(paired.mean(), unpaired.mean());
}

TEST(Correlation, FeatureVectorShapeAndBounds) {
  CorrelationConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(45);
  config.seed = 99;
  const PairObservation obs = run_pair_session(apps::AppId::kWhatsApp, true, config);
  ASSERT_EQ(obs.features.size(), 4u);
  for (const double f : obs.features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  EXPECT_TRUE(obs.actually_paired);
  EXPECT_EQ(obs.app, apps::AppId::kWhatsApp);
}

TEST(Correlation, MeasureSimilarityAggregates) {
  CorrelationConfig config;
  config.op = lte::Operator::kLab;
  config.duration = seconds(45);
  config.seed = 55;
  const SimilarityStats stats = measure_similarity(apps::AppId::kFacebookCall, 3, config);
  EXPECT_EQ(stats.runs, 3);
  EXPECT_GT(stats.mean, 0.3);
  EXPECT_LE(stats.mean, 1.0);
  EXPECT_GE(stats.stddev, 0.0);
}

TEST(Correlation, LabAttackSeparatesContacts) {
  CorrelationConfig config;
  config.op = lte::Operator::kLab;
  config.duration = minutes(1);
  config.seed = 303;
  const ml::BinaryMetrics metrics = correlation_attack(apps::AppId::kSkype, 4, 3, config);
  EXPECT_GT(metrics.precision, 0.6);
  EXPECT_GT(metrics.recall, 0.6);
}

TEST(CostModel, FormulasMatchDefinition) {
  CostModelParams params;
  params.training_apps = 9;
  params.app_versions = 2;
  params.instances_per_app = 10;
  params.unit_collect_cost = 1.0;
  params.feature_cost = 0.05;
  params.unit_train_cost = 0.2;
  params.victims = 4;
  params.apps_per_victim = 2.5;
  params.unit_identify_cost = 0.1;
  const CostModel model(params);

  EXPECT_EQ(model.recorded_instances(), 180);  // A_n = 9 * 2 * 10
  EXPECT_EQ(model.test_instances(), 10);       // T_d = 4 * 2.5
  EXPECT_DOUBLE_EQ(model.collecting_cost(), 180.0);
  EXPECT_DOUBLE_EQ(model.training_cost(), 180 * 0.25);
  EXPECT_DOUBLE_EQ(model.identification_cost(), 10.0 + 10 * 0.15);
  EXPECT_DOUBLE_EQ(model.perf_cost(), model.collecting_cost() + model.training_cost() +
                                          model.identification_cost());
}

TEST(CostModel, RetrainingOnlyBelowThreshold) {
  CostModelParams params;
  params.performance_threshold = 0.7;
  params.drift_period_days = 7;
  const CostModel model(params);
  const CostBreakdown good = model.total_cost(0.85, 30);
  EXPECT_DOUBLE_EQ(good.total, good.perf);
  const CostBreakdown poor = model.total_cost(0.65, 30);
  EXPECT_NEAR(poor.total, poor.perf + poor.retrain_daily * 30, 1e-9);
  EXPECT_GT(poor.total, good.total);
}

TEST(CostModel, InvalidDriftPeriodThrows) {
  CostModelParams params;
  params.drift_period_days = 0;
  EXPECT_THROW(CostModel{params}, std::invalid_argument);
}

}  // namespace
}  // namespace ltefp::attacks
