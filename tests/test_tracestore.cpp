#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "attacks/replay.hpp"
#include "common/rng.hpp"
#include "tracestore/corpus.hpp"
#include "tracestore/reader.hpp"
#include "tracestore/varint.hpp"
#include "tracestore/writer.hpp"

namespace ltefp::tracestore {
namespace {

TraceMeta sample_meta() {
  TraceMeta meta;
  meta.op = lte::Operator::kTmobile;
  meta.app = 4;
  meta.label = "WhatsApp";
  meta.day = 12;
  meta.seed = 0xDEADBEEFCAFEULL;
  meta.cell = 77;
  meta.session_start = 2'000;
  return meta;
}

sniffer::Trace sample_trace() {
  return sniffer::Trace{
      {0, 0x100, lte::Direction::kDownlink, 500, 1},
      {150, 0x100, lte::Direction::kUplink, 60, 1},
      {1100, 0x4242, lte::Direction::kDownlink, 900, 1},
      {2500, 0x100, lte::Direction::kUplink, 0, 1},
      {2999, 0x200, lte::Direction::kDownlink, 300, 2},
  };
}

std::string encode(const TraceMeta& meta, const sniffer::Trace& trace, WriterOptions opts = {}) {
  std::ostringstream out;
  write_trace(out, meta, trace, opts);
  return out.str();
}

TEST(Varint, ZigzagRoundTrip) {
  const std::int64_t values[] = {0, 1, -1, 63, -64, 1'000'000'000'000, INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Varint, EncodeDecodeBoundaries) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384, UINT64_MAX};
  for (const auto v : values) w.put_varint(v);
  ByteReader r(w.bytes(), "test");
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Varint, RejectsOverlongEncoding) {
  const std::uint8_t overlong[] = {0x80, 0x00};  // value 0 in two bytes
  ByteReader r(overlong, "test");
  EXPECT_THROW(r.get_varint(), TraceStoreError);
}

TEST(Varint, RejectsTruncated) {
  const std::uint8_t dangling[] = {0xFF};  // continuation bit with no next byte
  ByteReader r(dangling, "test");
  EXPECT_THROW(r.get_varint(), TraceStoreError);
}

TEST(TraceStore, RoundTripPreservesMetaAndRecords) {
  const std::string image = encode(sample_meta(), sample_trace());
  std::istringstream in(image);
  TraceMeta meta;
  const sniffer::Trace back = read_trace(in, &meta);
  EXPECT_EQ(meta, sample_meta());
  EXPECT_EQ(back, sample_trace());
}

TEST(TraceStore, EmptyTraceRoundTrips) {
  const std::string image = encode(sample_meta(), {});
  std::istringstream in(image);
  EXPECT_TRUE(read_trace(in).empty());
}

TEST(TraceStore, SmallChunksRoundTrip) {
  // Chunk boundaries must not disturb the cross-chunk delta/dict state.
  const std::string image = encode(sample_meta(), sample_trace(), WriterOptions{2});
  std::istringstream in(image);
  EXPECT_EQ(read_trace(in), sample_trace());
}

TEST(TraceStore, BinaryBeatsCsvOnRealisticTrace) {
  Rng rng(31);
  sniffer::Trace trace;
  TimeMs t = 0;
  for (int i = 0; i < 5'000; ++i) {
    t += rng.uniform_int(1, 40);
    trace.push_back({t, static_cast<lte::Rnti>(0x100 + (i % 4)),
                     rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink,
                     static_cast<int>(rng.uniform_int(16, 3000)), 7});
  }
  const std::string binary = encode(sample_meta(), trace);
  std::ostringstream csv;
  sniffer::write_csv(csv, trace);
  EXPECT_LT(binary.size() * 2, csv.str().size())
      << "binary=" << binary.size() << " csv=" << csv.str().size();
}

// --- Round-trip property test (satellite): random traces, including the
// nasty shapes, survive binary AND CSV round-trips losslessly and agree. ---

sniffer::Trace random_trace(Rng& rng, int shape) {
  sniffer::Trace trace;
  const std::size_t n = (shape == 0) ? 0 : static_cast<std::size_t>(rng.uniform_int(1, 400));
  TimeMs t = (shape == 3) ? 30 * kMsPerHour : 0;  // >24h timestamps
  for (std::size_t i = 0; i < n; ++i) {
    sniffer::TraceRecord r;
    t += rng.uniform_int(0, 500);
    r.time = t;
    // Out-of-order / churning RNTIs: fully random values, no ordering.
    r.rnti = static_cast<lte::Rnti>(rng.uniform_int(0, 0xFFFF));
    r.direction = rng.bernoulli(0.5) ? lte::Direction::kDownlink : lte::Direction::kUplink;
    // Zero-byte records are legal (padding DCIs); keep them common.
    r.tb_bytes = rng.bernoulli(0.2) ? 0 : static_cast<int>(rng.uniform_int(0, 100'000));
    r.cell = static_cast<lte::CellId>(rng.uniform_int(0, 503));
    trace.push_back(r);
  }
  if (shape == 4 && trace.size() > 2) {
    // Non-monotone timestamps (merged multi-sniffer captures): the delta
    // coder must handle negative deltas.
    std::swap(trace.front().time, trace.back().time);
  }
  return trace;
}

TEST(TraceStoreProperty, BinaryAndCsvRoundTripsAgree) {
  Rng rng(2026);
  for (int iter = 0; iter < 60; ++iter) {
    const int shape = iter % 5;
    const sniffer::Trace trace = random_trace(rng, shape);
    TraceMeta meta = sample_meta();
    meta.session_start = trace.empty() ? 0 : trace.front().time;

    const std::string image =
        encode(meta, trace, WriterOptions{static_cast<std::size_t>(rng.uniform_int(1, 64))});
    std::istringstream in(image);
    TraceMeta meta_back;
    const sniffer::Trace from_binary = read_trace(in, &meta_back);
    ASSERT_EQ(from_binary, trace) << "binary round-trip, shape " << shape << " iter " << iter;
    ASSERT_EQ(meta_back, meta);

    std::ostringstream csv;
    sniffer::write_csv(csv, trace);
    const sniffer::Trace from_csv = sniffer::read_csv(csv.str());
    ASSERT_EQ(from_csv, trace) << "csv round-trip, shape " << shape << " iter " << iter;

    ASSERT_EQ(from_binary, from_csv) << "binary/csv disagreement at iter " << iter;
  }
}

// --- Corruption / truncation rejection (acceptance criterion). ---

sniffer::Trace decode_image(const std::string& image) {
  std::istringstream in(image);
  return read_trace(in);
}

TEST(TraceStoreCorruption, EverySingleByteFlipIsRejected) {
  const std::string image = encode(sample_meta(), sample_trace());
  for (std::size_t pos = 0; pos < image.size(); ++pos) {
    for (const std::uint8_t flip : {0x01, 0x80}) {
      std::string bad = image;
      bad[pos] = static_cast<char>(static_cast<std::uint8_t>(bad[pos]) ^ flip);
      EXPECT_THROW(decode_image(bad), TraceStoreError)
          << "flip 0x" << std::hex << int(flip) << " at byte " << std::dec << pos
          << " was not detected";
    }
  }
}

TEST(TraceStoreCorruption, EveryTruncationIsRejected) {
  const std::string image = encode(sample_meta(), sample_trace());
  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_THROW(decode_image(image.substr(0, len)), TraceStoreError)
        << "truncation to " << len << " of " << image.size() << " bytes was not detected";
  }
}

TEST(TraceStoreCorruption, TrailingGarbageIsRejected) {
  const std::string image = encode(sample_meta(), sample_trace());
  EXPECT_THROW(decode_image(image + "x"), TraceStoreError);
}

TEST(TraceStoreCorruption, RejectsForeignFile) {
  EXPECT_THROW(decode_image("time_ms,rnti,direction,tb_bytes,cell\n"), TraceStoreError);
  EXPECT_THROW(decode_image(""), TraceStoreError);
}

TEST(TraceStoreCorruption, RejectsFutureVersion) {
  std::string image = encode(sample_meta(), sample_trace());
  image[4] = 99;
  EXPECT_THROW(decode_image(image), TraceStoreError);
}

// --- Corpus: manifest-indexed directory of traces. ---

class CorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("ltefp_corpus_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CorpusTest, WriteSelectLoad) {
  Rng rng(5);
  {
    CorpusWriter writer(dir_);
    for (int app = 0; app < 3; ++app) {
      for (int day : {0, 7}) {
        TraceMeta meta;
        meta.app = static_cast<std::uint16_t>(app);
        meta.label = "app" + std::to_string(app);
        meta.day = day;
        meta.op = lte::Operator::kVerizon;
        writer.add(meta, random_trace(rng, 1));
      }
    }
    writer.finish();
  }
  ASSERT_TRUE(Corpus::exists(dir_));
  const Corpus corpus = Corpus::open(dir_);
  EXPECT_EQ(corpus.entries().size(), 6u);

  CorpusFilter by_app;
  by_app.app = 1;
  EXPECT_EQ(corpus.select(by_app).size(), 2u);

  CorpusFilter by_day;
  by_day.day_min = 1;
  const auto later = corpus.select(by_day);
  EXPECT_EQ(later.size(), 3u);
  for (const auto& e : later) EXPECT_EQ(e.meta.day, 7);

  // Loading decodes and validates; records match the manifest count.
  for (const auto& e : corpus.entries()) {
    EXPECT_EQ(corpus.load(e).size(), e.records);
  }
}

TEST_F(CorpusTest, UnfinishedCorpusIsInvisible) {
  CorpusWriter writer(dir_);
  writer.add(sample_meta(), sample_trace());
  // finish() not yet called: no manifest, so the corpus does not exist.
  EXPECT_FALSE(Corpus::exists(dir_));
  EXPECT_THROW(Corpus::open(dir_), TraceStoreError);
}

TEST_F(CorpusTest, CorruptedTraceFileIsRejectedOnLoad) {
  {
    CorpusWriter writer(dir_);
    writer.add(sample_meta(), sample_trace());
    writer.finish();
  }
  const Corpus corpus = Corpus::open(dir_);
  const auto path = std::filesystem::path(dir_) / corpus.entries()[0].file;
  // Flip one payload byte on disk.
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }
  ASSERT_GT(image.size(), 40u);
  image[40] = static_cast<char>(image[40] ^ 0x40);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << image;
  }
  EXPECT_THROW(corpus.load(corpus.entries()[0]), TraceStoreError);
}

TEST_F(CorpusTest, RecordThenReplayYieldsBitIdenticalDataset) {
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 1;
  config.trace_duration = seconds(8);
  config.seed = 321;

  const attacks::RecordResult rec = attacks::record_corpus(config, dir_);
  EXPECT_EQ(rec.traces, static_cast<std::size_t>(apps::kNumApps));
  EXPECT_GT(rec.records, 0u);
  EXPECT_LT(rec.corpus_bytes, rec.csv_bytes);

  const features::Dataset live = attacks::build_dataset(config);
  attacks::PipelineConfig replay = config;
  replay.replay_corpus = dir_;
  const features::Dataset replayed = attacks::build_dataset(replay);

  ASSERT_EQ(replayed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replayed.samples[i].label, live.samples[i].label) << "window " << i;
    // Feature doubles must match bit-for-bit: replay feeds the classifier
    // the exact records the simulation produced.
    ASSERT_EQ(replayed.samples[i].features, live.samples[i].features) << "window " << i;
  }
}

TEST_F(CorpusTest, LoadCorpusFiltersByApp) {
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 2;
  config.trace_duration = seconds(4);
  config.seed = 99;
  attacks::record_corpus(config, dir_);

  const auto all = attacks::load_corpus(dir_);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(2 * apps::kNumApps));
  const auto skype = attacks::load_corpus(dir_, apps::AppId::kSkype);
  ASSERT_EQ(skype.size(), 2u);
  for (const auto& t : skype) EXPECT_EQ(t.app, apps::AppId::kSkype);
}

TEST_F(CorpusTest, ManifestMetadataMismatchIsRejected) {
  {
    CorpusWriter writer(dir_);
    writer.add(sample_meta(), sample_trace());
    writer.finish();
  }
  Corpus corpus = Corpus::open(dir_);
  CorpusEntry tampered = corpus.entries()[0];
  tampered.meta.seed ^= 1;
  EXPECT_THROW(corpus.load(tampered), TraceStoreError);
}

}  // namespace
}  // namespace ltefp::tracestore
