#include <gtest/gtest.h>

#include <set>

#include "lte/epc.hpp"
#include "lte/rnti.hpp"

namespace ltefp::lte {
namespace {

TEST(RntiManager, AllocatesUniqueValuesInCRntiRange) {
  RntiManager manager(RntiManagerConfig{}, Rng(1));
  std::set<Rnti> seen;
  for (int i = 0; i < 500; ++i) {
    const Rnti rnti = manager.allocate(0);
    EXPECT_GE(rnti, kMinCRnti);
    EXPECT_LE(rnti, kMaxCRnti);
    EXPECT_TRUE(seen.insert(rnti).second) << "duplicate active RNTI";
  }
  EXPECT_EQ(manager.active_count(), 500u);
}

TEST(RntiManager, ReleaseMakesInactive) {
  RntiManager manager(RntiManagerConfig{}, Rng(2));
  const Rnti rnti = manager.allocate(0);
  EXPECT_TRUE(manager.is_active(rnti));
  manager.release(rnti, 10);
  EXPECT_FALSE(manager.is_active(rnti));
  EXPECT_EQ(manager.active_count(), 0u);
}

TEST(RntiManager, DoubleReleaseIsNoOp) {
  RntiManager manager(RntiManagerConfig{}, Rng(3));
  const Rnti rnti = manager.allocate(0);
  manager.release(rnti, 1);
  manager.release(rnti, 2);  // must not corrupt state
  EXPECT_EQ(manager.active_count(), 0u);
}

TEST(RntiManager, CooldownPreventsImmediateReuse) {
  RntiManagerConfig config;
  config.randomize = false;  // deterministic scan makes reuse observable
  config.reuse_cooldown = 1'000'000;
  RntiManager manager(config, Rng(4));
  const Rnti first = manager.allocate(0);
  manager.release(first, 0);
  // Exhaust every other value in the pool; `first` stays in cooldown.
  constexpr int kPoolSize = kMaxCRnti - kMinCRnti + 1;
  for (int i = 0; i < kPoolSize - 1; ++i) manager.allocate(1);
  // Only the cooling value remains: allocation must refuse to reuse it.
  EXPECT_THROW(manager.allocate(2), std::runtime_error);
  // Once the cooldown expires, the value is reissued.
  EXPECT_EQ(manager.allocate(1'000'001), first);
}

TEST(RntiManager, SequentialModeWrapsAndSkipsActive) {
  RntiManagerConfig config;
  config.randomize = false;
  config.reuse_cooldown = 0;
  RntiManager manager(config, Rng(5));
  const Rnti a = manager.allocate(0);
  const Rnti b = manager.allocate(0);
  EXPECT_EQ(a, kMinCRnti);
  EXPECT_EQ(b, static_cast<Rnti>(kMinCRnti + 1));
}

TEST(RntiManager, RandomizedAssignmentSpreads) {
  RntiManager manager(RntiManagerConfig{}, Rng(6));
  // Random C-RNTIs should not be clustered at the bottom of the range.
  int high = 0;
  for (int i = 0; i < 200; ++i) {
    if (manager.allocate(0) > 0x8000) ++high;
  }
  EXPECT_GT(high, 50);
}

TEST(Epc, AttachAssignsStableTmsi) {
  Epc epc(Rng(1));
  const Tmsi t1 = epc.attach(1001);
  const Tmsi t2 = epc.attach(1001);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(epc.subscriber_count(), 1u);
}

TEST(Epc, DistinctSubscribersDistinctTmsis) {
  Epc epc(Rng(2));
  std::set<Tmsi> tmsis;
  for (Imsi imsi = 1; imsi <= 300; ++imsi) {
    EXPECT_TRUE(tmsis.insert(epc.attach(imsi)).second);
  }
}

TEST(Epc, BidirectionalLookup) {
  Epc epc(Rng(3));
  const Tmsi tmsi = epc.attach(42);
  EXPECT_EQ(epc.tmsi_of(42), tmsi);
  EXPECT_EQ(epc.imsi_of(tmsi), 42u);
  EXPECT_FALSE(epc.tmsi_of(43).has_value());
  EXPECT_FALSE(epc.imsi_of(tmsi + 1).has_value());
}

TEST(Epc, ReallocationChangesTmsiAndInvalidatesOld) {
  Epc epc(Rng(4));
  const Tmsi old_tmsi = epc.attach(7);
  const Tmsi new_tmsi = epc.reallocate_tmsi(7);
  EXPECT_NE(old_tmsi, new_tmsi);
  EXPECT_FALSE(epc.imsi_of(old_tmsi).has_value());
  EXPECT_EQ(epc.imsi_of(new_tmsi), 7u);
  EXPECT_EQ(epc.subscriber_count(), 1u);
}

}  // namespace
}  // namespace ltefp::lte
