// Tests for the streaming attack daemon (src/stream/): incremental window
// extraction bit-identical to the batch extractor, session assembly across
// idle cutoffs, verdict CSV format, corpus k-way merge ordering, and the
// end-to-end streaming-equivalence contract — the daemon's verdict stream
// is byte-identical at 1/2/8 workers and its final verdicts match batch
// classify_trace exactly. Suite names contain "Stream"/"Spsc" so
// tools/check.sh runs them under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "attacks/collect.hpp"
#include "attacks/pipeline.hpp"
#include "attacks/replay.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "features/window.hpp"
#include "stream/daemon.hpp"
#include "stream/replay_source.hpp"
#include "stream/session.hpp"
#include "stream/verdict.hpp"
#include "stream/window_stream.hpp"
#include "tracestore/corpus.hpp"

namespace ltefp {
namespace {

namespace fs = std::filesystem;

/// Deterministic synthetic trace: bursty arrivals, mixed directions,
/// occasional multi-record subframes and intra-window silence.
sniffer::Trace synth_trace(std::uint64_t seed, std::size_t n, TimeMs start,
                           lte::CellId cell = 7) {
  Rng rng(seed);
  sniffer::Trace trace;
  trace.reserve(n);
  TimeMs time = start;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && !rng.bernoulli(0.2)) {
      time += rng.bernoulli(0.15) ? rng.uniform_int(80, 400) : rng.uniform_int(1, 30);
    }
    sniffer::TraceRecord r;
    r.time = time;
    r.rnti = static_cast<lte::Rnti>(100 + rng.uniform_int(0, 2));
    r.direction = rng.bernoulli(0.6) ? lte::Direction::kDownlink : lte::Direction::kUplink;
    r.tb_bytes = static_cast<int>(rng.uniform_int(16, 3000));
    r.cell = cell;
    trace.push_back(r);
  }
  return trace;
}

/// Streams `trace` through a StreamingWindower with the given watermark
/// cadence (0 = none until finish) and returns the emitted slices.
std::vector<stream::WindowSlice> stream_windows(const sniffer::Trace& trace,
                                                const features::WindowConfig& config,
                                                TimeMs watermark_every) {
  std::vector<stream::WindowSlice> out;
  stream::StreamingWindower w(trace.front().time, config);
  TimeMs next_wm = watermark_every > 0 ? watermark_every : 0;
  for (const auto& r : trace) {
    if (watermark_every > 0 && r.time >= next_wm) {
      // All records with time < next_wm are in: the tick is legal.
      w.close_until(next_wm, out);
      next_wm = (r.time / watermark_every + 1) * watermark_every;
    }
    w.feed(r, out);
  }
  w.finish(out);
  return out;
}

TEST(StreamWindower, BitIdenticalToBatchExtractor) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const sniffer::Trace trace = synth_trace(seed, 400, /*start=*/2000);
    for (const auto link : {lte::LinkFilter::kBoth, lte::LinkFilter::kDownlinkOnly,
                            lte::LinkFilter::kUplinkOnly}) {
      for (const bool include_empty : {false, true}) {
        features::WindowConfig config;
        config.link = link;
        config.include_empty = include_empty;
        const auto batch = features::extract_windows(trace, trace.front().time, config);
        for (const TimeMs cadence : {TimeMs{0}, TimeMs{128}, TimeMs{1}, TimeMs{1000}}) {
          const auto slices = stream_windows(trace, config, cadence);
          ASSERT_EQ(slices.size(), batch.size())
              << "seed=" << seed << " link=" << static_cast<int>(link)
              << " empty=" << include_empty << " cadence=" << cadence;
          for (std::size_t i = 0; i < batch.size(); ++i) {
            // Exact double equality: the contract is bit-identity, not
            // tolerance.
            ASSERT_EQ(slices[i].features, batch[i])
                << "window " << i << " cadence " << cadence;
          }
        }
      }
    }
  }
}

TEST(StreamWindower, SliceMetadataMatchesWindowGrid) {
  features::WindowConfig config;
  sniffer::Trace trace = synth_trace(3, 200, /*start=*/500);
  const auto slices = stream_windows(trace, config, 128);
  ASSERT_FALSE(slices.empty());
  std::size_t frames = 0;
  TimeMs prev_end = 0;
  for (const auto& s : slices) {
    EXPECT_EQ((s.window_end - 500 - config.window_ms) % config.window_ms, 0);
    EXPECT_GT(s.window_end, prev_end);  // strictly increasing per lane
    prev_end = s.window_end;
    ASSERT_GT(s.frames, 0u);  // include_empty=false
    EXPECT_GE(s.last_record, s.window_end - config.window_ms);
    EXPECT_LT(s.last_record, s.window_end);
    frames += s.frames;
  }
  EXPECT_EQ(frames, trace.size());  // kBoth: every record windowed
}

TEST(StreamWindower, EmptyTailWindowsAreDiscarded) {
  features::WindowConfig config;
  config.include_empty = true;
  sniffer::Trace trace = synth_trace(11, 50, /*start=*/0);
  const auto batch = features::extract_windows(trace, trace.front().time, config);
  // A long watermark run past the last record buffers empty windows that
  // the batch extractor would never emit; finish() must drop them.
  std::vector<stream::WindowSlice> out;
  stream::StreamingWindower w(trace.front().time, config);
  for (const auto& r : trace) w.feed(r, out);
  w.close_until(trace.back().time + 10'000, out);
  w.finish(out);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) EXPECT_EQ(out[i].features, batch[i]);
}

// ---------------------------------------------------------------------------
// SessionAssembler

stream::StreamRecord rec(std::uint32_t lane, TimeMs time, lte::Rnti rnti = 100,
                         int bytes = 500, lte::CellId cell = 1) {
  stream::StreamRecord r;
  r.lane = lane;
  r.record = sniffer::TraceRecord{time, rnti, lte::Direction::kDownlink, bytes, cell};
  return r;
}

TEST(StreamSession, IdleCutoffSplitsSessionsAtFeedTime) {
  features::WindowConfig window;
  stream::SessionAssembler asm_(window, attacks::kSessionIdleCutoffMs);
  std::vector<stream::PendingWindow> windows;
  std::vector<stream::SessionEnd> ends;

  asm_.feed(rec(0, 1000, 100), windows, ends);
  asm_.feed(rec(0, 1050, 100), windows, ends);
  // Next record exactly at the cutoff gap: the old session must end first.
  const TimeMs resume = 1050 + attacks::kSessionIdleCutoffMs;
  asm_.feed(rec(0, resume, 200), windows, ends);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].lane, 0u);
  EXPECT_EQ(ends[0].session, 0u);
  EXPECT_EQ(ends[0].rnti, 100);
  EXPECT_EQ(ends[0].end_time, 1050 + attacks::kSessionIdleCutoffMs);
  // First session's single window emitted by the finish inside the cutoff.
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].session, 0u);
  EXPECT_EQ(windows[0].window_end, 1000 + window.window_ms);

  asm_.finish(windows, ends);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[1].session, 1u);  // per-lane session index advanced
  EXPECT_EQ(ends[1].rnti, 200);    // new session rebinds to its first RNTI
  EXPECT_EQ(ends[1].end_time, resume + attacks::kSessionIdleCutoffMs);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].session, 1u);
  EXPECT_EQ(windows[1].window_end, resume + window.window_ms);
  EXPECT_EQ(asm_.sessions_started(), 2u);
  EXPECT_EQ(asm_.records(), 3u);
}

TEST(StreamSession, WatermarkAdvanceCutsIdleSessions) {
  features::WindowConfig window;
  stream::SessionAssembler asm_(window, attacks::kSessionIdleCutoffMs);
  std::vector<stream::PendingWindow> windows;
  std::vector<stream::SessionEnd> ends;

  asm_.feed(rec(3, 500), windows, ends);
  // Watermark just shy of the cutoff: session stays live.
  asm_.advance(500 + attacks::kSessionIdleCutoffMs - 1, windows, ends);
  EXPECT_TRUE(ends.empty());
  ASSERT_EQ(windows.size(), 1u);  // but its window closed at the tick

  // Watermark at the cutoff: the gap has provably elapsed.
  asm_.advance(500 + attacks::kSessionIdleCutoffMs, windows, ends);
  ASSERT_EQ(ends.size(), 1u);
  EXPECT_EQ(ends[0].lane, 3u);
  EXPECT_EQ(ends[0].end_time, 500 + attacks::kSessionIdleCutoffMs);
  // finish() after the cut is a no-op for this lane.
  asm_.finish(windows, ends);
  EXPECT_EQ(ends.size(), 1u);
  EXPECT_EQ(windows.size(), 1u);
}

TEST(StreamSession, LanesAreIndependent) {
  features::WindowConfig window;
  stream::SessionAssembler asm_(window, attacks::kSessionIdleCutoffMs);
  std::vector<stream::PendingWindow> windows;
  std::vector<stream::SessionEnd> ends;

  asm_.feed(rec(1, 100, 100, 500, /*cell=*/10), windows, ends);
  asm_.feed(rec(2, 150, 200, 700, /*cell=*/20), windows, ends);
  asm_.finish(windows, ends);
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(ends.size(), 2u);
  // finish() visits lanes in lane order regardless of feed order.
  EXPECT_EQ(ends[0].lane, 1u);
  EXPECT_EQ(ends[0].cell, 10);
  EXPECT_EQ(ends[1].lane, 2u);
  EXPECT_EQ(ends[1].cell, 20);
  EXPECT_EQ(asm_.sessions_started(), 2u);
}

TEST(StreamSession, RejectsCutoffNotExceedingWindow) {
  features::WindowConfig window;  // 100 ms
  EXPECT_THROW(stream::SessionAssembler(window, 100), std::invalid_argument);
  EXPECT_THROW(stream::SessionAssembler(window, 50), std::invalid_argument);
  EXPECT_NO_THROW(stream::SessionAssembler(window, 101));
}

// ---------------------------------------------------------------------------
// Verdict CSV

TEST(StreamVerdict, CsvGolden) {
  EXPECT_EQ(stream::verdict_csv_header(),
            "time_ms,cell,lane,rnti,session,app,confidence,windows,final");
  stream::VerdictRecord v;
  v.time = 2108;
  v.cell = 3;
  v.lane = 1;
  v.rnti = 63422;
  v.session = 2;
  v.app = apps::AppId::kYoutube;
  v.confidence = 0.5;
  v.windows = 4;
  v.final_verdict = true;
  EXPECT_EQ(stream::to_csv(v), "2108,3,1,63422,2,YouTube,0.500000,4,1");

  std::ostringstream out;
  stream::CsvSink sink(out);
  sink.emit(v);
  EXPECT_EQ(out.str(),
            "time_ms,cell,lane,rnti,session,app,confidence,windows,final\n"
            "2108,3,1,63422,2,YouTube,0.500000,4,1\n");
}

// ---------------------------------------------------------------------------
// ReplaySource

TEST(StreamReplay, MergesCorpusByTimeThenLane) {
  const std::string dir = testing::TempDir() + "ltefp_stream_replay_corpus";
  fs::remove_all(dir);
  std::vector<sniffer::Trace> traces;
  {
    tracestore::CorpusWriter writer(dir);
    for (std::uint64_t i = 0; i < 3; ++i) {
      tracestore::TraceMeta meta;
      meta.app = static_cast<std::uint16_t>(i);
      meta.label = "lane" + std::to_string(i);
      meta.seed = i;
      meta.cell = static_cast<lte::CellId>(i);
      const sniffer::Trace t = synth_trace(90 + i, 120, /*start=*/i * 7);
      meta.session_start = t.front().time;
      writer.add(meta, t);
      traces.push_back(t);
    }
    writer.finish();
  }

  stream::ReplaySource source(dir);
  EXPECT_EQ(source.lanes(), 3u);
  std::vector<stream::StreamRecord> merged;
  stream::StreamRecord r;
  while (source.next(r)) merged.push_back(r);
  const std::size_t total = traces[0].size() + traces[1].size() + traces[2].size();
  ASSERT_EQ(merged.size(), total);
  EXPECT_EQ(source.records_emitted(), total);

  std::vector<sniffer::Trace> per_lane(3);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const bool ordered =
        merged[i - 1].record.time < merged[i].record.time ||
        (merged[i - 1].record.time == merged[i].record.time &&
         merged[i - 1].lane <= merged[i].lane);
    ASSERT_TRUE(ordered) << "merge order violated at " << i;
  }
  for (const auto& m : merged) {
    ASSERT_LT(m.lane, 3u);
    per_lane[m.lane].push_back(m.record);
  }
  for (std::size_t lane = 0; lane < 3; ++lane) {
    ASSERT_EQ(per_lane[lane], traces[lane]) << "lane " << lane;
  }
  fs::remove_all(dir);
}

TEST(StreamReplay, RejectsNegativeSpeedAndMissingCorpus) {
  EXPECT_THROW(stream::ReplaySource("/nonexistent/corpus"), std::exception);
  const std::string dir = testing::TempDir() + "ltefp_stream_replay_speed";
  fs::remove_all(dir);
  {
    tracestore::CorpusWriter writer(dir);
    tracestore::TraceMeta meta;
    writer.add(meta, synth_trace(1, 10, 0));
    writer.finish();
  }
  EXPECT_THROW(stream::ReplaySource(dir, -1.0), std::invalid_argument);
  stream::ReplaySource paced(dir, 100.0);
  EXPECT_EQ(paced.speed(), 100.0);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End to end: daemon vs batch classification

/// Splits a trace at idle gaps >= cutoff — the reference segmentation the
/// daemon's session assembler must reproduce.
std::vector<sniffer::Trace> split_sessions(const sniffer::Trace& trace, TimeMs cutoff) {
  std::vector<sniffer::Trace> out;
  for (const auto& r : trace) {
    if (out.empty() || r.time - out.back().back().time >= cutoff) out.emplace_back();
    out.back().push_back(r);
  }
  return out;
}

std::string render_csv(const std::vector<stream::VerdictRecord>& verdicts) {
  std::string s = stream::verdict_csv_header() + "\n";
  for (const auto& v : verdicts) s += stream::to_csv(v) + "\n";
  return s;
}

TEST(StreamEndToEnd, VerdictsMatchBatchAndAreThreadCountInvariant) {
  const std::string dir = testing::TempDir() + "ltefp_stream_e2e_corpus";
  fs::remove_all(dir);
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 1;
  config.trace_duration = seconds(8);
  config.seed = 2026;
  attacks::record_corpus(config, dir);

  config.replay_corpus = dir;
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(attacks::build_dataset(config));
  ASSERT_NE(pipeline.model(), nullptr);

  stream::StreamConfig stream_config;
  stream_config.window = pipeline.window_config();

  std::vector<std::string> streams;
  std::vector<stream::VerdictRecord> verdicts;  // from the last run
  stream::StreamStats stats;
  for (const int workers : {1, 2, 8}) {
    stream_config.workers = workers;
    stream::ReplaySource source(dir);
    stream::CollectorSink sink;
    stream::StreamDaemon daemon(*pipeline.model(), stream_config);
    stats = daemon.run(source, sink);
    streams.push_back(render_csv(sink.verdicts()));
    verdicts = sink.verdicts();
  }
  // The determinism contract: byte-identical verdict stream at any worker
  // count.
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);

  // Final verdicts must equal batch classify_trace over the reference
  // segmentation, exactly (same votes, same tie-breaks, same confidence).
  const tracestore::Corpus corpus = tracestore::Corpus::open(dir);
  std::vector<stream::VerdictRecord> finals;
  for (const auto& v : verdicts) {
    if (v.final_verdict) finals.push_back(v);
  }
  std::size_t expected_sessions = 0;
  for (const auto& entry : corpus.entries()) {
    const sniffer::Trace trace = corpus.load(entry);
    ASSERT_FALSE(trace.empty());
    const auto segments = split_sessions(trace, stream_config.idle_cutoff);
    for (std::size_t s = 0; s < segments.size(); ++s) {
      const auto it = std::find_if(finals.begin(), finals.end(), [&](const auto& v) {
        return v.lane == entry.seq && v.session == s;
      });
      ASSERT_NE(it, finals.end()) << "no final verdict for lane " << entry.seq
                                  << " session " << s;
      const attacks::TraceVerdict batch =
          pipeline.classify_trace(segments[s], segments[s].front().time);
      EXPECT_EQ(it->app, batch.app);
      EXPECT_EQ(it->confidence, batch.confidence);  // bit-identical division
      EXPECT_EQ(it->windows, batch.window_count);
      EXPECT_EQ(it->time, segments[s].back().time + stream_config.idle_cutoff);
      EXPECT_EQ(it->rnti, segments[s].front().rnti);
      ++expected_sessions;
    }
  }
  EXPECT_EQ(finals.size(), expected_sessions);
  EXPECT_EQ(stats.final_verdicts, expected_sessions);
  EXPECT_EQ(stats.sessions, expected_sessions);

  // Latency acceptance: every interim decision is knowable within its
  // window, strictly inside one subframe batch.
  ASSERT_GT(stats.latency.count(), 0u);
  EXPECT_LT(stats.latency.p99(), static_cast<double>(stream_config.batch_ms));
  // A record at a window's first subframe decides at window_end, exactly
  // one window later — the worst knowable-time case.
  EXPECT_LE(stats.latency.max(), static_cast<double>(stream_config.window.window_ms));
  // Backpressure instrumentation: one mark per worker, and the queues were
  // actually exercised.
  ASSERT_EQ(stats.queue_high_water.size(), 8u);
  for (const auto hw : stats.queue_high_water) EXPECT_GT(hw, 0u);

  // The interim verdict stream converges: per (lane, session), window
  // counts increase by one per verdict and times strictly increase.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> last_count;
  TimeMs prev_time = -1;
  for (const auto& v : verdicts) {
    EXPECT_GE(v.time, prev_time);  // merged stream is time-ordered
    prev_time = v.time;
    if (v.final_verdict) continue;
    auto& count = last_count[{v.lane, v.session}];
    EXPECT_EQ(v.windows, count + 1);
    count = v.windows;
  }
  fs::remove_all(dir);
}

TEST(StreamEndToEnd, WindowVerdictsCanBeSuppressed) {
  const std::string dir = testing::TempDir() + "ltefp_stream_finals_corpus";
  fs::remove_all(dir);
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;
  config.traces_per_app = 1;
  config.trace_duration = seconds(4);
  config.seed = 9;
  attacks::record_corpus(config, dir);
  config.replay_corpus = dir;
  attacks::FingerprintPipeline pipeline(config);
  pipeline.train(attacks::build_dataset(config));

  stream::StreamConfig stream_config;
  stream_config.window = pipeline.window_config();
  stream_config.emit_window_verdicts = false;
  stream_config.workers = 2;
  stream::ReplaySource source(dir);
  stream::CollectorSink sink;
  stream::StreamDaemon daemon(*pipeline.model(), stream_config);
  const stream::StreamStats stats = daemon.run(source, sink);
  EXPECT_EQ(stats.window_verdicts, 0u);
  EXPECT_EQ(sink.verdicts().size(), stats.final_verdicts);
  for (const auto& v : sink.verdicts()) EXPECT_TRUE(v.final_verdict);
  // Latency is still measured: the decision instrument does not depend on
  // interim emission.
  EXPECT_GT(stats.latency.count(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ltefp
