#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"

namespace ltefp::ml {
namespace {

Dataset blobs(Rng& rng, std::size_t per_class = 100, int classes = 3) {
  Dataset data;
  data.feature_names = {"a", "b", "c", "d"};
  data.label_names.resize(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data.add({rng.normal(c * 4.0, 1.0), rng.normal(-c * 3.0, 1.0), rng.normal(0, 1),
                rng.normal(c * 1.0, 2.0)},
               c);
    }
  }
  return data;
}

TEST(ForestSerialization, RoundTripPredictionsIdentical) {
  Rng rng(1);
  const Dataset data = blobs(rng);
  RandomForest original(ForestConfig{.num_trees = 12});
  original.fit(data);

  std::stringstream buffer;
  save_forest(buffer, original);
  const RandomForest reloaded = load_forest(buffer);

  EXPECT_EQ(reloaded.tree_count(), original.tree_count());
  EXPECT_EQ(reloaded.class_count(), original.class_count());
  for (const auto& s : data.samples) {
    ASSERT_EQ(reloaded.predict(s.features), original.predict(s.features));
    const auto pa = original.predict_proba(s.features);
    const auto pb = reloaded.predict_proba(s.features);
    for (std::size_t c = 0; c < pa.size(); ++c) {
      ASSERT_DOUBLE_EQ(pa[c], pb[c]);
    }
  }
}

TEST(ForestSerialization, UntrainedForestRefusesToSave) {
  RandomForest empty;
  std::stringstream buffer;
  EXPECT_THROW(save_forest(buffer, empty), std::logic_error);
}

TEST(ForestSerialization, MalformedInputsThrow) {
  {
    std::stringstream in("garbage");
    EXPECT_THROW(load_forest(in), std::runtime_error);
  }
  {
    std::stringstream in("ltefp-rf v1\ntrees 0 classes 3\n");
    EXPECT_THROW(load_forest(in), std::runtime_error);
  }
  {
    std::stringstream in("ltefp-rf v1\ntrees 1 classes 2\ntree 1\nnode 0 0.5 5 6\n");
    EXPECT_THROW(load_forest(in), std::invalid_argument);  // child out of range
  }
  {
    std::stringstream in("ltefp-rf v1\ntrees 1 classes 2\ntree 1\nleaf 1.0\n");
    EXPECT_THROW(load_forest(in), std::runtime_error);  // truncated distribution
  }
}

TEST(ForestSerialization, HandCraftedStumpWorks) {
  std::stringstream in(
      "ltefp-rf v1\n"
      "trees 1 classes 2\n"
      "tree 3\n"
      "node 0 0.5 1 2\n"
      "leaf 1 0\n"
      "leaf 0 1\n");
  const RandomForest forest = load_forest(in);
  EXPECT_EQ(forest.predict({0.0}), 0);
  EXPECT_EQ(forest.predict({1.0}), 1);
}

TEST(StandardizerSerialization, RoundTrip) {
  Rng rng(2);
  const Dataset data = blobs(rng, 50, 2);
  features::Standardizer original;
  original.fit(data);
  std::stringstream buffer;
  save_standardizer(buffer, original);
  const features::Standardizer reloaded = load_standardizer(buffer);
  const features::FeatureVector probe{1.0, -2.0, 0.5, 3.0};
  EXPECT_EQ(original.transform(probe), reloaded.transform(probe));
}

TEST(StandardizerSerialization, UnfittedRefusesToSave) {
  features::Standardizer empty;
  std::stringstream buffer;
  EXPECT_THROW(save_standardizer(buffer, empty), std::logic_error);
}

TEST(StandardizerSerialization, FromParamsValidation) {
  EXPECT_THROW(features::Standardizer::from_params({1.0}, {}), std::invalid_argument);
  EXPECT_THROW(features::Standardizer::from_params({1.0}, {0.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ltefp::ml
