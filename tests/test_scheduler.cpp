#include "lte/scheduler.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "lte/tbs.hpp"

namespace ltefp::lte {
namespace {

std::vector<SchedCandidate> make_candidates(int n, int buffer, int mcs) {
  std::vector<SchedCandidate> out;
  for (int i = 0; i < n; ++i) {
    SchedCandidate c;
    c.rnti = static_cast<Rnti>(0x100 + i);
    c.buffer_bytes = buffer;
    c.mcs = mcs;
    c.avg_rate = 1.0;
    out.push_back(c);
  }
  return out;
}

int total_prbs(const std::vector<SchedDecision>& decisions) {
  return std::accumulate(decisions.begin(), decisions.end(), 0,
                         [](int sum, const SchedDecision& d) { return sum + d.nprb; });
}

class BothSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(BothSchedulers, EmptyCandidatesYieldNothing) {
  auto scheduler = make_scheduler(GetParam());
  EXPECT_TRUE(scheduler->schedule({}, 50, 50).empty());
}

TEST_P(BothSchedulers, NeverExceedsPrbBudget) {
  auto scheduler = make_scheduler(GetParam());
  const auto candidates = make_candidates(20, 5000, 10);
  for (int budget : {6, 25, 50, 100}) {
    const auto decisions = scheduler->schedule(candidates, budget, 100);
    EXPECT_LE(total_prbs(decisions), budget) << "budget=" << budget;
  }
}

TEST_P(BothSchedulers, RespectsPerUeCap) {
  auto scheduler = make_scheduler(GetParam());
  const auto candidates = make_candidates(2, 1'000'000, 20);
  const auto decisions = scheduler->schedule(candidates, 100, 12);
  ASSERT_FALSE(decisions.empty());
  for (const auto& d : decisions) {
    EXPECT_LE(d.nprb, 12);
  }
}

TEST_P(BothSchedulers, GrantCoversBufferWhenRoomAvailable) {
  auto scheduler = make_scheduler(GetParam());
  const auto candidates = make_candidates(1, 500, 15);
  const auto decisions = scheduler->schedule(candidates, 100, 100);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_GE(decisions[0].tb_bytes, 500);
  // Minimal: one PRB fewer would not fit.
  EXPECT_LT(max_tb_bytes(15, decisions[0].nprb - 1), 500);
}

TEST_P(BothSchedulers, TbBytesMatchesGrant) {
  auto scheduler = make_scheduler(GetParam());
  const auto candidates = make_candidates(5, 3000, 12);
  for (const auto& d : scheduler->schedule(candidates, 50, 50)) {
    EXPECT_EQ(d.tb_bytes, max_tb_bytes(d.mcs, d.nprb));
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, BothSchedulers,
                         ::testing::Values(SchedulerKind::kRoundRobin,
                                           SchedulerKind::kProportionalFair));

TEST(RoundRobin, RotatesStartingCandidate) {
  RoundRobinScheduler scheduler;
  // Budget fits only one full grant per subframe.
  auto candidates = make_candidates(3, 4000, 5);
  std::vector<Rnti> first_served;
  for (int tti = 0; tti < 3; ++tti) {
    const auto decisions = scheduler.schedule(candidates, 30, 30);
    ASSERT_FALSE(decisions.empty());
    first_served.push_back(decisions.front().rnti);
  }
  // Three subframes serve three different heads.
  EXPECT_NE(first_served[0], first_served[1]);
  EXPECT_NE(first_served[1], first_served[2]);
}

TEST(ProportionalFair, PrefersStarvedUe) {
  ProportionalFairScheduler scheduler;
  auto candidates = make_candidates(2, 5000, 10);
  candidates[0].avg_rate = 100.0;  // well served
  candidates[1].avg_rate = 1.0;    // starved
  const auto decisions = scheduler.schedule(candidates, 10, 10);
  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(decisions.front().rnti, candidates[1].rnti);
}

TEST(ProportionalFair, PrefersBetterChannelAtEqualService) {
  ProportionalFairScheduler scheduler;
  auto candidates = make_candidates(2, 5000, 5);
  candidates[1].mcs = 25;  // much better channel
  const auto decisions = scheduler.schedule(candidates, 10, 10);
  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(decisions.front().rnti, candidates[1].rnti);
}

TEST(Scheduler, SkipsEmptyBuffers) {
  RoundRobinScheduler scheduler;
  auto candidates = make_candidates(3, 0, 10);
  candidates[1].buffer_bytes = 100;
  const auto decisions = scheduler.schedule(candidates, 50, 50);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].rnti, candidates[1].rnti);
}

}  // namespace
}  // namespace ltefp::lte
