// Tests for the bounded SPSC ring (common/spsc.hpp): capacity contract,
// FIFO order, non-blocking edges, cross-thread backpressure, and a stress
// pass meant to run under ThreadSanitizer (tools/check.sh runs this suite
// in the TSan step).
#include "common/spsc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ltefp {
namespace {

TEST(SpscQueue, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), std::invalid_argument);
  EXPECT_THROW(SpscQueue<int>(1), std::invalid_argument);
  EXPECT_THROW(SpscQueue<int>(3), std::invalid_argument);
  EXPECT_THROW(SpscQueue<int>(100), std::invalid_argument);
  EXPECT_NO_THROW(SpscQueue<int>(2));
  EXPECT_NO_THROW(SpscQueue<int>(4096));
}

TEST(SpscQueue, FifoSingleThread) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_EQ(q.size(), 8u);
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
  EXPECT_EQ(q.size(), 0u);
}

TEST(SpscQueue, TryPushFullReturnsFalse) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  int out = -1;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(q.try_push(99));  // freed slot is reusable
  EXPECT_FALSE(q.try_push(100));
}

TEST(SpscQueue, WrapAroundKeepsOrder) {
  SpscQueue<int> q(4);
  int out = -1;
  // Drive the monotonic counters well past one lap of the ring.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_push(i));
    ASSERT_TRUE(q.try_push(i + 1000));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i + 1000);
  }
}

TEST(SpscQueue, MoveOnlyFriendlyPayload) {
  SpscQueue<std::string> q(4);
  q.push(std::string(100, 'x'));
  std::string out;
  q.pop(out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(out[0], 'x');
}

TEST(SpscQueue, BlockingPushAppliesBackpressure) {
  SpscQueue<int> q(2);
  ASSERT_TRUE(q.try_push(0));
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // must block until the consumer frees a slot
    pushed.store(true, std::memory_order_release);
  });
  // The producer cannot complete while the queue is full. (A sleep-based
  // "still blocked" probe would be flaky; instead verify the item count
  // conservation below — the push must not have dropped or duplicated.)
  int out = -1;
  q.pop(out);
  EXPECT_EQ(out, 0);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  q.pop(out);
  EXPECT_EQ(out, 1);
  q.pop(out);
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.try_pop(out));
}

TEST(SpscQueue, HighWaterTracksDeepestPush) {
  SpscQueue<int> q(8);
  EXPECT_EQ(q.high_water(), 0u);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.high_water(), 3u);
  int out = -1;
  q.pop(out);
  q.pop(out);
  q.push(4);
  // The mark is computed against the producer's cached head (refreshed only
  // when the ring looks full), so it is a conservative never-underestimating
  // depth bound — monotone, and capped by the capacity.
  EXPECT_GE(q.high_water(), 3u);
  EXPECT_LE(q.high_water(), q.capacity());
}

TEST(SpscQueue, CrossThreadStressPreservesSequence) {
  // One producer, one consumer, a ring far smaller than the item count:
  // exercises wrap-around, backpressure, and the counter protocol. Run
  // under TSan this is the data-race acceptance test for the queue.
  constexpr std::uint64_t kItems = 200'000;
  SpscQueue<std::uint64_t> q(64);
  std::uint64_t sum = 0, expect_next = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < kItems; ++i) {
      q.pop(v);
      ordered = ordered && (v == expect_next);
      ++expect_next;
      sum += v;
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) q.push(i);
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expect_next, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_GE(q.high_water(), 1u);
  EXPECT_LE(q.high_water(), q.capacity());
}

}  // namespace
}  // namespace ltefp
