// Pins the columnar ML engine to the historical AoS implementations:
//
//  * the presorted DecisionTree/RandomForest trainer must produce
//    serialized forests BYTE-identical to the original per-candidate
//    rescan trainer (reimplemented here as a reference), at every seed
//    and thread count;
//  * fold/stage row views (fit_rows) must equal fitting the materialised
//    subset;
//  * cross_val_accuracy must run copy-free through fit_rows/predict_rows.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "features/matrix.hpp"
#include "ml/crossval.hpp"
#include "ml/hierarchical.hpp"
#include "ml/knn.hpp"
#include "ml/logreg.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"

namespace ltefp::ml {
namespace {

using features::Dataset;
using features::DatasetMatrix;

struct ThreadGuard {
  ~ThreadGuard() { set_thread_count(0); }
};

// Synthetic dataset with deliberate value ties (quantised columns), a
// constant column, and class imbalance — exercises the argsort tie-break,
// the a == b candidate path, and skipped features.
Dataset tricky_dataset(std::size_t n, int classes, std::uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.feature_names = {"f0", "f1", "f2", "f3", "f4", "const"};
  data.label_names.resize(static_cast<std::size_t>(classes));
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.index(static_cast<std::size_t>(classes)));
    const double base = static_cast<double>(label);
    data.add({rng.normal(base, 1.0),
              std::round(rng.normal(2.0 * base, 2.0)),                    // heavy ties
              static_cast<double>(rng.index(4)),                          // 4 distinct values
              rng.normal(-base, 0.5),
              std::round(rng.normal(0.0, 3.0)) / 2.0,
              1.5},                                                       // constant column
             label);
  }
  return data;
}

double gini_of(std::span<const double> counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) sum_sq += c * c;
  return 1.0 - sum_sq / (total * total);
}

// Reference reimplementation of the historical AoS trainer (gather node
// values per feature, rescan the node once per candidate threshold).
// Kept verbatim in spirit: same RNG stream, same arithmetic, same
// std::partition, so it defines the contract the presorted trainer must
// reproduce bit for bit.
class ReferenceTree {
 public:
  ReferenceTree(TreeConfig config, std::uint64_t seed) : config_(config), rng_(seed) {}

  void fit(const Dataset& data, std::span<const std::size_t> indices, int num_classes) {
    num_classes_ = num_classes;
    std::vector<std::size_t> work(indices.begin(), indices.end());
    build(data, work, 0, work.size(), 0);
  }

  std::vector<DecisionTree::ExportedNode> take_nodes() { return std::move(nodes_); }

 private:
  int build(const Dataset& data, std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, int depth) {
    const std::size_t n = end - begin;
    std::vector<double> counts(static_cast<std::size_t>(num_classes_), 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      ++counts[static_cast<std::size_t>(data.samples[indices[i]].label)];
    }
    const double node_gini = gini_of(counts, static_cast<double>(n));

    const auto make_leaf = [&]() {
      DecisionTree::ExportedNode leaf;
      leaf.proba.resize(counts.size());
      for (std::size_t c = 0; c < counts.size(); ++c) {
        leaf.proba[c] = counts[c] / static_cast<double>(n);
      }
      const int id = static_cast<int>(nodes_.size());
      nodes_.push_back(std::move(leaf));
      return id;
    };

    if (depth >= config_.max_depth ||
        n < static_cast<std::size_t>(config_.min_samples_split) || node_gini <= 1e-12) {
      return make_leaf();
    }

    const std::size_t dims = data.samples[indices[begin]].features.size();
    std::vector<std::size_t> tried(dims);
    std::iota(tried.begin(), tried.end(), std::size_t{0});
    if (config_.mtry > 0 && static_cast<std::size_t>(config_.mtry) < dims) {
      rng_.shuffle(tried);
      tried.resize(static_cast<std::size_t>(config_.mtry));
    }

    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = node_gini;
    std::vector<double> left_counts(counts.size());
    std::vector<double> right_counts(counts.size());
    std::vector<double> values(n);

    for (const std::size_t f : tried) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const double v = data.samples[indices[begin + i]].features[f];
        values[i] = v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (!(hi > lo)) continue;

      const int candidates = std::max(1, config_.threshold_candidates);
      for (int c = 0; c < candidates; ++c) {
        const double a = values[rng_.index(n)];
        const double b = values[rng_.index(n)];
        const double threshold =
            a == b ? (a + lo + (hi - lo) * rng_.uniform()) / 2.0 : (a + b) / 2.0;
        std::fill(left_counts.begin(), left_counts.end(), 0.0);
        double n_left = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (values[i] <= threshold) {
            ++left_counts[static_cast<std::size_t>(
                data.samples[indices[begin + i]].label)];
            ++n_left;
          }
        }
        const double n_right = static_cast<double>(n) - n_left;
        if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) continue;
        for (std::size_t k = 0; k < counts.size(); ++k) {
          right_counts[k] = counts[k] - left_counts[k];
        }
        const double score = (n_left * gini_of(left_counts, n_left) +
                              n_right * gini_of(right_counts, n_right)) /
                             static_cast<double>(n);
        if (score + 1e-12 < best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = threshold;
        }
      }
    }

    if (best_feature < 0) return make_leaf();

    const auto mid_it =
        std::partition(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                       indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t idx) {
                         return data.samples[idx]
                                    .features[static_cast<std::size_t>(best_feature)] <=
                                best_threshold;
                       });
    const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
    if (mid == begin || mid == end) return make_leaf();

    DecisionTree::ExportedNode node;
    node.feature = best_feature;
    node.threshold = best_threshold;
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    const int left = build(data, indices, begin, mid, depth + 1);
    const int right = build(data, indices, mid, end, depth + 1);
    nodes_[static_cast<std::size_t>(id)].left = left;
    nodes_[static_cast<std::size_t>(id)].right = right;
    return id;
  }

  TreeConfig config_;
  Rng rng_;
  int num_classes_ = 0;
  std::vector<DecisionTree::ExportedNode> nodes_;
};

// The historical serial RandomForest::fit, on the reference trainer.
RandomForest reference_forest(const Dataset& train, const ForestConfig& config) {
  const auto hist = train.class_histogram();
  const int num_classes = static_cast<int>(hist.size());
  TreeConfig tree_config = config.tree;
  if (tree_config.mtry == 0) {
    tree_config.mtry = std::max(
        1, static_cast<int>(std::round(std::sqrt(static_cast<double>(train.feature_count())))));
  }
  const auto n_boot = static_cast<std::size_t>(
      std::max(1.0, config.bootstrap_fraction * static_cast<double>(train.size())));
  std::vector<DecisionTree> trees;
  for (int t = 0; t < config.num_trees; ++t) {
    Rng rng(derive_seed({config.seed, static_cast<std::uint64_t>(t)}));
    std::vector<std::size_t> bootstrap(n_boot);
    for (auto& idx : bootstrap) idx = rng.index(train.size());
    ReferenceTree tree(tree_config, rng());
    tree.fit(train, bootstrap, num_classes);
    trees.push_back(DecisionTree::from_nodes(tree.take_nodes(), num_classes));
  }
  return RandomForest::from_trees(std::move(trees), num_classes);
}

std::string serialized(const RandomForest& forest) {
  std::ostringstream out;
  save_forest(out, forest);
  return out.str();
}

TEST(ColumnarTrainer, ForestBitIdenticalToReferenceAcrossSeedsAndThreads) {
  ThreadGuard guard;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Dataset data = tricky_dataset(300, 4, 100 + seed);
    ForestConfig config;
    config.num_trees = 12;
    config.seed = seed;
    const std::string expected = serialized(reference_forest(data, config));
    for (const int threads : {1, 2, 8}) {
      set_thread_count(threads);
      RandomForest forest(config);
      forest.fit(data);
      EXPECT_EQ(serialized(forest), expected)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(ColumnarTrainer, SingleClassGrowsOneLeaf) {
  Rng rng(7);
  Dataset data;
  data.feature_names = {"a", "b"};
  data.label_names.resize(1);
  for (int i = 0; i < 50; ++i) data.add({rng.uniform(), rng.uniform()}, 0);
  DecisionTree tree(TreeConfig{}, 3);
  tree.fit(features::DatasetMatrix(data), 1);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict(data.samples[0].features), 0);
}

TEST(ColumnarTrainer, ConstantFeatureDatasetStillMatchesReference) {
  // Every column constant -> no split improves, single leaf everywhere.
  Dataset data;
  data.feature_names = {"c0", "c1"};
  data.label_names.resize(2);
  for (int i = 0; i < 20; ++i) data.add({1.0, -2.0}, i % 2);
  ForestConfig config;
  config.num_trees = 4;
  RandomForest forest(config);
  forest.fit(data);
  EXPECT_EQ(serialized(forest), serialized(reference_forest(data, config)));
  for (const auto& tree : forest.trees()) EXPECT_EQ(tree.node_count(), 1);
}

TEST(ColumnarTrainer, EmptyIndicesThrow) {
  const Dataset data = tricky_dataset(10, 2, 5);
  const DatasetMatrix matrix(data);
  DecisionTree tree;
  EXPECT_THROW(tree.fit(matrix, std::vector<std::size_t>{}, 2), std::invalid_argument);
  RandomForest forest;
  EXPECT_THROW(forest.fit_rows(matrix, {}), std::invalid_argument);
}

TEST(ColumnarTrainer, FitRowsMatchesMaterializedSubset) {
  const Dataset data = tricky_dataset(200, 3, 11);
  const DatasetMatrix matrix(data);
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < matrix.rows(); ++i) {
    if (i % 3 != 0) rows.push_back(i);
  }
  ForestConfig config;
  config.num_trees = 8;
  RandomForest via_view(config);
  via_view.fit_rows(matrix, rows);
  RandomForest via_copy(config);
  via_copy.fit(matrix.materialize(rows));
  EXPECT_EQ(serialized(via_view), serialized(via_copy));
}

TEST(ColumnarTrainer, PredictRowsMatchesPerSamplePredict) {
  const Dataset data = tricky_dataset(200, 3, 13);
  RandomForest forest(ForestConfig{.num_trees = 10});
  forest.fit(data);
  const DatasetMatrix matrix(data);
  const auto batch = forest.predict_rows(matrix, matrix.all_rows());
  ASSERT_EQ(batch.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(batch[i], forest.predict(data.samples[i].features));
  }
}

TEST(DatasetMatrixTest, RoundTripsThroughMaterialize) {
  const Dataset data = tricky_dataset(40, 3, 17);
  const DatasetMatrix matrix(data);
  ASSERT_EQ(matrix.rows(), data.size());
  ASSERT_EQ(matrix.cols(), data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(matrix.label(i), data.samples[i].label);
    for (std::size_t f = 0; f < matrix.cols(); ++f) {
      EXPECT_EQ(matrix.at(i, f), data.samples[i].features[f]);
    }
  }
  const Dataset back = matrix.materialize(matrix.all_rows());
  ASSERT_EQ(back.size(), data.size());
  EXPECT_EQ(back.feature_names, data.feature_names);
  EXPECT_EQ(back.label_names, data.label_names);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(back.samples[i].features, data.samples[i].features);
    EXPECT_EQ(back.samples[i].label, data.samples[i].label);
  }
}

TEST(DatasetMatrixTest, SortedOrderIsAscendingWithRowTieBreak) {
  const Dataset data = tricky_dataset(60, 3, 19);
  const DatasetMatrix matrix(data);
  for (std::size_t f = 0; f < matrix.cols(); ++f) {
    const auto order = matrix.sorted_order(f);
    ASSERT_EQ(order.size(), matrix.rows());
    for (std::size_t i = 1; i < order.size(); ++i) {
      const double prev = matrix.at(order[i - 1], f);
      const double cur = matrix.at(order[i], f);
      EXPECT_TRUE(prev < cur || (prev == cur && order[i - 1] < order[i]));
    }
  }
}

TEST(DatasetMatrixTest, WithLabelsSharesColumnStorage) {
  const Dataset data = tricky_dataset(30, 3, 23);
  const DatasetMatrix matrix(data);
  std::vector<int> coarse(matrix.rows());
  for (std::size_t i = 0; i < matrix.rows(); ++i) coarse[i] = matrix.label(i) % 2;
  const DatasetMatrix view = matrix.with_labels(coarse, {"even", "odd"});
  EXPECT_EQ(view.column(0).data(), matrix.column(0).data());  // shared, not copied
  EXPECT_EQ(view.sorted_order(1).data(), matrix.sorted_order(1).data());
  for (std::size_t i = 0; i < matrix.rows(); ++i) EXPECT_EQ(view.label(i), coarse[i]);
  EXPECT_THROW(matrix.with_labels({0, 1}, {}), std::invalid_argument);
}

TEST(DatasetMatrixTest, RaggedDatasetThrows) {
  Dataset data;
  data.label_names.resize(2);
  data.add({1.0, 2.0}, 0);
  data.samples.push_back({{1.0}, 1});  // wrong dimensionality
  EXPECT_THROW(DatasetMatrix{data}, std::invalid_argument);
}

// Counts every Classifier entry point; the columnar cross-validation loop
// must only ever use the row-view paths.
class SpyClassifier final : public Classifier {
 public:
  void fit(const Dataset&) override { ++fit_calls; }
  void fit_rows(const features::DatasetMatrix&, std::span<const std::uint32_t>) override {
    ++fit_rows_calls;
  }
  int predict(const FeatureVector&) const override {
    ++predict_calls;
    return 0;
  }
  std::vector<int> predict_rows(const features::DatasetMatrix&,
                                std::span<const std::uint32_t> rows) const override {
    ++predict_rows_calls;
    return std::vector<int>(rows.size(), 0);
  }
  std::vector<double> predict_proba(const FeatureVector&) const override { return {1.0}; }
  const char* name() const override { return "Spy"; }

  int fit_calls = 0;
  int fit_rows_calls = 0;
  mutable int predict_calls = 0;
  mutable int predict_rows_calls = 0;
};

TEST(CrossValColumnar, FoldsAreRowViewsNotCopies) {
  const Dataset data = tricky_dataset(80, 2, 29);
  SpyClassifier spy;
  cross_val_accuracy(spy, data, 4, 31);
  EXPECT_EQ(spy.fit_calls, 0) << "fold materialised a Dataset copy";
  EXPECT_EQ(spy.predict_calls, 0) << "test fold predicted sample-by-sample";
  EXPECT_EQ(spy.fit_rows_calls, 4);
  EXPECT_EQ(spy.predict_rows_calls, 4);
}

// The historical copying implementation, for accuracy equality.
double reference_cross_val(Classifier& model, const Dataset& data, int folds,
                           std::uint64_t seed) {
  const auto assignment = stratified_folds(data, folds, seed);
  std::size_t correct = 0, total = 0;
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train, test;
    train.feature_names = test.feature_names = data.feature_names;
    train.label_names = test.label_names = data.label_names;
    for (std::size_t i = 0; i < data.samples.size(); ++i) {
      (assignment[i] == fold ? test : train).samples.push_back(data.samples[i]);
    }
    if (train.empty() || test.empty()) continue;
    model.fit(train);
    for (const auto& s : test.samples) {
      if (model.predict(s.features) == s.label) ++correct;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

TEST(CrossValColumnar, AccuracyEqualsCopyingReference) {
  const Dataset data = tricky_dataset(120, 3, 37);
  {
    RandomForest a(ForestConfig{.num_trees = 8});
    RandomForest b(ForestConfig{.num_trees = 8});
    EXPECT_DOUBLE_EQ(cross_val_accuracy(a, data, 4, 41), reference_cross_val(b, data, 4, 41));
  }
  {
    Knn a(KnnConfig{3});
    Knn b(KnnConfig{3});
    EXPECT_DOUBLE_EQ(cross_val_accuracy(a, data, 4, 41), reference_cross_val(b, data, 4, 41));
  }
  {
    LogRegConfig fast;
    fast.epochs = 10;
    LogisticRegression a(fast);
    LogisticRegression b(fast);
    EXPECT_DOUBLE_EQ(cross_val_accuracy(a, data, 4, 41), reference_cross_val(b, data, 4, 41));
  }
}

TEST(CrossValColumnar, EmptyFoldsAreSkipped) {
  // 3 samples per class over 5 folds leaves folds 3 and 4 empty; they
  // must be skipped, not crash or dilute the accuracy.
  Rng rng(43);
  Dataset data;
  data.feature_names = {"x"};
  data.label_names.resize(2);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 3; ++i) data.add({rng.normal(10.0 * c, 0.1)}, c);
  }
  RandomForest model(ForestConfig{.num_trees = 3});
  const double acc = cross_val_accuracy(model, data, 5, 47);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(HierarchicalColumnar, FitRowsMatchesDatasetFit) {
  const Dataset data = tricky_dataset(150, 4, 53);
  const auto factory = [] {
    return std::make_unique<RandomForest>(ForestConfig{.num_trees = 6});
  };
  const auto group_of = [](int label) { return label / 2; };
  HierarchicalClassifier via_dataset(group_of, 2, factory);
  via_dataset.fit(data);
  const DatasetMatrix matrix(data);
  HierarchicalClassifier via_rows(group_of, 2, factory);
  via_rows.fit_rows(matrix, matrix.all_rows());
  const auto batch = via_rows.predict_rows(matrix, matrix.all_rows());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(via_dataset.predict(data.samples[i].features), batch[i]);
    EXPECT_EQ(via_dataset.predict(data.samples[i].features),
              via_rows.predict(data.samples[i].features));
  }
}

TEST(StandardizerColumnar, SpanTransformMatchesAllocatingTransform) {
  const Dataset data = tricky_dataset(50, 2, 59);
  features::Standardizer standardizer;
  standardizer.fit(data);
  features::FeatureVector out(data.feature_count());
  for (const auto& s : data.samples) {
    const auto expected = standardizer.transform(s.features);
    standardizer.transform(s.features, out);
    EXPECT_EQ(expected, out);
  }
}

TEST(StandardizerColumnar, FitRowsMatchesFitOnMaterializedSubset) {
  const Dataset data = tricky_dataset(70, 3, 61);
  const DatasetMatrix matrix(data);
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < matrix.rows(); i += 2) rows.push_back(i);
  features::Standardizer via_rows;
  via_rows.fit_rows(matrix, rows);
  features::Standardizer via_copy;
  via_copy.fit(matrix.materialize(rows));
  for (const auto& s : data.samples) {
    EXPECT_EQ(via_rows.transform(s.features), via_copy.transform(s.features));
  }
}

}  // namespace
}  // namespace ltefp::ml
