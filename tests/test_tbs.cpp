#include "lte/tbs.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ltefp::lte {
namespace {

TEST(McsTable, ModulationOrderRegions) {
  // TS 36.213 Table 7.1.7.1-1: QPSK 0-9, 16QAM 10-16, 64QAM 17-28.
  for (int mcs = 0; mcs <= 9; ++mcs) EXPECT_EQ(mcs_modulation_order(mcs), 2) << mcs;
  for (int mcs = 10; mcs <= 16; ++mcs) EXPECT_EQ(mcs_modulation_order(mcs), 4) << mcs;
  for (int mcs = 17; mcs <= 28; ++mcs) EXPECT_EQ(mcs_modulation_order(mcs), 6) << mcs;
}

TEST(McsTable, ItbsMappingAnchors) {
  EXPECT_EQ(mcs_to_itbs(0), 0);
  EXPECT_EQ(mcs_to_itbs(9), 9);
  EXPECT_EQ(mcs_to_itbs(10), 9);   // modulation switch repeats I_TBS
  EXPECT_EQ(mcs_to_itbs(16), 15);
  EXPECT_EQ(mcs_to_itbs(17), 15);  // second switch
  EXPECT_EQ(mcs_to_itbs(28), 26);
}

TEST(McsTable, ItbsMonotoneNonDecreasing) {
  for (int mcs = 1; mcs < kNumMcs; ++mcs) {
    EXPECT_GE(mcs_to_itbs(mcs), mcs_to_itbs(mcs - 1)) << mcs;
  }
}

TEST(McsTable, OutOfRangeThrows) {
  EXPECT_THROW(mcs_to_itbs(-1), std::out_of_range);
  EXPECT_THROW(mcs_to_itbs(29), std::out_of_range);
  EXPECT_THROW(mcs_modulation_order(29), std::out_of_range);
}

TEST(Tbs, NormativeAnchors) {
  // Documented anchor entries of TS 36.213 Table 7.1.7.2.1-1.
  EXPECT_EQ(transport_block_size_bits(0, 1), 16);
  EXPECT_EQ(transport_block_size_bits(26, 110), 75376);
}

TEST(Tbs, ByteAligned) {
  for (int itbs = 0; itbs < kNumItbs; ++itbs) {
    for (int nprb = 1; nprb <= kMaxPrb; nprb += 7) {
      EXPECT_EQ(transport_block_size_bits(itbs, nprb) % 8, 0);
    }
  }
}

// Property sweep: monotone in both arguments, everywhere.
class TbsMonotoneInPrb : public ::testing::TestWithParam<int> {};

TEST_P(TbsMonotoneInPrb, NonDecreasingInPrb) {
  const int itbs = GetParam();
  int prev = transport_block_size_bits(itbs, 1);
  EXPECT_GE(prev, 16);
  for (int nprb = 2; nprb <= kMaxPrb; ++nprb) {
    const int tbs = transport_block_size_bits(itbs, nprb);
    ASSERT_GE(tbs, prev) << "itbs=" << itbs << " nprb=" << nprb;
    prev = tbs;
  }
}

INSTANTIATE_TEST_SUITE_P(AllItbs, TbsMonotoneInPrb, ::testing::Range(0, kNumItbs));

class TbsMonotoneInItbs : public ::testing::TestWithParam<int> {};

TEST_P(TbsMonotoneInItbs, NonDecreasingInItbs) {
  const int nprb = GetParam();
  int prev = transport_block_size_bits(0, nprb);
  for (int itbs = 1; itbs < kNumItbs; ++itbs) {
    const int tbs = transport_block_size_bits(itbs, nprb);
    ASSERT_GE(tbs, prev) << "itbs=" << itbs << " nprb=" << nprb;
    prev = tbs;
  }
}

INSTANTIATE_TEST_SUITE_P(PrbSweep, TbsMonotoneInItbs,
                         ::testing::Values(1, 2, 6, 15, 25, 50, 75, 100, 110));

TEST(Tbs, OutOfRangeThrows) {
  EXPECT_THROW(transport_block_size_bits(-1, 1), std::out_of_range);
  EXPECT_THROW(transport_block_size_bits(kNumItbs, 1), std::out_of_range);
  EXPECT_THROW(transport_block_size_bits(0, 0), std::out_of_range);
  EXPECT_THROW(transport_block_size_bits(0, kMaxPrb + 1), std::out_of_range);
}

TEST(Tbs, BytesIsBitsOverEight) {
  EXPECT_EQ(transport_block_size_bytes(10, 20), transport_block_size_bits(10, 20) / 8);
}

TEST(PrbsNeeded, ReturnsMinimalSufficientAllocation) {
  for (const int mcs : {0, 5, 13, 20, 28}) {
    for (const int bytes : {1, 50, 300, 1200, 5000}) {
      const int nprb = prbs_needed(mcs, bytes, kMaxPrb);
      ASSERT_GE(nprb, 1);
      if (max_tb_bytes(mcs, kMaxPrb) >= bytes) {
        EXPECT_GE(max_tb_bytes(mcs, nprb), bytes) << "mcs=" << mcs << " bytes=" << bytes;
        if (nprb > 1) {
          EXPECT_LT(max_tb_bytes(mcs, nprb - 1), bytes)
              << "not minimal: mcs=" << mcs << " bytes=" << bytes;
        }
      }
    }
  }
}

TEST(PrbsNeeded, CapsAtLimitWhenBufferHuge) {
  EXPECT_EQ(prbs_needed(0, 1'000'000, 50), 50);
  EXPECT_EQ(prbs_needed(28, 1'000'000, 100), 100);
}

TEST(PrbsNeeded, InvalidBytesThrows) {
  EXPECT_THROW(prbs_needed(5, 0, 50), std::invalid_argument);
  EXPECT_THROW(prbs_needed(5, -3, 50), std::invalid_argument);
}

}  // namespace
}  // namespace ltefp::lte
