#include "lte/crc.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ltefp::lte {
namespace {

TEST(Crc16, KnownVector) {
  // CRC-16/XMODEM ("123456789") = 0x31C3 — same polynomial/init as
  // TS 36.212 gCRC16.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> payload(s.begin(), s.end());
  EXPECT_EQ(crc16(payload), 0x31C3);
}

TEST(Crc16, EmptyPayload) {
  EXPECT_EQ(crc16({}), 0x0000);
}

TEST(Crc16, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> payload{0x12, 0x34, 0x56, 0x78};
  const std::uint16_t original = crc16(payload);
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = payload;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16(corrupted), original)
          << "undetected flip at byte " << byte << " bit " << bit;
    }
  }
}

class RntiMaskRoundTrip : public ::testing::TestWithParam<Rnti> {};

TEST_P(RntiMaskRoundTrip, RecoverReturnsOriginalRnti) {
  const Rnti rnti = GetParam();
  const std::vector<std::uint8_t> payload{0xDE, 0xAD, 0xBE, 0xEF};
  const std::uint16_t masked = crc16_masked(payload, rnti);
  EXPECT_EQ(recover_rnti(payload, masked), rnti);
}

INSTANTIATE_TEST_SUITE_P(Rntis, RntiMaskRoundTrip,
                         ::testing::Values<Rnti>(0x0000, 0x003D, 0x1234, 0x7F2A, 0xFFF3,
                                                 0xFFFE, 0xFFFF));

TEST(RntiMask, DifferentRntisDifferentMask) {
  const std::vector<std::uint8_t> payload{0x01, 0x02, 0x03, 0x04};
  EXPECT_NE(crc16_masked(payload, 0x1111), crc16_masked(payload, 0x2222));
}

TEST(RntiMask, WrongPayloadRecoversWrongRnti) {
  // The aliasing that forces real blind decoders to validate candidates.
  const std::vector<std::uint8_t> payload{0x01, 0x02, 0x03, 0x04};
  const std::uint16_t masked = crc16_masked(payload, 0x1234);
  const std::vector<std::uint8_t> other{0x01, 0x02, 0x03, 0x05};
  EXPECT_NE(recover_rnti(other, masked), 0x1234);
}

}  // namespace
}  // namespace ltefp::lte
