#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace ltefp::ml {
namespace {

TEST(ConfusionMatrix, PerfectPrediction) {
  ConfusionMatrix cm(3);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 10; ++i) cm.add(c, c);
  }
  EXPECT_EQ(cm.accuracy(), 1.0);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(cm.precision(c), 1.0);
    EXPECT_EQ(cm.recall(c), 1.0);
    EXPECT_EQ(cm.f_score(c), 1.0);
    EXPECT_EQ(cm.support(c), 10u);
  }
  EXPECT_EQ(cm.weighted_f_score(), 1.0);
}

TEST(ConfusionMatrix, HandComputedExample) {
  // truth 0: predicted 0 x8, predicted 1 x2
  // truth 1: predicted 0 x1, predicted 1 x9
  ConfusionMatrix cm(2);
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  cm.add(1, 0);
  for (int i = 0; i < 9; ++i) cm.add(1, 1);

  EXPECT_NEAR(cm.accuracy(), 17.0 / 20.0, 1e-12);
  EXPECT_NEAR(cm.precision(0), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(cm.recall(0), 8.0 / 10.0, 1e-12);
  EXPECT_NEAR(cm.precision(1), 9.0 / 11.0, 1e-12);
  EXPECT_NEAR(cm.recall(1), 9.0 / 10.0, 1e-12);
  const double f0 = 2.0 * (8.0 / 9.0) * 0.8 / ((8.0 / 9.0) + 0.8);
  EXPECT_NEAR(cm.f_score(0), f0, 1e-12);
  // Weighted metrics use class support (10/10 here -> plain average).
  EXPECT_NEAR(cm.weighted_recall(), (0.8 + 0.9) / 2.0, 1e-12);
}

TEST(ConfusionMatrix, AbsentClassesAreZeroNotNan) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  EXPECT_EQ(cm.precision(1), 0.0);  // never predicted
  EXPECT_EQ(cm.recall(2), 0.0);     // never occurred
  EXPECT_EQ(cm.f_score(1), 0.0);
}

TEST(ConfusionMatrix, EmptyMatrixSafe) {
  ConfusionMatrix cm(2);
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.weighted_f_score(), 0.0);
}

TEST(ConfusionMatrix, OutOfRangeThrows) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(Evaluate, BuildsFromVectors) {
  const std::vector<int> truth{0, 0, 1, 1, 2};
  const std::vector<int> pred{0, 1, 1, 1, 2};
  const ConfusionMatrix cm = evaluate(truth, pred, 3);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_NEAR(cm.accuracy(), 0.8, 1e-12);
}

TEST(Evaluate, SizeMismatchThrows) {
  EXPECT_THROW(evaluate({0, 1}, {0}, 2), std::invalid_argument);
}

TEST(BinaryMetrics, PositiveClassConvention) {
  const std::vector<int> truth{1, 1, 1, 0, 0, 0};
  const std::vector<int> pred{1, 1, 0, 1, 0, 0};
  const BinaryMetrics m = binary_metrics(truth, pred);
  EXPECT_NEAR(m.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.accuracy, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(m.f_score, 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  const std::string s = cm.to_string({"neg", "pos"});
  EXPECT_NE(s.find("neg"), std::string::npos);
  EXPECT_NE(s.find("pos"), std::string::npos);
}

}  // namespace
}  // namespace ltefp::ml
