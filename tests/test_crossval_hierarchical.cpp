#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "ml/crossval.hpp"
#include "ml/hierarchical.hpp"
#include "ml/random_forest.hpp"

namespace ltefp::ml {
namespace {

Dataset blobs(std::size_t per_class, int classes, double sep, Rng& rng) {
  Dataset data;
  data.feature_names = {"x", "y", "z"};
  data.label_names.resize(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data.add({rng.normal(c * sep, 1.0), rng.normal(-c * sep, 1.0), rng.normal(0, 1.0)}, c);
    }
  }
  return data;
}

TEST(StratifiedFolds, BalancedPerClass) {
  Rng rng(1);
  const Dataset data = blobs(40, 3, 2.0, rng);
  const auto folds = stratified_folds(data, 4, 9);
  ASSERT_EQ(folds.size(), data.size());
  // Each fold holds exactly 10 samples of each class.
  std::vector<std::vector<int>> counts(4, std::vector<int>(3, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ++counts[static_cast<std::size_t>(folds[i])][static_cast<std::size_t>(data.samples[i].label)];
  }
  for (const auto& fold : counts) {
    for (const int count : fold) EXPECT_EQ(count, 10);
  }
}

TEST(StratifiedFolds, TooFewFoldsThrows) {
  Rng rng(2);
  const Dataset data = blobs(10, 2, 2.0, rng);
  EXPECT_THROW(stratified_folds(data, 1, 0), std::invalid_argument);
}

TEST(CrossVal, HighAccuracyOnSeparableData) {
  Rng rng(3);
  const Dataset data = blobs(60, 3, 8.0, rng);
  RandomForest model(ForestConfig{.num_trees = 15});
  EXPECT_GT(cross_val_accuracy(model, data, 4, 11), 0.95);
}

TEST(CrossVal, ChanceLevelOnPureNoise) {
  Rng rng(4);
  const Dataset data = blobs(100, 2, 0.0, rng);  // identical class distributions
  RandomForest model(ForestConfig{.num_trees = 15});
  const double acc = cross_val_accuracy(model, data, 4, 12);
  EXPECT_NEAR(acc, 0.5, 0.12);
}

int group_of(int label) { return label / 2; }  // labels 0,1 -> group 0; 2,3 -> group 1

TEST(Hierarchical, FitsAndPredictsFineLabels) {
  Rng rng(5);
  const Dataset train = blobs(80, 4, 6.0, rng);
  const Dataset test = blobs(30, 4, 6.0, rng);
  HierarchicalClassifier model(group_of, 2, [] {
    return std::make_unique<RandomForest>(ForestConfig{.num_trees = 20});
  });
  model.fit(train);
  std::size_t correct = 0;
  for (const auto& s : test.samples) {
    const int predicted = model.predict(s.features);
    EXPECT_EQ(group_of(predicted), model.predict_group(s.features));
    if (predicted == s.label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.9);
}

TEST(Hierarchical, ProbaAggregatesGroupTimesFine) {
  Rng rng(6);
  const Dataset train = blobs(50, 4, 5.0, rng);
  HierarchicalClassifier model(group_of, 2, [] {
    return std::make_unique<RandomForest>(ForestConfig{.num_trees = 10});
  });
  model.fit(train);
  const auto proba = model.predict_proba(train.samples[0].features);
  ASSERT_EQ(proba.size(), 4u);
  double sum = 0.0;
  for (const double p : proba) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Hierarchical, SingleAppGroupShortCircuits) {
  // Group 1 contains a single label: no second-stage model needed.
  Rng rng(7);
  Dataset train;
  train.feature_names = {"x"};
  train.label_names = {"a", "b", "c"};
  for (int i = 0; i < 30; ++i) {
    train.add({rng.normal(0, 1)}, 0);
    train.add({rng.normal(10, 1)}, 1);
    train.add({rng.normal(20, 1)}, 2);
  }
  const auto to_group = [](int label) { return label == 2 ? 1 : 0; };
  HierarchicalClassifier model(to_group, 2, [] {
    return std::make_unique<RandomForest>(ForestConfig{.num_trees = 10});
  });
  model.fit(train);
  EXPECT_EQ(model.predict({20.0}), 2);
  EXPECT_EQ(model.predict({0.0}), 0);
}

TEST(Hierarchical, EmptyFitThrows) {
  HierarchicalClassifier model(group_of, 2,
                               [] { return std::make_unique<RandomForest>(); });
  EXPECT_THROW(model.fit(Dataset{}), std::invalid_argument);
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
}

}  // namespace
}  // namespace ltefp::ml
