#include <gtest/gtest.h>

#include "attacks/retrain.hpp"
#include "common/rng.hpp"
#include "ml/importance.hpp"
#include "ml/random_forest.hpp"

namespace ltefp {
namespace {

TEST(PermutationImportance, FindsTheInformativeFeature) {
  // Feature 0 fully determines the label; features 1-2 are noise.
  Rng rng(1);
  features::Dataset data;
  data.feature_names = {"signal", "noise_a", "noise_b"};
  data.label_names = {"lo", "hi"};
  for (int i = 0; i < 400; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    data.add({label * 10.0 + rng.normal(0, 1), rng.normal(0, 5), rng.normal(0, 5)}, label);
  }
  ml::RandomForest model(ml::ForestConfig{.num_trees = 20});
  model.fit(data);
  const auto ranked = ml::permutation_importance(model, data, 3, 7);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].name, "signal");
  EXPECT_GT(ranked[0].importance, 0.2);
  EXPECT_LT(ranked[1].importance, 0.1);
  EXPECT_LT(ranked[2].importance, 0.1);
}

TEST(PermutationImportance, InvalidInputsThrow) {
  ml::RandomForest model;
  EXPECT_THROW(ml::permutation_importance(model, features::Dataset{}, 3, 7),
               std::invalid_argument);
}

TEST(SustainedMonitoring, SawtoothAndCostAccumulation) {
  attacks::PipelineConfig config;
  config.op = lte::Operator::kLab;  // fast, and drift is the only enemy
  config.traces_per_app = 1;
  config.trace_duration = seconds(40);
  config.seed = 99;

  attacks::RetrainPolicy policy;
  policy.threshold = 0.70;
  policy.check_interval_days = 4;

  const attacks::CostModel cost_model{attacks::CostModelParams{}};
  const auto series =
      attacks::simulate_sustained_monitoring(config, 16, policy, cost_model);
  ASSERT_EQ(series.size(), 5u);  // days 0, 4, 8, 12, 16

  // Day 0 evaluates the model on same-day traffic: healthy score.
  EXPECT_GT(series[0].weighted_f, policy.threshold);
  EXPECT_EQ(series[0].model_age_days, 0);

  double prev_cost = 0.0;
  for (const auto& entry : series) {
    EXPECT_GE(entry.weighted_f, 0.0);
    EXPECT_LE(entry.weighted_f, 1.0);
    EXPECT_GT(entry.cumulative_cost, prev_cost) << "every check costs something";
    prev_cost = entry.cumulative_cost;
    // After a retrain the model age resets.
    if (entry.retrained) {
      EXPECT_EQ(entry.model_age_days, entry.day - entry.model_age_days >= 0
                                          ? entry.model_age_days
                                          : 0);
    }
  }

  // Model age only grows between retrains.
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (!series[i - 1].retrained) {
      EXPECT_GT(series[i].model_age_days, 0);
    } else {
      EXPECT_EQ(series[i].model_age_days, series[i].day - series[i - 1].day);
    }
  }
}

TEST(SustainedMonitoring, InvalidArgsThrow) {
  attacks::PipelineConfig config;
  const attacks::CostModel cost_model{attacks::CostModelParams{}};
  EXPECT_THROW(
      attacks::simulate_sustained_monitoring(config, 0, attacks::RetrainPolicy{}, cost_model),
      std::invalid_argument);
  attacks::RetrainPolicy bad;
  bad.check_interval_days = 0;
  EXPECT_THROW(attacks::simulate_sustained_monitoring(config, 5, bad, cost_model),
               std::invalid_argument);
}

}  // namespace
}  // namespace ltefp
