#include "lte/network.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "lte/operator_profile.hpp"

namespace ltefp::lte {
namespace {

/// Emits one uplink packet of `bytes` every `period` ms, starting at
/// `start_after` ms from construction-time first step.
class TickerSource final : public TrafficSource {
 public:
  TickerSource(Direction dir, int bytes, TimeMs period, TimeMs start_after = 0)
      : dir_(dir), bytes_(bytes), period_(period), start_after_(start_after) {}

  void step(TimeMs now, std::vector<AppPacket>& out) override {
    if (first_ < 0) first_ = now;
    const TimeMs rel = now - first_;
    if (rel >= start_after_ && (rel - start_after_) % period_ == 0) {
      out.push_back(AppPacket{dir_, bytes_});
    }
  }
  const char* name() const override { return "ticker"; }

 private:
  Direction dir_;
  int bytes_;
  TimeMs period_;
  TimeMs start_after_;
  TimeMs first_ = -1;
};

/// Observer recording everything for assertions.
class RecordingObserver final : public PdcchObserver {
 public:
  void on_subframe(const PdcchSubframe& sf) override {
    dci_count += sf.dcis.size();
  }
  void on_rach(const RachPreamble&) override { ++rach; }
  void on_rar(const RandomAccessResponse& rar_msg) override {
    ++rar;
    last_rnti = rar_msg.assigned_rnti;
  }
  void on_rrc_request(const RrcConnectionRequest& req) override {
    ++requests;
    last_tmsi = req.s_tmsi;
  }
  void on_rrc_setup(const RrcConnectionSetup&) override { ++setups; }
  void on_rrc_release(const RrcConnectionRelease&) override { ++releases; }

  std::size_t dci_count = 0;
  int rach = 0, rar = 0, requests = 0, setups = 0, releases = 0;
  Rnti last_rnti = 0;
  Tmsi last_tmsi = 0;
};

OperatorProfile lab() { return operator_profile(Operator::kLab); }

TEST(Simulation, UplinkDataFromIdleTriggersRachAndConnects) {
  Simulation sim(1);
  const CellId cell = sim.add_cell(lab());
  RecordingObserver obs;
  sim.add_observer(cell, obs);

  const UeId ue = sim.add_ue(9001);
  sim.camp(ue, cell);
  sim.set_traffic_source(ue, std::make_unique<TickerSource>(Direction::kUplink, 500, 100));
  EXPECT_FALSE(sim.is_connected(ue));

  sim.run_for(50);
  EXPECT_TRUE(sim.is_connected(ue));
  EXPECT_GE(obs.rach, 1);
  EXPECT_GE(obs.setups, 1);
  EXPECT_EQ(obs.last_tmsi, sim.tmsi_of(ue));  // S-TMSI leaked on the air
  EXPECT_TRUE(sim.current_rnti(ue).has_value());
}

TEST(Simulation, DownlinkDataFromIdleTriggersPagingThenConnection) {
  Simulation sim(2);
  const CellId cell = sim.add_cell(lab());
  RecordingObserver obs;
  sim.add_observer(cell, obs);

  const UeId ue = sim.add_ue(9002);
  sim.camp(ue, cell);
  sim.set_traffic_source(ue, std::make_unique<TickerSource>(Direction::kDownlink, 800, 1000));

  sim.run_for(100);
  EXPECT_TRUE(sim.is_connected(ue));
  // The paging indication itself appears on the PDCCH (P-RNTI DCI).
  EXPECT_GE(obs.dci_count, 1u);
}

TEST(Simulation, InactivityDropsToIdleAndReconnectGetsNewRnti) {
  Simulation sim(3);
  const CellId cell = sim.add_cell(lab());
  const UeId ue = sim.add_ue(9003);
  sim.camp(ue, cell);
  sim.connect(ue);
  sim.run_for(50);
  ASSERT_TRUE(sim.is_connected(ue));
  const Rnti first = *sim.current_rnti(ue);

  // Silence past the 10 s inactivity timeout drops the connection.
  sim.run_for(lab().inactivity_timeout + 1000);
  EXPECT_FALSE(sim.is_connected(ue));
  EXPECT_FALSE(sim.current_rnti(ue).has_value());

  sim.connect(ue);
  sim.run_for(50);
  ASSERT_TRUE(sim.is_connected(ue));
  EXPECT_NE(*sim.current_rnti(ue), first)
      << "idle -> connected transition must refresh the RNTI";
}

TEST(Simulation, HandoverKeepsTmsiChangesRntiAndCell) {
  Simulation sim(4);
  const CellId cell_a = sim.add_cell(lab());
  const CellId cell_b = sim.add_cell(lab());
  RecordingObserver obs_b;
  sim.add_observer(cell_b, obs_b);

  const UeId ue = sim.add_ue(9004);
  const Tmsi tmsi = sim.tmsi_of(ue);
  sim.camp(ue, cell_a);
  sim.set_traffic_source(ue, std::make_unique<TickerSource>(Direction::kUplink, 300, 20));
  sim.run_for(100);
  ASSERT_TRUE(sim.is_connected(ue));
  const Rnti rnti_a = *sim.current_rnti(ue);

  sim.move(ue, cell_b);
  sim.run_for(50);
  EXPECT_TRUE(sim.is_connected(ue));
  EXPECT_EQ(sim.camped_cell(ue), cell_b);
  EXPECT_EQ(sim.tmsi_of(ue), tmsi) << "TMSI survives the handover";
  EXPECT_NE(*sim.current_rnti(ue), rnti_a) << "target cell assigns a new C-RNTI";
  // Contention-free RACH in the target: preamble + RAR but no Msg3.
  EXPECT_GE(obs_b.rach, 1);
  EXPECT_EQ(obs_b.requests, 0);
}

TEST(Simulation, IdleReselectionDoesNotRach) {
  Simulation sim(5);
  const CellId cell_a = sim.add_cell(lab());
  const CellId cell_b = sim.add_cell(lab());
  RecordingObserver obs_b;
  sim.add_observer(cell_b, obs_b);
  const UeId ue = sim.add_ue(9005);
  sim.camp(ue, cell_a);
  sim.move(ue, cell_b);  // idle: plain reselection
  sim.run_for(20);
  EXPECT_EQ(sim.camped_cell(ue), cell_b);
  EXPECT_EQ(obs_b.rach, 0);
}

TEST(Simulation, PendingTrafficDeliveredAfterConnection) {
  Simulation sim(6);
  const CellId cell = sim.add_cell(lab());
  RecordingObserver obs;
  sim.add_observer(cell, obs);
  const UeId ue = sim.add_ue(9006);
  sim.camp(ue, cell);
  // One-shot burst while idle: must be buffered, then scheduled.
  sim.set_traffic_source(ue, std::make_unique<TickerSource>(Direction::kUplink, 5'000, 100'000));
  sim.run_for(60);
  EXPECT_TRUE(sim.is_connected(ue));
  EXPECT_GT(obs.dci_count, 0u);
}

TEST(Simulation, MultipleUesGetDistinctRntis) {
  Simulation sim(7);
  const CellId cell = sim.add_cell(lab());
  std::vector<UeId> ues;
  for (int i = 0; i < 10; ++i) {
    const UeId ue = sim.add_ue(9100 + static_cast<Imsi>(i));
    sim.camp(ue, cell);
    sim.connect(ue);
    ues.push_back(ue);
  }
  sim.run_for(100);
  std::set<Rnti> rntis;
  for (const UeId ue : ues) {
    ASSERT_TRUE(sim.is_connected(ue));
    EXPECT_TRUE(rntis.insert(*sim.current_rnti(ue)).second);
  }
}

TEST(Simulation, UnknownEntitiesThrow) {
  Simulation sim(8);
  EXPECT_THROW(sim.camp(99, 0), std::out_of_range);
  const UeId ue = sim.add_ue(1);
  EXPECT_THROW(sim.camp(ue, 5), std::out_of_range);
  EXPECT_THROW(sim.tmsi_of(1234), std::out_of_range);
  EXPECT_THROW(sim.cell_profile(3), std::out_of_range);
}

TEST(Simulation, DeterministicForSameSeed) {
  const auto run = [](std::uint64_t seed) {
    Simulation sim(seed);
    const CellId cell = sim.add_cell(lab());
    RecordingObserver obs;
    sim.add_observer(cell, obs);
    const UeId ue = sim.add_ue(77);
    sim.camp(ue, cell);
    sim.set_traffic_source(ue, std::make_unique<TickerSource>(Direction::kUplink, 700, 30));
    sim.run_for(2000);
    return obs.dci_count;
  };
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace ltefp::lte
