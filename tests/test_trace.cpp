#include "sniffer/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ltefp::sniffer {
namespace {

Trace sample_trace() {
  return Trace{
      {0, 0x100, lte::Direction::kDownlink, 500, 1},
      {150, 0x100, lte::Direction::kUplink, 60, 1},
      {1100, 0x100, lte::Direction::kDownlink, 900, 1},
      {2500, 0x200, lte::Direction::kUplink, 120, 1},
      {2999, 0x100, lte::Direction::kDownlink, 300, 1},
  };
}

TEST(Trace, FilterDirection) {
  const Trace t = sample_trace();
  EXPECT_EQ(filter_direction(t, lte::LinkFilter::kBoth).size(), 5u);
  const Trace dl = filter_direction(t, lte::LinkFilter::kDownlinkOnly);
  ASSERT_EQ(dl.size(), 3u);
  for (const auto& r : dl) EXPECT_EQ(r.direction, lte::Direction::kDownlink);
  const Trace ul = filter_direction(t, lte::LinkFilter::kUplinkOnly);
  ASSERT_EQ(ul.size(), 2u);
  for (const auto& r : ul) EXPECT_EQ(r.direction, lte::Direction::kUplink);
}

TEST(Trace, SliceTimeHalfOpen) {
  const Trace t = sample_trace();
  const Trace mid = slice_time(t, 150, 2500);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].time, 150);
  EXPECT_EQ(mid[1].time, 1100);
}

TEST(Trace, TotalBytes) {
  EXPECT_EQ(total_bytes(sample_trace()), 500 + 60 + 900 + 120 + 300);
  EXPECT_EQ(total_bytes({}), 0);
}

TEST(Trace, FramesPerBin) {
  const auto bins = frames_per_bin(sample_trace(), 0, 1000, 3);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0], 2.0);  // t=0, t=150
  EXPECT_EQ(bins[1], 1.0);  // t=1100
  EXPECT_EQ(bins[2], 2.0);  // t=2500, t=2999
}

TEST(Trace, BytesPerBinRespectsOriginAndOverflow) {
  const auto bins = bytes_per_bin(sample_trace(), 1000, 1000, 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0], 900.0);   // t=1100
  EXPECT_EQ(bins[1], 420.0);   // t=2500 + t=2999
  // Records before origin and past the last bin are dropped silently.
}

TEST(Trace, PerBinRejectsBadBinSize) {
  EXPECT_THROW(frames_per_bin(sample_trace(), 0, 0, 3), std::invalid_argument);
}

TEST(Trace, CsvRoundTrip) {
  const Trace t = sample_trace();
  std::ostringstream out;
  write_csv(out, t);
  const Trace back = read_csv(out.str());
  EXPECT_EQ(back, t);
}

TEST(Trace, CsvRejectsBadDirection) {
  EXPECT_THROW(read_csv("time_ms,rnti,direction,tb_bytes,cell\n1,2,XX,3,4\n"),
               std::runtime_error);
}

TEST(Trace, CsvHeaderOnlyIsEmpty) {
  EXPECT_TRUE(read_csv("time_ms,rnti,direction,tb_bytes,cell\n").empty());
  EXPECT_TRUE(read_csv("").empty());
}

constexpr const char* kHeader = "time_ms,rnti,direction,tb_bytes,cell\n";

TEST(Trace, CsvRejectsWrongColumnCount) {
  // Short row (dropped field) and long row (stray comma) both fail loudly.
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,2,DL,3\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,2,DL,3,4,5\n"), std::runtime_error);
}

TEST(Trace, CsvRejectsNonNumericFields) {
  // stoll-style prefix parsing used to turn "12abc" into 12 silently; every
  // numeric field must now consume its whole cell.
  EXPECT_THROW(read_csv(std::string(kHeader) + "12abc,2,DL,3,4\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,x,DL,3,4\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,2,DL,3.5,4\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,2,DL,3,\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1, 2,DL,3,4\n"), std::runtime_error);
}

TEST(Trace, CsvRejectsOutOfRangeFields) {
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,65536,DL,3,4\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,-2,DL,3,4\n"), std::runtime_error);
  EXPECT_THROW(read_csv(std::string(kHeader) + "1,2,DL,3,70000\n"), std::runtime_error);
}

TEST(Trace, CsvRejectsForeignHeader) {
  EXPECT_THROW(read_csv("a,b,c,d,e\n1,2,DL,3,4\n"), std::runtime_error);
}

TEST(Trace, CsvErrorsNameRowAndField) {
  try {
    read_csv(std::string(kHeader) + "1,2,DL,3,4\n1,2,DL,oops,4\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 2"), std::string::npos) << what;
    EXPECT_NE(what.find("tb_bytes"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ltefp::sniffer
