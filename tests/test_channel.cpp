#include "lte/channel.hpp"

#include <gtest/gtest.h>

namespace ltefp::lte {
namespace {

TEST(CqiMapping, BoundsAndMonotonicity) {
  EXPECT_EQ(ChannelModel::cqi_from_snr(-30.0), 1);
  EXPECT_EQ(ChannelModel::cqi_from_snr(50.0), 15);
  int prev = 0;
  for (double snr = -10.0; snr <= 35.0; snr += 0.5) {
    const int cqi = ChannelModel::cqi_from_snr(snr);
    ASSERT_GE(cqi, 1);
    ASSERT_LE(cqi, 15);
    ASSERT_GE(cqi, prev);
    prev = cqi;
  }
}

TEST(McsMapping, BoundsAndMonotonicity) {
  int prev = 0;
  for (int cqi = 1; cqi <= 15; ++cqi) {
    const int mcs = ChannelModel::mcs_from_cqi(cqi);
    ASSERT_GE(mcs, 0);
    ASSERT_LE(mcs, 28);
    ASSERT_GE(mcs, prev);
    prev = mcs;
  }
  EXPECT_EQ(ChannelModel::mcs_from_cqi(0), ChannelModel::mcs_from_cqi(1));   // clamped
  EXPECT_EQ(ChannelModel::mcs_from_cqi(20), ChannelModel::mcs_from_cqi(15));
}

TEST(ChannelModel, StaticWithoutVolatility) {
  ChannelConfig config;
  config.mean_snr_db = 18.0;
  config.volatility_db = 0.0;
  ChannelModel ch(config, Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(ch.step(), 18.0);
  }
}

TEST(ChannelModel, StaysWithinClampBounds) {
  ChannelConfig config;
  config.mean_snr_db = 15.0;
  config.volatility_db = 10.0;  // violent fading
  config.min_snr_db = -5.0;
  config.max_snr_db = 30.0;
  ChannelModel ch(config, Rng(2));
  for (int i = 0; i < 10'000; ++i) {
    const double snr = ch.step();
    ASSERT_GE(snr, -5.0);
    ASSERT_LE(snr, 30.0);
  }
}

TEST(ChannelModel, MeanReverts) {
  ChannelConfig config;
  config.mean_snr_db = 20.0;
  config.volatility_db = 1.0;
  config.reversion = 0.05;
  ChannelModel ch(config, Rng(3));
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += ch.step();
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(ChannelModel, DeterministicPerSeed) {
  ChannelConfig config;
  config.volatility_db = 2.0;
  ChannelModel a(config, Rng(9)), b(config, Rng(9));
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(a.step(), b.step());
  }
}

TEST(ChannelModel, CurrentMcsTracksSnr) {
  ChannelConfig good;
  good.mean_snr_db = 28.0;
  good.volatility_db = 0.0;
  ChannelConfig bad;
  bad.mean_snr_db = -2.0;
  bad.volatility_db = 0.0;
  ChannelModel strong(good, Rng(1)), weak(bad, Rng(1));
  EXPECT_GT(strong.current_mcs(), weak.current_mcs());
}

}  // namespace
}  // namespace ltefp::lte
