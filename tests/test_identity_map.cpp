#include "sniffer/identity_map.hpp"

#include <gtest/gtest.h>

namespace ltefp::sniffer {
namespace {

lte::RandomAccessResponse rar(TimeMs t, lte::Rnti rnti) {
  return lte::RandomAccessResponse{t, 0, 1, rnti};
}
lte::RrcConnectionRequest request(TimeMs t, lte::Rnti rnti, lte::Tmsi tmsi) {
  return lte::RrcConnectionRequest{t, 0, rnti, tmsi};
}
lte::RrcConnectionSetup setup(TimeMs t, lte::Rnti rnti, lte::Tmsi identity) {
  return lte::RrcConnectionSetup{t, 0, rnti, identity};
}
lte::RrcConnectionRelease release(TimeMs t, lte::Rnti rnti) {
  return lte::RrcConnectionRelease{t, 0, rnti};
}

TEST(IdentityMapper, BindsAfterRequestSetupPair) {
  IdentityMapper mapper;
  mapper.on_rar(rar(0, 0x100));
  mapper.on_rrc_request(request(2, 0x100, 0xAAAA));
  EXPECT_FALSE(mapper.tmsi_of(0x100, 3).has_value()) << "unconfirmed until Msg4";
  mapper.on_rrc_setup(setup(5, 0x100, 0xAAAA));
  EXPECT_EQ(mapper.tmsi_of(0x100, 6), 0xAAAAu);
  EXPECT_EQ(mapper.confirmed_count(), 1u);
}

TEST(IdentityMapper, ContentionLoserDiscarded) {
  IdentityMapper mapper;
  mapper.on_rrc_request(request(2, 0x100, 0xAAAA));
  // Msg4 echoes a different identity: another UE won the contention.
  mapper.on_rrc_setup(setup(5, 0x100, 0xBBBB));
  EXPECT_FALSE(mapper.tmsi_of(0x100, 6).has_value());
  EXPECT_EQ(mapper.confirmed_count(), 0u);
}

TEST(IdentityMapper, SetupWithoutRequestIgnored) {
  IdentityMapper mapper;
  mapper.on_rrc_setup(setup(5, 0x100, 0xAAAA));
  EXPECT_FALSE(mapper.tmsi_of(0x100, 6).has_value());
}

TEST(IdentityMapper, ValidityWindowClosedByRelease) {
  IdentityMapper mapper;
  mapper.on_rrc_request(request(0, 0x100, 0xAAAA));
  mapper.on_rrc_setup(setup(1, 0x100, 0xAAAA));
  mapper.on_rrc_release(release(100, 0x100));
  EXPECT_EQ(mapper.tmsi_of(0x100, 50), 0xAAAAu);
  EXPECT_FALSE(mapper.tmsi_of(0x100, 100).has_value()) << "binding closed at release";
  EXPECT_FALSE(mapper.tmsi_of(0x100, 500).has_value());
}

TEST(IdentityMapper, RntiReassignmentToOtherSubscriber) {
  IdentityMapper mapper;
  mapper.on_rrc_request(request(0, 0x100, 0xAAAA));
  mapper.on_rrc_setup(setup(1, 0x100, 0xAAAA));
  // Later the eNB recycles 0x100 for a different subscriber.
  mapper.on_rar(rar(200, 0x100));
  mapper.on_rrc_request(request(202, 0x100, 0xBBBB));
  mapper.on_rrc_setup(setup(205, 0x100, 0xBBBB));

  EXPECT_EQ(mapper.tmsi_of(0x100, 50), 0xAAAAu);
  EXPECT_EQ(mapper.tmsi_of(0x100, 300), 0xBBBBu);
}

TEST(IdentityMapper, TracksRntiHistoryOfOneSubscriber) {
  IdentityMapper mapper;
  // Same TMSI reconnects three times under different RNTIs.
  const lte::Rnti rntis[] = {0x100, 0x200, 0x300};
  TimeMs t = 0;
  for (const lte::Rnti rnti : rntis) {
    mapper.on_rrc_request(request(t, rnti, 0xCAFE));
    mapper.on_rrc_setup(setup(t + 1, rnti, 0xCAFE));
    mapper.on_rrc_release(release(t + 100, rnti));
    t += 1000;
  }
  const auto bindings = mapper.bindings_of(0xCAFE);
  ASSERT_EQ(bindings.size(), 3u);
  EXPECT_EQ(bindings[0].rnti, 0x100);
  EXPECT_EQ(bindings[1].rnti, 0x200);
  EXPECT_EQ(bindings[2].rnti, 0x300);
  for (const auto& b : bindings) {
    EXPECT_GE(b.valid_to, b.valid_from);
  }
}

TEST(IdentityMapper, ManualBindingCoversHandoverGap) {
  IdentityMapper mapper;
  mapper.add_manual_binding(0x777, 0xCAFE, 2, 500);
  EXPECT_EQ(mapper.tmsi_of(0x777, 600), 0xCAFEu);
  EXPECT_FALSE(mapper.tmsi_of(0x777, 400).has_value());
  const auto bindings = mapper.bindings_of(0xCAFE);
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].cell, 2);
}

TEST(IdentityMapper, BindingsOfUnknownTmsiEmpty) {
  IdentityMapper mapper;
  EXPECT_TRUE(mapper.bindings_of(0xDEAD).empty());
}

}  // namespace
}  // namespace ltefp::sniffer
