#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/sim_time.hpp"
#include "common/table.hpp"

namespace ltefp {
namespace {

TEST(Csv, SimpleRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"a", "b", "c"});
  writer.write_row({"1", "2", "3"});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, QuotingCommaQuoteNewline) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "has,comma");
  EXPECT_EQ(rows[0][1], "has\"quote");
  EXPECT_EQ(rows[0][2], "has\nnewline");
  EXPECT_EQ(rows[0][3], "plain");
}

TEST(Csv, EmptyCells) {
  const auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "", ""}));
}

TEST(Csv, CrlfTolerated) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(Csv, MissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc"), std::runtime_error);
}

TEST(Csv, EmptyDocument) {
  EXPECT_TRUE(parse_csv("").empty());
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  const std::string s = table.render("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  // All rendered lines between borders have equal width.
  std::istringstream in(s);
  std::string line;
  std::getline(in, line);  // title
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NE(table.render().find("only-one"), std::string::npos);
}

TEST(Fmt, Formats) {
  EXPECT_EQ(fmt(0.98765), "0.988");
  EXPECT_EQ(fmt(0.5, 1), "0.5");
  EXPECT_EQ(fmt_pct(0.8535), "85.35%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(FormatHms, Formats) {
  EXPECT_EQ(format_hms(0), "0:00:00");
  EXPECT_EQ(format_hms(61'000), "0:01:01");
  EXPECT_EQ(format_hms(2 * kMsPerHour + 3 * kMsPerMinute + 4 * kMsPerSecond), "2:03:04");
  EXPECT_EQ(format_hms(-5), "0:00:00");
}

TEST(SimTime, Conversions) {
  EXPECT_EQ(seconds(1.5), 1500);
  EXPECT_EQ(minutes(2), 120'000);
}

}  // namespace
}  // namespace ltefp
