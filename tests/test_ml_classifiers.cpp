// Shared property tests over all four classifier families (Table VIII's
// LR / kNN / CNN / RF) plus per-model specifics.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "common/rng.hpp"
#include "ml/cnn.hpp"
#include "ml/knn.hpp"
#include "ml/logreg.hpp"
#include "ml/random_forest.hpp"

namespace ltefp::ml {
namespace {

Dataset gaussian_blobs(std::size_t per_class, int classes, double separation, Rng& rng,
                       std::size_t dims = 5) {
  Dataset data;
  data.feature_names.resize(dims, "f");
  data.label_names.resize(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      FeatureVector x(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        x[d] = rng.normal(static_cast<double>(c) * separation * (d % 2 ? 1.0 : -1.0), 1.0);
      }
      data.add(std::move(x), c);
    }
  }
  return data;
}

double accuracy_on(const Classifier& model, const Dataset& data) {
  std::size_t correct = 0;
  for (const auto& s : data.samples) {
    if (model.predict(s.features) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

struct ModelFactory {
  const char* label;
  std::function<std::unique_ptr<Classifier>()> make;
};

class AllClassifiers : public ::testing::TestWithParam<ModelFactory> {};

TEST_P(AllClassifiers, SeparatesWellSeparatedBlobs) {
  Rng rng(11);
  const Dataset train = gaussian_blobs(150, 3, 8.0, rng);
  const Dataset test = gaussian_blobs(50, 3, 8.0, rng);
  auto model = GetParam().make();
  model->fit(train);
  EXPECT_GT(accuracy_on(*model, test), 0.95) << GetParam().label;
}

TEST_P(AllClassifiers, ProbabilitiesAreADistribution) {
  Rng rng(12);
  const Dataset train = gaussian_blobs(60, 4, 5.0, rng);
  auto model = GetParam().make();
  model->fit(train);
  for (int i = 0; i < 20; ++i) {
    const auto& x = train.samples[static_cast<std::size_t>(i * 7)].features;
    const auto proba = model->predict_proba(x);
    ASSERT_EQ(proba.size(), 4u);
    double sum = 0.0;
    for (const double p : proba) {
      ASSERT_GE(p, 0.0);
      ASSERT_LE(p, 1.0 + 1e-9);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << GetParam().label;
  }
}

TEST_P(AllClassifiers, PredictMatchesArgmaxProba) {
  Rng rng(13);
  const Dataset train = gaussian_blobs(60, 3, 4.0, rng);
  auto model = GetParam().make();
  model->fit(train);
  for (int i = 0; i < 30; ++i) {
    const auto& x = train.samples[static_cast<std::size_t>(i * 5)].features;
    const auto proba = model->predict_proba(x);
    const int argmax = static_cast<int>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
    EXPECT_EQ(model->predict(x), argmax) << GetParam().label;
  }
}

TEST_P(AllClassifiers, FitOnEmptyThrows) {
  auto model = GetParam().make();
  EXPECT_THROW(model->fit(Dataset{}), std::invalid_argument);
}

TEST_P(AllClassifiers, PredictBeforeFitThrows) {
  auto model = GetParam().make();
  EXPECT_THROW(model->predict({1.0, 2.0, 3.0, 4.0, 5.0}), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(
    Models, AllClassifiers,
    ::testing::Values(
        ModelFactory{"rf", [] { return std::make_unique<RandomForest>(
                                    ForestConfig{.num_trees = 30}); }},
        ModelFactory{"knn", [] { return std::make_unique<Knn>(KnnConfig{4}); }},
        ModelFactory{"logreg", [] { return std::make_unique<LogisticRegression>(); }},
        ModelFactory{"cnn", [] { return std::make_unique<Cnn1D>(
                                     CnnConfig{.epochs = 40}); }}),
    [](const ::testing::TestParamInfo<ModelFactory>& info) { return info.param.label; });

// --- model-specific behaviour

TEST(RandomForestSpecific, DeterministicForSameSeed) {
  Rng rng(20);
  const Dataset train = gaussian_blobs(80, 3, 3.0, rng);
  RandomForest a(ForestConfig{.num_trees = 10, .seed = 1});
  RandomForest b(ForestConfig{.num_trees = 10, .seed = 1});
  a.fit(train);
  b.fit(train);
  for (const auto& s : train.samples) {
    ASSERT_EQ(a.predict(s.features), b.predict(s.features));
  }
}

TEST(RandomForestSpecific, HandlesNonlinearXorThatDefeatsLogReg) {
  // The paper's stated reason for preferring RF: "the data is rarely
  // linearly separable ... the relationship between input and output is
  // nonlinear".
  Rng rng(21);
  Dataset data;
  data.label_names = {"a", "b"};
  data.feature_names = {"x", "y"};
  for (int i = 0; i < 600; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    data.add({x, y}, (x > 0) == (y > 0) ? 1 : 0);
  }
  Rng split_rng(5);
  auto [train, test] = features::train_test_split(data, 0.8, split_rng);

  RandomForest rf(ForestConfig{.num_trees = 40});
  rf.fit(train);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_GT(accuracy_on(rf, test), 0.9);
  EXPECT_LT(accuracy_on(lr, test), 0.7) << "XOR should defeat a linear model";
}

TEST(RandomForestSpecific, TreeCountMatchesConfig) {
  Rng rng(22);
  const Dataset train = gaussian_blobs(30, 2, 4.0, rng);
  RandomForest rf(ForestConfig{.num_trees = 17});
  rf.fit(train);
  EXPECT_EQ(rf.tree_count(), 17);
}

TEST(KnnSpecific, KOneMemorisesTrainingSet) {
  Rng rng(23);
  const Dataset train = gaussian_blobs(50, 3, 2.0, rng);
  Knn knn(KnnConfig{1});
  knn.fit(train);
  EXPECT_EQ(accuracy_on(knn, train), 1.0);
}

TEST(KnnSpecific, InvalidKThrows) {
  EXPECT_THROW(Knn(KnnConfig{0}), std::invalid_argument);
}

TEST(KnnSpecific, CrossValidatedKInRange) {
  Rng rng(24);
  const Dataset data = gaussian_blobs(40, 3, 3.0, rng);
  const int k = select_k_by_cross_validation(data, 10, 4, 7);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, 10);
}

TEST(LogRegSpecific, WeightsHaveBiasColumn) {
  Rng rng(25);
  const Dataset train = gaussian_blobs(50, 3, 4.0, rng, 6);
  LogisticRegression lr;
  lr.fit(train);
  EXPECT_EQ(lr.weights(0).size(), 7u);  // 6 dims + bias
}

TEST(LogRegSpecific, InvalidCThrows) {
  EXPECT_THROW(LogisticRegression(LogRegConfig{.c = 0.0}), std::invalid_argument);
}

TEST(CnnSpecific, EvenKernelThrows) {
  EXPECT_THROW(Cnn1D(CnnConfig{.kernel = 4}), std::invalid_argument);
}

TEST(DecisionTreeSpecific, RespectsMaxDepth) {
  Rng rng(26);
  const Dataset train = gaussian_blobs(200, 4, 1.0, rng);
  DecisionTree tree(TreeConfig{.max_depth = 3}, 1);
  tree.fit(train, 4);
  EXPECT_LE(tree.depth(), 3);
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTreeSpecific, PureNodeBecomesLeafImmediately) {
  Dataset data;
  data.label_names = {"only"};
  for (int i = 0; i < 20; ++i) data.add({static_cast<double>(i)}, 0);
  DecisionTree tree;
  tree.fit(data, 1);
  EXPECT_EQ(tree.node_count(), 1);
  EXPECT_EQ(tree.predict({5.0}), 0);
}

}  // namespace
}  // namespace ltefp::ml
