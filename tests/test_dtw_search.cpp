// The exactness contract of the DTW acceleration engine (src/dtw/):
// workspace reuse, the pruned kernel, the envelope lower bounds, and the
// best_match / top_k candidate search must all reproduce the brute-force
// answers BIT-identically — pruning may only change how much work is done,
// never a single output double.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dtw/dtw.hpp"
#include "dtw/envelope.hpp"

using namespace ltefp;

namespace {

std::vector<double> random_series(Rng& rng, std::size_t n, double scale) {
  std::vector<double> s(n);
  for (auto& v : s) v = rng.uniform(0.0, scale);
  return s;
}

/// Candidate corpora with structure (amplitude families, shared period)
/// plus pure noise — both shapes the search must stay exact on.
std::vector<std::vector<double>> structured_corpus(Rng& rng, std::size_t count,
                                                   std::size_t len) {
  std::vector<std::vector<double>> corpus(count);
  for (std::size_t c = 0; c < count; ++c) {
    const double amp = 2.0 * std::pow(1.6, static_cast<double>(c % 8));
    const double period = 20.0 + 7.0 * static_cast<double>(c % 3);
    auto& s = corpus[c];
    s.resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      const double base =
          amp * (1.0 + std::sin(static_cast<double>(i) * 6.283185307179586 / period));
      s[i] = std::max(0.0, base + rng.normal(0.0, amp * 0.1));
    }
  }
  return corpus;
}

/// Scores every candidate the slow way (series_similarity, no pruning
/// machinery at all) and picks the winner by (similarity desc, index asc).
dtw::Match naive_best(const std::vector<double>& query,
                      const std::vector<std::vector<double>>& candidates,
                      const dtw::DtwOptions& options) {
  dtw::Match best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double sim = dtw::series_similarity(query, candidates[i], options);
    if (best.index == dtw::kNoMatch || sim > best.similarity) {
      best.index = i;
      best.similarity = sim;
      const auto r = dtw::dtw_distance(query, candidates[i], options);
      best.distance = query.empty() || candidates[i].empty() || sim == 0.0
                          ? std::numeric_limits<double>::max()
                          : r.distance;
    }
  }
  return best;
}

struct ThreadGuard {
  ~ThreadGuard() { set_thread_count(0); }
};

}  // namespace

// --- kernel and workspace -------------------------------------------------

TEST(DtwWorkspace, ExplicitWorkspaceMatchesImplicit) {
  Rng rng(42);
  dtw::DtwWorkspace ws;
  for (const auto& [na, nb] : {std::pair<std::size_t, std::size_t>{40, 40},
                              {40, 25},
                              {7, 80},
                              {1, 1},
                              {200, 3}}) {
    const auto a = random_series(rng, na, 30.0);
    const auto b = random_series(rng, nb, 30.0);
    for (const int band : {-1, 0, 3, 10}) {
      dtw::DtwOptions options;
      options.band = band;
      const auto plain = dtw::dtw_distance(a, b, options);
      // Same workspace reused across every (length, band) combination.
      const auto reused = dtw::dtw_distance(a, b, options, ws);
      EXPECT_EQ(plain.distance, reused.distance);
      EXPECT_EQ(plain.path_length, reused.path_length);
    }
  }
}

TEST(DtwPruned, InfiniteCutoffReproducesFullDp) {
  Rng rng(7);
  dtw::DtwWorkspace ws;
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_series(rng, 30 + static_cast<std::size_t>(trial), 40.0);
    const auto b = random_series(rng, 50 - static_cast<std::size_t>(trial), 40.0);
    dtw::DtwOptions options;
    options.band = trial % 7;
    const auto full = dtw::dtw_distance(a, b, options);
    const auto pruned = dtw::dtw_distance_pruned(
        a, b, options, std::numeric_limits<double>::infinity(), 1.0, ws);
    EXPECT_FALSE(pruned.abandoned);
    EXPECT_EQ(full.distance, pruned.result.distance);
    EXPECT_EQ(full.path_length, pruned.result.path_length);
  }
}

TEST(DtwPruned, AbandonIsAdmissible) {
  // Whenever the kernel abandons, the true distance really was above the
  // cutoff; whenever it completes, the result is the full-DP result.
  Rng rng(19);
  dtw::DtwWorkspace ws;
  int abandoned = 0, completed = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_series(rng, 40, 30.0);
    const auto b = random_series(rng, 40, 30.0);
    dtw::DtwOptions options;
    options.band = 6;
    const auto full = dtw::dtw_distance(a, b, options);
    const double scale = 1.0 + rng.uniform(0.0, 20.0);
    const double cutoff = rng.uniform(0.0, 2.0) * full.distance / scale;
    const auto pruned = dtw::dtw_distance_pruned(a, b, options, cutoff, scale, ws);
    if (pruned.abandoned) {
      ++abandoned;
      EXPECT_GT(full.distance / scale, cutoff);
    } else {
      ++completed;
      EXPECT_EQ(full.distance, pruned.result.distance);
      EXPECT_EQ(full.path_length, pruned.result.path_length);
    }
  }
  // The cutoffs straddle the true distances, so both branches must occur.
  EXPECT_GT(abandoned, 10);
  EXPECT_GT(completed, 10);
}

// --- lower bounds ---------------------------------------------------------

TEST(DtwEnvelope, BoundsEncloseTheSeries) {
  Rng rng(3);
  const auto s = random_series(rng, 64, 100.0);
  for (const int band : {0, 1, 5, 63, 200, -1}) {
    const auto env = dtw::make_envelope(s, band);
    ASSERT_EQ(env.upper.size(), s.size());
    ASSERT_EQ(env.lower.size(), s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_LE(env.lower[i], s[i]);
      EXPECT_GE(env.upper[i], s[i]);
    }
  }
}

TEST(DtwEnvelope, LowerBoundsNeverExceedTrueDistance) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 20 + static_cast<std::size_t>(trial % 30);
    const auto a = random_series(rng, n, 50.0);
    const auto b = random_series(rng, n, 50.0);
    dtw::DtwOptions options;
    options.band = 1 + trial % 9;
    const double dist = dtw::dtw_distance(a, b, options).distance;
    EXPECT_LE(dtw::lb_kim(a, b, options), dist);
    const auto env = dtw::make_envelope(a, options.band);
    EXPECT_LE(dtw::lb_keogh(b, env, options), dist);
  }
}

TEST(DtwEnvelope, KimBoundHoldsAcrossLengthMismatch) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_series(rng, 5 + static_cast<std::size_t>(trial), 50.0);
    const auto b = random_series(rng, 60 - static_cast<std::size_t>(trial), 50.0);
    dtw::DtwOptions options;
    options.band = trial % 5;  // may be < |n - m|; the DP widens, LB_Kim holds
    EXPECT_LE(dtw::lb_kim(a, b, options), dtw::dtw_distance(a, b, options).distance);
  }
}

// --- candidate search: pruned == brute force, bit for bit -----------------

TEST(DtwSearch, BestMatchIsBitIdenticalToBruteForce) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t len = 40 + static_cast<std::size_t>(8 * trial);
    auto corpus = trial % 2 == 0 ? structured_corpus(rng, 24, len)
                                 : std::vector<std::vector<double>>();
    if (corpus.empty()) {
      for (int i = 0; i < 24; ++i) corpus.push_back(random_series(rng, len, 40.0));
    }
    auto query = corpus[static_cast<std::size_t>(trial * 2) % corpus.size()];
    for (auto& v : query) v = std::max(0.0, v + rng.normal(0.0, 0.5));

    dtw::SearchOptions pruned;
    pruned.dtw.band = static_cast<int>(len / 8);
    dtw::SearchOptions brute = pruned;
    brute.prune = false;

    dtw::SearchStats ps, bs;
    const auto fast = dtw::best_match(query, corpus, pruned, &ps);
    const auto slow = dtw::best_match(query, corpus, brute, &bs);
    const auto naive = naive_best(query, corpus, pruned.dtw);

    EXPECT_EQ(fast.index, slow.index);
    EXPECT_EQ(fast.similarity, slow.similarity);
    EXPECT_EQ(fast.distance, slow.distance);
    EXPECT_EQ(fast.index, naive.index);
    EXPECT_EQ(fast.similarity, naive.similarity);
    EXPECT_EQ(bs.full_dp, corpus.size());  // brute force evaluates everything
    EXPECT_EQ(ps.candidates, ps.full_dp + ps.lb_kim_pruned + ps.lb_keogh_pruned +
                                 ps.abandoned + ps.short_circuits);
  }
}

TEST(DtwSearch, TopKIsBitIdenticalToBruteForce) {
  Rng rng(29);
  const auto corpus = structured_corpus(rng, 30, 60);
  auto query = corpus[11];
  for (auto& v : query) v = std::max(0.0, v + rng.normal(0.0, 0.4));

  dtw::SearchOptions pruned;
  pruned.dtw.band = 8;
  dtw::SearchOptions brute = pruned;
  brute.prune = false;

  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              corpus.size(), corpus.size() + 5}) {
    const auto fast = dtw::top_k(query, corpus, k, pruned);
    const auto slow = dtw::top_k(query, corpus, k, brute);
    ASSERT_EQ(fast.size(), std::min(k, corpus.size())) << "k=" << k;
    ASSERT_EQ(fast.size(), slow.size()) << "k=" << k;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].index, slow[i].index) << "k=" << k << " rank=" << i;
      EXPECT_EQ(fast[i].similarity, slow[i].similarity) << "k=" << k << " rank=" << i;
      EXPECT_EQ(fast[i].distance, slow[i].distance) << "k=" << k << " rank=" << i;
    }
    // Descending similarity, ties by ascending index.
    for (std::size_t i = 1; i < fast.size(); ++i) {
      EXPECT_TRUE(fast[i - 1].similarity > fast[i].similarity ||
                  (fast[i - 1].similarity == fast[i].similarity &&
                   fast[i - 1].index < fast[i].index));
    }
  }
}

TEST(DtwSearch, StructuredCorpusPrunesMostCandidates) {
  Rng rng(31);
  const auto corpus = structured_corpus(rng, 64, 180);
  auto query = corpus[37];
  for (auto& v : query) v = std::max(0.0, v + rng.normal(0.0, 1.0));
  dtw::SearchOptions options;
  options.dtw.band = 22;
  dtw::SearchStats stats;
  const auto fast = dtw::best_match(query, corpus, options, &stats);

  dtw::SearchOptions brute = options;
  brute.prune = false;
  const auto slow = dtw::best_match(query, corpus, brute);
  EXPECT_EQ(fast.index, slow.index);
  EXPECT_EQ(fast.similarity, slow.similarity);
  EXPECT_EQ(fast.distance, slow.distance);

  // The acceptance bar: at least half of the full DP evaluations skipped.
  EXPECT_GE(stats.pruned() + stats.short_circuits, stats.candidates / 2)
      << "full_dp=" << stats.full_dp << " kim=" << stats.lb_kim_pruned
      << " keogh=" << stats.lb_keogh_pruned << " abandoned=" << stats.abandoned;
}

// --- edge cases -----------------------------------------------------------

TEST(DtwSearch, EmptyCandidateListReturnsNoMatch) {
  const std::vector<double> query{1.0, 2.0};
  const std::vector<std::vector<double>> none;
  const auto match = dtw::best_match(query, none);
  EXPECT_EQ(match.index, dtw::kNoMatch);
  EXPECT_EQ(match.similarity, 0.0);
  EXPECT_TRUE(dtw::top_k(query, none, 3).empty());
  EXPECT_TRUE(dtw::top_k(query, none, 0).empty());
}

TEST(DtwSearch, EmptyAndZeroSeriesShortCircuitWithoutDp) {
  Rng rng(37);
  // Empty query: every candidate is similarity 0 by definition.
  {
    const std::vector<double> query;
    std::vector<std::vector<double>> corpus{random_series(rng, 10, 5.0),
                                            random_series(rng, 10, 5.0)};
    dtw::SearchStats stats;
    const auto match = dtw::best_match(query, corpus, {}, &stats);
    EXPECT_EQ(match.index, 0u);  // ties broken by lowest index
    EXPECT_EQ(match.similarity, 0.0);
    EXPECT_EQ(stats.full_dp, 0u);
    EXPECT_EQ(stats.short_circuits, 2u);
  }
  // All-zero candidates and query: zero level short-circuits the scaling.
  {
    const std::vector<double> query(16, 0.0);
    std::vector<std::vector<double>> corpus{std::vector<double>(16, 0.0),
                                            std::vector<double>(16, 0.0),
                                            std::vector<double>()};
    dtw::SearchStats stats;
    const auto matches = dtw::top_k(query, corpus, 2, {}, &stats);
    ASSERT_EQ(matches.size(), 2u);
    EXPECT_EQ(matches[0].index, 0u);
    EXPECT_EQ(matches[1].index, 1u);
    EXPECT_EQ(matches[0].similarity, 0.0);
    EXPECT_EQ(stats.full_dp, 0u);
    EXPECT_EQ(stats.short_circuits, 3u);
  }
}

TEST(DtwSearch, LengthOneAndNarrowBandStayExact) {
  Rng rng(41);
  std::vector<std::vector<double>> corpus{std::vector<double>{3.5},
                                          random_series(rng, 17, 10.0),
                                          random_series(rng, 1, 10.0),
                                          random_series(rng, 40, 10.0)};
  const auto query = random_series(rng, 9, 10.0);
  dtw::SearchOptions pruned;
  pruned.dtw.band = 0;  // < |n - m| for every candidate: effective band widens
  dtw::SearchOptions brute = pruned;
  brute.prune = false;
  const auto fast = dtw::top_k(query, corpus, corpus.size(), pruned);
  const auto slow = dtw::top_k(query, corpus, corpus.size(), brute);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].index, slow[i].index);
    EXPECT_EQ(fast[i].similarity, slow[i].similarity);
    EXPECT_EQ(fast[i].distance, slow[i].distance);
  }
}

// --- thread invariance ----------------------------------------------------

TEST(DtwSearch, ResultsIdenticalAtAnyThreadCount) {
  const ThreadGuard guard;
  Rng rng(43);
  const auto corpus = structured_corpus(rng, 20, 50);
  auto query = corpus[7];
  for (auto& v : query) v = std::max(0.0, v + rng.normal(0.0, 0.3));
  dtw::SearchOptions options;
  options.dtw.band = 7;

  set_thread_count(1);
  const auto base_match = dtw::best_match(query, corpus, options);
  const auto base_top = dtw::top_k(query, corpus, 5, options);
  const auto base_matrix = dtw::similarity_matrix(corpus, options.dtw);
  for (const int threads : {2, 8}) {
    set_thread_count(threads);
    const auto match = dtw::best_match(query, corpus, options);
    EXPECT_EQ(match.index, base_match.index) << "threads=" << threads;
    EXPECT_EQ(match.similarity, base_match.similarity) << "threads=" << threads;
    const auto top = dtw::top_k(query, corpus, 5, options);
    ASSERT_EQ(top.size(), base_top.size());
    for (std::size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].index, base_top[i].index) << "threads=" << threads;
      EXPECT_EQ(top[i].similarity, base_top[i].similarity) << "threads=" << threads;
    }
    const auto matrix = dtw::similarity_matrix(corpus, options.dtw);
    EXPECT_EQ(matrix, base_matrix) << "threads=" << threads;
  }
}

// --- the matrix engine and its cached levels ------------------------------

TEST(DtwSearch, SimilarityMatrixMatchesPairwiseCalls) {
  Rng rng(47);
  std::vector<std::vector<double>> series;
  for (int i = 0; i < 9; ++i) series.push_back(random_series(rng, 30, 20.0));
  series.push_back({});                         // empty row
  series.push_back(std::vector<double>(30, 0.0));  // zero-level row
  dtw::DtwOptions options;
  options.band = 5;
  const auto matrix = dtw::similarity_matrix(series, options);
  const std::size_t n = series.size();
  ASSERT_EQ(matrix.size(), n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(matrix[i * n + j], dtw::series_similarity(series[i], series[j], options))
          << i << "," << j;
      EXPECT_EQ(matrix[i * n + j], matrix[j * n + i]);
    }
  }
}

TEST(DtwSearch, KernelCountersTallyWork) {
  Rng rng(53);
  const auto a = random_series(rng, 25, 10.0);
  const auto b = random_series(rng, 25, 10.0);
  dtw::reset_kernel_counters();
  dtw::DtwOptions options;
  options.band = 4;
  (void)dtw::dtw_distance(a, b, options);
  const auto counters = dtw::kernel_counters();
  EXPECT_EQ(counters.dp_calls, 1u);
  EXPECT_GE(counters.dp_cells, 25u);      // at least the main diagonal
  EXPECT_LE(counters.dp_cells, 25u * 25u);
  EXPECT_EQ(counters.dp_abandoned, 0u);
}
