#include "lte/operator_profile.hpp"

#include <gtest/gtest.h>

namespace ltefp::lte {
namespace {

TEST(OperatorProfile, LabIsControlled) {
  const OperatorProfile lab = operator_profile(Operator::kLab);
  EXPECT_EQ(lab.background_ues, 0);
  EXPECT_EQ(lab.sniffer_miss_rate, 0.0);
  EXPECT_EQ(lab.scheduler, SchedulerKind::kRoundRobin);
  EXPECT_EQ(lab.session_load_jitter, 0.0);
}

TEST(OperatorProfile, CommercialCellsAreNoisy) {
  for (const Operator op : {Operator::kVerizon, Operator::kAtt, Operator::kTmobile}) {
    const OperatorProfile p = operator_profile(op);
    EXPECT_GT(p.background_ues, 0) << to_string(op);
    EXPECT_GT(p.sniffer_miss_rate, 0.0) << to_string(op);
    EXPECT_GT(p.channel_volatility_db, 1.0) << to_string(op);
    EXPECT_EQ(p.scheduler, SchedulerKind::kProportionalFair) << to_string(op);
    EXPECT_GT(p.session_snr_jitter_db, 1.0) << to_string(op);
  }
}

TEST(OperatorProfile, OperatorsDifferInBandwidth) {
  // Heterogeneous deployments are why the paper trains per carrier.
  const auto vzw = operator_profile(Operator::kVerizon);
  const auto att = operator_profile(Operator::kAtt);
  const auto tmo = operator_profile(Operator::kTmobile);
  EXPECT_NE(prb_count(vzw.bandwidth), prb_count(tmo.bandwidth));
  EXPECT_NE(prb_count(att.bandwidth), prb_count(vzw.bandwidth));
}

TEST(PerturbForSession, DeterministicPerSeed) {
  const OperatorProfile base = operator_profile(Operator::kVerizon);
  const OperatorProfile a = perturb_for_session(base, 42);
  const OperatorProfile b = perturb_for_session(base, 42);
  EXPECT_EQ(a.mean_snr_db, b.mean_snr_db);
  EXPECT_EQ(a.background_ues, b.background_ues);
  const OperatorProfile c = perturb_for_session(base, 43);
  EXPECT_NE(a.mean_snr_db, c.mean_snr_db);
}

TEST(PerturbForSession, LabUnaffectedByLoadJitter) {
  const OperatorProfile base = operator_profile(Operator::kLab);
  const OperatorProfile perturbed = perturb_for_session(base, 7);
  EXPECT_EQ(perturbed.background_ues, 0);
  // SNR jitter is tiny in the Faraday cage.
  EXPECT_NEAR(perturbed.mean_snr_db, base.mean_snr_db, 2.0);
}

TEST(PerturbForSession, StaysWithinPhysicalBounds) {
  const OperatorProfile base = operator_profile(Operator::kAtt);
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    const OperatorProfile p = perturb_for_session(base, seed);
    ASSERT_GE(p.mean_snr_db, 2.0);
    ASSERT_LE(p.mean_snr_db, 28.0);
    ASSERT_GE(p.background_ues, 1);
    ASSERT_GT(p.background_load_bps, 0.0);
  }
}

TEST(Bandwidth, PrbTable) {
  EXPECT_EQ(prb_count(Bandwidth::kMhz1_4), 6);
  EXPECT_EQ(prb_count(Bandwidth::kMhz3), 15);
  EXPECT_EQ(prb_count(Bandwidth::kMhz5), 25);
  EXPECT_EQ(prb_count(Bandwidth::kMhz10), 50);
  EXPECT_EQ(prb_count(Bandwidth::kMhz15), 75);
  EXPECT_EQ(prb_count(Bandwidth::kMhz20), 100);
}

TEST(Types, DirectionHelpers) {
  EXPECT_TRUE(direction_passes(LinkFilter::kBoth, Direction::kUplink));
  EXPECT_TRUE(direction_passes(LinkFilter::kDownlinkOnly, Direction::kDownlink));
  EXPECT_FALSE(direction_passes(LinkFilter::kDownlinkOnly, Direction::kUplink));
  EXPECT_FALSE(direction_passes(LinkFilter::kUplinkOnly, Direction::kDownlink));
  EXPECT_STREQ(to_string(Direction::kDownlink), "DL");
  EXPECT_STREQ(to_string(Operator::kTmobile), "T-Mobile");
}

}  // namespace
}  // namespace ltefp::lte
