#include <gtest/gtest.h>

#include "lte/crc.hpp"
#include "lte/enb.hpp"
#include "lte/operator_profile.hpp"

namespace ltefp::lte {
namespace {

struct HarqCounts {
  int first_tx = 0;  // NDI = true
  int retx = 0;      // NDI = false
};

HarqCounts run_with_bler(double bler) {
  EnbConfig config;
  config.cell = 0;
  config.profile = operator_profile(Operator::kLab);
  config.profile.harq_bler = bler;
  Enb enb(config, Rng(5));

  TimeMs now = 0;
  enb.start_connection(1, 0xAA, now);
  for (int i = 0; i < 20; ++i) enb.step(now++);
  EXPECT_TRUE(enb.is_connected(1));
  const Rnti rnti = *enb.rnti_of(1);

  HarqCounts counts;
  for (int burst = 0; burst < 50; ++burst) {
    enb.push_traffic(1, Direction::kDownlink, 2000, now);
    for (int i = 0; i < 40; ++i) {
      const auto result = enb.step(now++);
      for (const auto& enc : result.pdcch.dcis) {
        if (recover_rnti(enc.payload, enc.masked_crc) != rnti) continue;
        const auto dci = decode_dci_fields(enc);
        EXPECT_TRUE(dci.has_value());
        if (!dci) continue;
        if (dci->ndi) {
          ++counts.first_tx;
        } else {
          ++counts.retx;
        }
      }
    }
  }
  return counts;
}

TEST(Harq, NoRetransmissionsAtZeroBler) {
  const HarqCounts counts = run_with_bler(0.0);
  EXPECT_GT(counts.first_tx, 40);
  EXPECT_EQ(counts.retx, 0);
}

TEST(Harq, RetransmissionRateTracksBler) {
  const HarqCounts counts = run_with_bler(0.3);
  ASSERT_GT(counts.first_tx, 40);
  const double ratio = static_cast<double>(counts.retx) / counts.first_tx;
  EXPECT_NEAR(ratio, 0.3, 0.12);
}

TEST(Harq, RetransmissionRepeatsGrantParameters) {
  EnbConfig config;
  config.cell = 0;
  config.profile = operator_profile(Operator::kLab);
  config.profile.harq_bler = 1.0;  // every TB fails once
  Enb enb(config, Rng(6));
  TimeMs now = 0;
  enb.start_connection(1, 0xAA, now);
  for (int i = 0; i < 20; ++i) enb.step(now++);
  const Rnti rnti = *enb.rnti_of(1);

  enb.push_traffic(1, Direction::kUplink, 700, now);
  Dci first{}, retx{};
  bool saw_first = false, saw_retx = false;
  for (int i = 0; i < 30 && !saw_retx; ++i) {
    const auto result = enb.step(now++);
    for (const auto& enc : result.pdcch.dcis) {
      if (recover_rnti(enc.payload, enc.masked_crc) != rnti) continue;
      const auto dci = decode_dci_fields(enc);
      ASSERT_TRUE(dci.has_value());
      if (dci->ndi && !saw_first) {
        first = *dci;
        saw_first = true;
      } else if (!dci->ndi && saw_first && !saw_retx) {
        retx = *dci;
        saw_retx = true;
      }
    }
  }
  ASSERT_TRUE(saw_first);
  ASSERT_TRUE(saw_retx);
  EXPECT_EQ(retx.mcs, first.mcs);
  EXPECT_EQ(retx.nprb, first.nprb);
  EXPECT_EQ(retx.direction, first.direction);
}

TEST(Harq, CommercialProfilesHaveNonzeroBler) {
  for (const Operator op : {Operator::kVerizon, Operator::kAtt, Operator::kTmobile}) {
    EXPECT_GT(operator_profile(op).harq_bler, 0.05) << to_string(op);
  }
  EXPECT_LT(operator_profile(Operator::kLab).harq_bler, 0.02);
}

}  // namespace
}  // namespace ltefp::lte
