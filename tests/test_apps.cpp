#include <gtest/gtest.h>

#include <memory>

#include "apps/app_id.hpp"
#include "apps/background.hpp"
#include "apps/conversation.hpp"
#include "apps/drift.hpp"
#include "apps/factory.hpp"
#include "common/rng.hpp"

namespace ltefp::apps {
namespace {

struct Totals {
  long long ul_bytes = 0;
  long long dl_bytes = 0;
  std::size_t packets = 0;
};

Totals run_source(lte::TrafficSource& source, TimeMs duration) {
  Totals totals;
  std::vector<lte::AppPacket> out;
  for (TimeMs t = 0; t < duration; ++t) {
    out.clear();
    source.step(t, out);
    for (const auto& pkt : out) {
      EXPECT_GT(pkt.bytes, 0);
      ++totals.packets;
      if (pkt.direction == lte::Direction::kUplink) {
        totals.ul_bytes += pkt.bytes;
      } else {
        totals.dl_bytes += pkt.bytes;
      }
    }
  }
  return totals;
}

TEST(AppId, CategoriesAndNames) {
  EXPECT_EQ(category_of(AppId::kNetflix), AppCategory::kStreaming);
  EXPECT_EQ(category_of(AppId::kTelegram), AppCategory::kMessaging);
  EXPECT_EQ(category_of(AppId::kSkype), AppCategory::kVoip);
  EXPECT_STREQ(to_string(AppId::kAmazonPrime), "Amazon Prime");
  EXPECT_EQ(app_from_string("WhatsApp"), AppId::kWhatsApp);
  EXPECT_EQ(app_from_string("nonsense"), std::nullopt);
  for (const AppId app : kAllApps) {
    EXPECT_EQ(app_from_string(to_string(app)), app);
  }
}

TEST(AppId, AppsInCategoryRoundTrip) {
  for (const auto category :
       {AppCategory::kStreaming, AppCategory::kMessaging, AppCategory::kVoip}) {
    for (const AppId app : apps_in_category(category)) {
      EXPECT_EQ(category_of(app), category);
    }
  }
}

// Every app's model runs and produces traffic.
class EveryApp : public ::testing::TestWithParam<AppId> {};

TEST_P(EveryApp, GeneratesTraffic) {
  auto source = make_app_source(GetParam(), minutes(1), Rng(42));
  ASSERT_NE(source, nullptr);
  const Totals totals = run_source(*source, minutes(1));
  EXPECT_GT(totals.packets, 10u) << to_string(GetParam());
  EXPECT_GT(totals.ul_bytes + totals.dl_bytes, 1000) << to_string(GetParam());
}

TEST_P(EveryApp, DeterministicForSameSeed) {
  auto a = make_app_source(GetParam(), seconds(20), Rng(7));
  auto b = make_app_source(GetParam(), seconds(20), Rng(7));
  const Totals ta = run_source(*a, seconds(20));
  const Totals tb = run_source(*b, seconds(20));
  EXPECT_EQ(ta.packets, tb.packets);
  EXPECT_EQ(ta.ul_bytes, tb.ul_bytes);
  EXPECT_EQ(ta.dl_bytes, tb.dl_bytes);
}

INSTANTIATE_TEST_SUITE_P(Apps, EveryApp, ::testing::ValuesIn(kAllApps),
                         [](const ::testing::TestParamInfo<AppId>& info) {
                           std::string name = to_string(info.param);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(Streaming, DownlinkDominates) {
  // Paper IV-B: streaming is one-way video; uplink is request/ack scale.
  for (const AppId app : apps_in_category(AppCategory::kStreaming)) {
    auto source = make_app_source(app, minutes(2), Rng(3));
    const Totals totals = run_source(*source, minutes(2));
    EXPECT_GT(totals.dl_bytes, totals.ul_bytes * 10) << to_string(app);
  }
}

TEST(Streaming, FrontLoadedBuffering) {
  // "much more radio resources at the beginning of each session".
  auto source = make_app_source(AppId::kNetflix, minutes(3), Rng(4));
  long long first_15s = 0, later_15s = 0;
  std::vector<lte::AppPacket> out;
  for (TimeMs t = 0; t < minutes(3); ++t) {
    out.clear();
    source->step(t, out);
    for (const auto& pkt : out) {
      if (pkt.direction != lte::Direction::kDownlink) continue;
      if (t < seconds(15)) first_15s += pkt.bytes;
      if (t >= seconds(120) && t < seconds(135)) later_15s += pkt.bytes;
    }
  }
  EXPECT_GT(first_15s, later_15s);
}

TEST(Voip, BidirectionalBalance) {
  // "the only class ... with a significant and similar amount of data
  // transmitted in both directions".
  for (const AppId app : apps_in_category(AppCategory::kVoip)) {
    auto source = make_app_source(app, minutes(2), Rng(5));
    const Totals totals = run_source(*source, minutes(2));
    const double ratio = static_cast<double>(totals.ul_bytes) /
                         static_cast<double>(totals.dl_bytes);
    EXPECT_GT(ratio, 0.4) << to_string(app);
    EXPECT_LT(ratio, 2.5) << to_string(app);
  }
}

TEST(Messaging, ScriptsContainTimeoutExceedingIdleGaps) {
  // IM idle gaps routinely exceed the 10 s RRC timeout -> RNTI refreshes.
  Rng rng(6);
  const MessagingParams params = messaging_params(AppId::kWhatsApp);
  int long_gaps = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const ChatScript script = generate_chat_script(params, minutes(10), rng);
    ASSERT_GT(script.size(), 5u);
    for (std::size_t i = 1; i < script.size(); ++i) {
      ASSERT_GE(script[i].time, script[i - 1].time) << "script must be time-ordered";
      if (script[i].time - script[i - 1].time > 10'000) ++long_gaps;
    }
  }
  EXPECT_GT(long_gaps, 0);
}

TEST(Conversation, CallScriptAlternatesAndCovers) {
  Rng rng(7);
  const VoipParams params = voip_params(AppId::kSkype);
  const CallScript script = generate_call_script(params, minutes(2), rng);
  ASSERT_GT(script.size(), 10u);
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_LT(script[i].start, script[i].end);
    if (i > 0) {
      EXPECT_GE(script[i].start, script[i - 1].end);
      EXPECT_NE(script[i].a_talking, script[i - 1].a_talking) << "parties alternate";
    }
  }
}

TEST(PairedSources, SenderUplinkMirrorsReceiverDownlink) {
  for (const AppId app : {AppId::kWhatsApp, AppId::kSkype}) {
    auto [a, b] = make_paired_sources(app, minutes(2), Rng(8), 70);
    const Totals ta = run_source(*a, minutes(2));
    const Totals tb = run_source(*b, minutes(2));
    // What A uplinks, B downlinks (plus/minus edge effects and local
    // receipts); totals must be within ~35%.
    const double ratio = static_cast<double>(ta.ul_bytes) /
                         std::max<long long>(tb.dl_bytes, 1);
    EXPECT_GT(ratio, 0.65) << to_string(app);
    EXPECT_LT(ratio, 1.55) << to_string(app);
  }
}

TEST(PairedSources, StreamingThrows) {
  EXPECT_THROW(make_paired_sources(AppId::kYoutube, minutes(1), Rng(9)),
               std::invalid_argument);
}

TEST(Drift, DayZeroIsIdentity) {
  const DriftModel drift;
  for (const AppId app : kAllApps) {
    const DriftFactors f = drift.at(app, 0);
    EXPECT_DOUBLE_EQ(f.size_scale, 1.0);
    EXPECT_DOUBLE_EQ(f.interval_scale, 1.0);
    EXPECT_DOUBLE_EQ(f.shape_shift, 0.0);
  }
}

TEST(Drift, DeterministicAndCumulative) {
  const DriftModel drift(0.05, 123);
  const DriftFactors a1 = drift.at(AppId::kYoutube, 5);
  const DriftFactors a2 = drift.at(AppId::kYoutube, 5);
  EXPECT_DOUBLE_EQ(a1.size_scale, a2.size_scale);
  // Different apps drift independently.
  const DriftFactors other = drift.at(AppId::kNetflix, 5);
  EXPECT_NE(a1.size_scale, other.size_scale);
  // Shape shift grows with the day index.
  EXPECT_GT(drift.at(AppId::kYoutube, 20).shape_shift,
            drift.at(AppId::kYoutube, 5).shape_shift);
}

TEST(Drift, AppliesToParams) {
  DriftFactors f;
  f.size_scale = 2.0;
  StreamingParams sp = streaming_params(AppId::kYoutube);
  const double original = sp.segment_kb_mean;
  apply_drift(sp, f);
  EXPECT_NEAR(sp.segment_kb_mean, original * 2.0, 1e-9);

  VoipParams vp = voip_params(AppId::kSkype);
  const double frame = vp.frame_bytes_mean;
  apply_drift(vp, f);
  EXPECT_NEAR(vp.frame_bytes_mean, frame * 2.0, 1e-9);
}

TEST(Background, WebBrowsingGeneratesBurstyDownlink) {
  WebBrowsingSource::Params params;
  params.think_mean_s = 2.0;
  WebBrowsingSource source(params, Rng(10));
  const Totals totals = run_source(source, minutes(1));
  EXPECT_GT(totals.packets, 20u);
  EXPECT_GT(totals.dl_bytes, totals.ul_bytes);
}

TEST(Background, MixRunsRequestedAppCount) {
  BackgroundAppMix mix(5, Rng(11));
  const Totals totals = run_source(mix, seconds(30));
  EXPECT_GT(totals.packets, 0u);
}

TEST(Background, CompositeMergesBothSources) {
  auto fg = make_app_source(AppId::kSkype, seconds(30), Rng(12));
  auto voip_only = make_app_source(AppId::kSkype, seconds(30), Rng(12));
  CompositeSource composite(std::move(fg),
                            std::make_unique<BackgroundAppMix>(3, Rng(13)));
  const Totals with_noise = run_source(composite, seconds(30));
  const Totals clean = run_source(*voip_only, seconds(30));
  EXPECT_GT(with_noise.packets, clean.packets);
  EXPECT_STREQ(composite.name(), "Skype");
}

TEST(Params, WrongCategoryThrows) {
  EXPECT_THROW(streaming_params(AppId::kSkype), std::invalid_argument);
  EXPECT_THROW(messaging_params(AppId::kNetflix), std::invalid_argument);
  EXPECT_THROW(voip_params(AppId::kWhatsApp), std::invalid_argument);
}

}  // namespace
}  // namespace ltefp::apps
