#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ltefp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 4.0, 2.5, -3.0, 8.0, 0.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 8.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(SpanStats, EmptyInputs) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(percentile(xs, 0), 10.0);
  EXPECT_EQ(percentile(xs, 100), 40.0);
  EXPECT_NEAR(percentile(xs, 50), 25.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 25), 17.5, 1e-12);
}

TEST(Percentile, UnsortedInputAndClamping) {
  std::vector<double> xs{30.0, 10.0, 20.0};
  EXPECT_EQ(percentile(xs, -5), 10.0);
  EXPECT_EQ(percentile(xs, 200), 30.0);
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
  EXPECT_EQ(pearson(ys, xs), 0.0);
}

TEST(Pearson, ShortInput) {
  EXPECT_EQ(pearson(std::vector<double>{1.0}, std::vector<double>{2.0}), 0.0);
}

TEST(Histogram, ConstructorValidation) {
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram::linear(5.0, 5.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram::linear(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, FactoryBucketLayouts) {
  const Histogram lin = Histogram::linear(0.0, 100.0, 4);
  EXPECT_EQ(lin.bounds(), (std::vector<double>{25.0, 50.0, 75.0, 100.0}));
  const Histogram exp = Histogram::exponential(1.0, 2.0, 4);
  EXPECT_EQ(exp.bounds(), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

TEST(Histogram, BucketBoundariesAreUpperInclusive) {
  // Buckets partition as (-inf, 10], (10, 20], (20, +inf): a sample landing
  // exactly on a bound belongs to the bucket it bounds.
  Histogram h(std::vector<double>{10.0, 20.0});
  h.add(10.0);
  h.add(10.5);
  h.add(20.0);
  h.add(20.5);
  EXPECT_EQ(h.counts(), (std::vector<std::size_t>{1, 2, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 10.0);
  EXPECT_EQ(h.max(), 20.5);
}

TEST(Histogram, EmptyHistogramReportsZeroes) {
  const Histogram h = Histogram::linear(0.0, 10.0, 2);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, QuantileIsBucketUpperBound) {
  // 100 samples, one per value 1..100, over 10-wide buckets: the rank-k
  // sample sits in bucket ceil(k/10), so each quantile reports that
  // bucket's upper bound — a value >= the true quantile.
  Histogram h = Histogram::linear(0.0, 100.0, 10);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.p50(), 50.0);
  EXPECT_EQ(h.p95(), 100.0);
  EXPECT_EQ(h.p99(), 100.0);
  EXPECT_EQ(h.quantile(1.0), 10.0);
  EXPECT_EQ(h.quantile(0.0), 10.0);  // rank clamps to the first sample
  EXPECT_EQ(h.quantile(91.0), 100.0);
}

TEST(Histogram, ExactQuantileEdges) {
  // Rank arithmetic at bucket edges: 10 samples in (0,1], 10 in (1,2].
  // p50 -> rank 5 -> first bucket; p51 -> rank 6... still first; p50+eps
  // crossing to rank 11 happens at p > 100*10/20.
  Histogram h(std::vector<double>{1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(1.5);
  EXPECT_EQ(h.quantile(50.0), 1.0);   // rank 10: last sample of bucket 0
  EXPECT_EQ(h.quantile(50.1), 2.0);   // rank 11: first sample of bucket 1
  EXPECT_EQ(h.quantile(100.0), 2.0);
}

TEST(Histogram, OverflowBucketReportsExactMax) {
  Histogram h = Histogram::linear(0.0, 10.0, 2);
  h.add(3.0);
  h.add(123.5);  // overflow
  EXPECT_EQ(h.counts().back(), 1u);
  EXPECT_EQ(h.quantile(100.0), 123.5);  // exact max, not a bucket bound
  EXPECT_EQ(h.p50(), 5.0);
}

TEST(Histogram, MergeIsCommutativeAndChecksLayout) {
  Histogram a = Histogram::linear(0.0, 10.0, 2);
  Histogram b = Histogram::linear(0.0, 10.0, 2);
  a.add(1.0);
  a.add(7.0);
  b.add(4.0);
  b.add(42.0);

  Histogram ab = a;
  ab.merge(b);
  Histogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.counts(), ba.counts());
  EXPECT_EQ(ab.count(), 4u);
  EXPECT_EQ(ab.min(), 1.0);
  EXPECT_EQ(ab.max(), 42.0);
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());

  // Merging an empty histogram is a no-op in both directions.
  Histogram empty = Histogram::linear(0.0, 10.0, 2);
  Histogram a2 = a;
  a2.merge(empty);
  EXPECT_EQ(a2.counts(), a.counts());
  EXPECT_EQ(a2.min(), a.min());
  empty.merge(a);
  EXPECT_EQ(empty.counts(), a.counts());

  Histogram other = Histogram::linear(0.0, 20.0, 2);
  EXPECT_THROW(a2.merge(other), std::invalid_argument);
}

}  // namespace
}  // namespace ltefp
