#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ltefp {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 4.0, 2.5, -3.0, 8.0, 0.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev(xs), 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 8.0);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(SpanStats, EmptyInputs) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_EQ(percentile(xs, 0), 10.0);
  EXPECT_EQ(percentile(xs, 100), 40.0);
  EXPECT_NEAR(percentile(xs, 50), 25.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 25), 17.5, 1e-12);
}

TEST(Percentile, UnsortedInputAndClamping) {
  std::vector<double> xs{30.0, 10.0, 20.0};
  EXPECT_EQ(percentile(xs, -5), 10.0);
  EXPECT_EQ(percentile(xs, 200), 30.0);
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
  EXPECT_EQ(pearson(ys, xs), 0.0);
}

TEST(Pearson, ShortInput) {
  EXPECT_EQ(pearson(std::vector<double>{1.0}, std::vector<double>{2.0}), 0.0);
}

}  // namespace
}  // namespace ltefp
