#include "dtw/dtw.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace ltefp::dtw {
namespace {

TEST(Dtw, IdenticalSeriesHaveZeroDistance) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const DtwResult r = dtw_distance(a, a);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.path_length, 5u);
  EXPECT_DOUBLE_EQ(series_similarity(a, a), 1.0);
}

TEST(Dtw, HandComputedSmallExample) {
  // a = [0, 2], b = [0, 2, 2]: the warping path duplicates the final
  // element at zero extra cost. Accumulated distance 0, path length 3.
  const std::vector<double> a{0, 2};
  const std::vector<double> b{0, 2, 2};
  DtwOptions options;
  options.normalize_by_path = false;
  const DtwResult r = dtw_distance(a, b, options);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.path_length, 3u);
}

TEST(Dtw, EquationOneRecurrence) {
  // a = [1, 3], b = [2, 4] (unnormalised):
  // D(1,1)=1, D(1,2)=|1-4|+1=4, D(2,1)=|3-2|+1=2, D(2,2)=|3-4|+min(1,4,2)=2.
  const std::vector<double> a{1, 3};
  const std::vector<double> b{2, 4};
  DtwOptions options;
  options.normalize_by_path = false;
  const DtwResult r = dtw_distance(a, b, options);
  EXPECT_DOUBLE_EQ(r.distance, 2.0);
}

TEST(Dtw, SymmetricInArguments) {
  Rng rng(4);
  std::vector<double> a(40), b(40);
  for (auto& v : a) v = rng.uniform(0, 10);
  for (auto& v : b) v = rng.uniform(0, 10);
  const DtwResult ab = dtw_distance(a, b);
  const DtwResult ba = dtw_distance(b, a);
  EXPECT_NEAR(ab.distance, ba.distance, 1e-12);
}

TEST(Dtw, ToleratesTimeShiftBetterThanEuclidean) {
  // A spike at index 10 vs the same spike at index 13: DTW warps across
  // it cheaply; lockstep comparison would pay the full spike twice.
  std::vector<double> a(30, 0.0), b(30, 0.0);
  a[10] = 50.0;
  b[13] = 50.0;
  const DtwResult r = dtw_distance(a, b);
  double lockstep = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) lockstep += std::abs(a[i] - b[i]);
  lockstep /= static_cast<double>(a.size());
  EXPECT_LT(r.distance, lockstep * 0.2);
}

TEST(Dtw, EmptySeriesReportsMaxDistance) {
  const std::vector<double> a{1, 2};
  const DtwResult r = dtw_distance(a, {});
  EXPECT_EQ(r.path_length, 0u);
  EXPECT_GT(r.distance, 1e100);
  EXPECT_EQ(series_similarity(a, {}), 0.0);
}

TEST(Dtw, BandConstraintRaisesOrKeepsDistance) {
  Rng rng(6);
  std::vector<double> a(80), b(80);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(static_cast<double>(i) / 5.0) * 10.0;
    b[i] = std::sin((static_cast<double>(i) - 8.0) / 5.0) * 10.0;  // shifted
  }
  DtwOptions unconstrained;
  DtwOptions narrow;
  narrow.band = 2;
  const double d_free = dtw_distance(a, b, unconstrained).distance;
  const double d_band = dtw_distance(a, b, narrow).distance;
  EXPECT_GE(d_band, d_free);
}

TEST(Dtw, BandWidensToFitLengthDifference) {
  // |n - m| > band would make the end cell unreachable; the implementation
  // must widen the band instead of returning infinity.
  const std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> b{1, 8};
  DtwOptions options;
  options.band = 0;
  const DtwResult r = dtw_distance(a, b, options);
  EXPECT_LT(r.distance, 1e100);
  EXPECT_GT(r.path_length, 0u);
}

TEST(Dtw, PathNormalisationDividesByLength) {
  const std::vector<double> a{0, 10, 0, 10};
  const std::vector<double> b{10, 0, 10, 0};
  DtwOptions raw;
  raw.normalize_by_path = false;
  DtwOptions norm;
  norm.normalize_by_path = true;
  const DtwResult r_raw = dtw_distance(a, b, raw);
  const DtwResult r_norm = dtw_distance(a, b, norm);
  ASSERT_GT(r_norm.path_length, 0u);
  EXPECT_NEAR(r_norm.distance,
              r_raw.distance / static_cast<double>(r_norm.path_length), 1e-12);
}

TEST(Similarity, MonotoneInDistance) {
  EXPECT_GT(similarity_from_distance(1.0, 5.0), similarity_from_distance(2.0, 5.0));
  EXPECT_DOUBLE_EQ(similarity_from_distance(0.0, 5.0), 1.0);
  EXPECT_EQ(similarity_from_distance(1.0, 0.0), 0.0);
}

TEST(Similarity, DegradesWithNoise) {
  Rng rng(8);
  std::vector<double> base(120);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = 10.0 + 8.0 * std::sin(static_cast<double>(i) / 7.0);
  }
  double prev = 1.1;
  for (const double noise : {0.0, 2.0, 6.0, 15.0}) {
    auto noisy = base;
    for (auto& v : noisy) v += rng.normal(0.0, noise);
    const double sim = series_similarity(base, noisy);
    EXPECT_LT(sim, prev) << "noise=" << noise;
    prev = sim;
  }
}

// Property sweep over lengths: similarity in [0,1], self-similarity 1.
class DtwLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DtwLengthSweep, SimilarityBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> a(static_cast<std::size_t>(GetParam()));
  std::vector<double> b(static_cast<std::size_t>(GetParam()));
  for (auto& v : a) v = rng.uniform(0, 30);
  for (auto& v : b) v = rng.uniform(0, 30);
  const double sim = series_similarity(a, b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  EXPECT_DOUBLE_EQ(series_similarity(a, a), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Lengths, DtwLengthSweep, ::testing::Values(1, 3, 10, 60, 300));

}  // namespace
}  // namespace ltefp::dtw
