#include "lte/dci.hpp"

#include <gtest/gtest.h>

#include "lte/crc.hpp"
#include "lte/tbs.hpp"

namespace ltefp::lte {
namespace {

struct DciCase {
  Direction direction;
  Rnti rnti;
  std::uint8_t mcs;
  std::uint8_t nprb;
  std::uint8_t harq;
  bool ndi;
};

class DciRoundTrip : public ::testing::TestWithParam<DciCase> {};

TEST_P(DciRoundTrip, EncodeDecodeRecovers) {
  const DciCase& c = GetParam();
  Dci dci;
  dci.direction = c.direction;
  dci.rnti = c.rnti;
  dci.mcs = c.mcs;
  dci.nprb = c.nprb;
  dci.harq_id = c.harq;
  dci.ndi = c.ndi;

  const EncodedDci enc = encode_dci(dci);
  const auto decoded = decode_dci_fields(enc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->direction, c.direction);
  EXPECT_EQ(decoded->mcs, c.mcs);
  EXPECT_EQ(decoded->nprb, c.nprb);
  EXPECT_EQ(decoded->harq_id, c.harq);
  EXPECT_EQ(decoded->ndi, c.ndi);
  // RNTI comes back through CRC unmasking, as on a real PDCCH.
  EXPECT_EQ(recover_rnti(enc.payload, enc.masked_crc), c.rnti);
  // TBS derives from (mcs, nprb).
  EXPECT_EQ(decoded->tb_bytes(), max_tb_bytes(c.mcs, c.nprb));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DciRoundTrip,
    ::testing::Values(DciCase{Direction::kDownlink, 0x003D, 0, 1, 0, false},
                      DciCase{Direction::kUplink, 0x1234, 15, 25, 3, true},
                      DciCase{Direction::kDownlink, 0xFFF3, 28, 110, 7, true},
                      DciCase{Direction::kUplink, 0x8001, 9, 50, 5, false},
                      DciCase{Direction::kDownlink, kPagingRnti, 2, 2, 0, false}));

TEST(Dci, MalformedPayloadRejected) {
  EncodedDci enc;
  enc.payload = {0x00, 0x00};  // wrong length
  EXPECT_FALSE(decode_dci_fields(enc).has_value());

  Dci dci;
  dci.mcs = 4;
  dci.nprb = 10;
  enc = encode_dci(dci);
  enc.payload[1] = 29;  // invalid MCS
  EXPECT_FALSE(decode_dci_fields(enc).has_value());
  enc.payload[1] = 4;
  enc.payload[2] = 0;  // invalid PRB count
  EXPECT_FALSE(decode_dci_fields(enc).has_value());
  enc.payload[2] = 111;
  EXPECT_FALSE(decode_dci_fields(enc).has_value());
}

TEST(Dci, CorruptedPayloadChangesRecoveredRnti) {
  Dci dci;
  dci.rnti = 0x4321;
  dci.mcs = 10;
  dci.nprb = 6;
  EncodedDci enc = encode_dci(dci);
  enc.payload[2] ^= 0x01;
  EXPECT_NE(recover_rnti(enc.payload, enc.masked_crc), 0x4321);
}

}  // namespace
}  // namespace ltefp::lte
