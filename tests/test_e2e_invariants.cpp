// Cross-stack invariants: properties that must hold end-to-end, from app
// packet generation through scheduling, PDCCH emission, and passive
// capture. These pin down the physical consistency of the whole substrate
// rather than any single module.
#include <gtest/gtest.h>

#include <memory>

#include "apps/factory.hpp"
#include "lte/network.hpp"
#include "lte/operator_profile.hpp"
#include "sniffer/sniffer.hpp"

namespace ltefp {
namespace {

/// Counts every byte an app hands to the radio stack.
class CountingSource final : public lte::TrafficSource {
 public:
  CountingSource(std::unique_ptr<lte::TrafficSource> inner) : inner_(std::move(inner)) {}
  void step(TimeMs now, std::vector<lte::AppPacket>& out) override {
    const std::size_t before = out.size();
    inner_->step(now, out);
    for (std::size_t i = before; i < out.size(); ++i) {
      (out[i].direction == lte::Direction::kUplink ? ul_bytes_ : dl_bytes_) += out[i].bytes;
    }
  }
  const char* name() const override { return inner_->name(); }
  long long ul_bytes() const { return ul_bytes_; }
  long long dl_bytes() const { return dl_bytes_; }

 private:
  std::unique_ptr<lte::TrafficSource> inner_;
  long long ul_bytes_ = 0;
  long long dl_bytes_ = 0;
};

class EndToEnd : public ::testing::TestWithParam<apps::AppId> {};

TEST_P(EndToEnd, ObservedTbsCoversGeneratedBytesWithBoundedPadding) {
  // In a clean lab cell with a loss-free sniffer, the TBS total captured
  // for the victim must cover every byte the app generated (transport
  // blocks pad up, never truncate), and the padding overhead must stay
  // within the TBS quantisation bound.
  lte::Simulation sim(321);
  const lte::CellId cell = sim.add_cell(lte::operator_profile(lte::Operator::kLab));
  const lte::UeId ue = sim.add_ue(4711);
  sim.camp(ue, cell);

  sniffer::Sniffer sniffer(sniffer::SnifferConfig{}, Rng(3));
  sim.add_observer(cell, sniffer);

  const TimeMs duration = seconds(30);
  auto counting = std::make_unique<CountingSource>(
      apps::make_app_source(GetParam(), duration, Rng(11)));
  CountingSource* counter = counting.get();
  sim.set_traffic_source(ue, std::move(counting));
  sim.run_for(duration);
  // Snapshot before the source is replaced (and destroyed).
  const long long app_ul = counter->ul_bytes();
  const long long app_dl = counter->dl_bytes();
  sim.set_traffic_source(ue, nullptr);
  sim.run_for(1000);  // drain buffers

  const sniffer::Trace trace = sniffer.trace_of_tmsi(sim.tmsi_of(ue));
  long long ul_tbs = 0, dl_tbs = 0;
  for (const auto& r : trace) {
    ASSERT_GT(r.tb_bytes, 0);
    (r.direction == lte::Direction::kUplink ? ul_tbs : dl_tbs) += r.tb_bytes;
  }

  EXPECT_GE(ul_tbs, app_ul) << apps::to_string(GetParam());
  EXPECT_GE(dl_tbs, app_dl) << apps::to_string(GetParam());
  // Padding bound: each grant pads less than one full TBS step; with the
  // Msg4 and per-grant overhead this stays well under 2x for real apps.
  EXPECT_LT(ul_tbs + dl_tbs, 2 * (app_ul + app_dl) + 50'000)
      << apps::to_string(GetParam());
}

TEST_P(EndToEnd, CaptureIsTimeOrderedAndWithinSimulatedTime) {
  lte::Simulation sim(99);
  const lte::CellId cell = sim.add_cell(lte::operator_profile(lte::Operator::kTmobile));
  const lte::UeId ue = sim.add_ue(4712);
  sim.camp(ue, cell);
  sniffer::Sniffer sniffer(sniffer::SnifferConfig{}, Rng(4));
  sniffer.restrict_to_tmsi(sim.tmsi_of(ue));
  sim.add_observer(cell, sniffer);
  sim.set_traffic_source(ue, apps::make_app_source(GetParam(), seconds(15), Rng(5)));
  sim.run_for(seconds(15));

  const auto& records = sniffer.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    ASSERT_GE(records[i].time, 0);
    ASSERT_LT(records[i].time, sim.now());
    if (i > 0) {
      ASSERT_GE(records[i].time, records[i - 1].time);
    }
    ASSERT_EQ(records[i].cell, cell);
    ASSERT_GE(records[i].rnti, lte::kMinCRnti);
    ASSERT_LE(records[i].rnti, lte::kMaxCRnti);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, EndToEnd,
                         ::testing::Values(apps::AppId::kNetflix, apps::AppId::kTelegram,
                                           apps::AppId::kSkype),
                         [](const ::testing::TestParamInfo<apps::AppId>& info) {
                           std::string name = apps::to_string(info.param);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(EndToEnd, SnifferNeverSeesMoreThanTheAirCarries) {
  // A lossless sniffer's record count equals the victim-addressed DCI
  // count; with 30% miss it captures strictly less.
  lte::Simulation sim(7);
  const lte::CellId cell = sim.add_cell(lte::operator_profile(lte::Operator::kLab));
  const lte::UeId ue = sim.add_ue(4713);
  sim.camp(ue, cell);

  sniffer::Sniffer lossless(sniffer::SnifferConfig{}, Rng(1));
  sniffer::SnifferConfig lossy_config;
  lossy_config.miss_rate = 0.3;
  sniffer::Sniffer lossy(lossy_config, Rng(2));
  sim.add_observer(cell, lossless);
  sim.add_observer(cell, lossy);

  sim.set_traffic_source(ue, apps::make_app_source(apps::AppId::kSkype, seconds(15), Rng(6)));
  sim.run_for(seconds(15));

  EXPECT_GT(lossless.decoded_count(), 0u);
  EXPECT_LT(lossy.decoded_count(), lossless.decoded_count());
  EXPECT_GT(lossy.missed_count(), 0u);
}

}  // namespace
}  // namespace ltefp
