#include "features/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ltefp::features {
namespace {

Dataset blob_dataset(std::size_t per_class, int classes, Rng& rng) {
  Dataset data;
  data.feature_names = {"x", "y"};
  data.label_names.resize(static_cast<std::size_t>(classes));
  for (int c = 0; c < classes; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data.add({rng.normal(c * 10.0, 1.0), rng.normal(-c * 5.0, 1.0)}, c);
    }
  }
  return data;
}

TEST(Dataset, ClassHistogram) {
  Rng rng(1);
  const Dataset data = blob_dataset(20, 3, rng);
  const auto hist = data.class_histogram();
  ASSERT_EQ(hist.size(), 3u);
  for (const auto count : hist) EXPECT_EQ(count, 20u);
}

TEST(TrainTestSplit, StratifiedCounts) {
  Rng rng(2);
  const Dataset data = blob_dataset(50, 4, rng);
  auto [train, test] = train_test_split(data, 0.8, rng);
  EXPECT_EQ(train.size() + test.size(), data.size());
  const auto train_hist = train.class_histogram();
  const auto test_hist = test.class_histogram();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(train_hist[static_cast<std::size_t>(c)], 40u);
    EXPECT_EQ(test_hist[static_cast<std::size_t>(c)], 10u);
  }
}

TEST(TrainTestSplit, ExtremeFractions) {
  Rng rng(3);
  const Dataset data = blob_dataset(10, 2, rng);
  auto [all_train, no_test] = train_test_split(data, 1.0, rng);
  EXPECT_EQ(all_train.size(), data.size());
  EXPECT_TRUE(no_test.empty());
  auto [no_train, all_test] = train_test_split(data, 0.0, rng);
  EXPECT_TRUE(no_train.empty());
  EXPECT_EQ(all_test.size(), data.size());
}

TEST(TrainTestSplit, InvalidFractionThrows) {
  Rng rng(4);
  const Dataset data = blob_dataset(5, 2, rng);
  EXPECT_THROW(train_test_split(data, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(data, 1.5, rng), std::invalid_argument);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Rng rng(5);
  Dataset data = blob_dataset(1000, 1, rng);
  Standardizer st;
  st.fit(data);
  st.transform_in_place(data);
  double mean0 = 0.0, var0 = 0.0;
  for (const auto& s : data.samples) mean0 += s.features[0];
  mean0 /= static_cast<double>(data.size());
  for (const auto& s : data.samples) var0 += (s.features[0] - mean0) * (s.features[0] - mean0);
  var0 /= static_cast<double>(data.size());
  EXPECT_NEAR(mean0, 0.0, 1e-9);
  EXPECT_NEAR(var0, 1.0, 1e-9);
}

TEST(Standardizer, ConstantFeatureSafe) {
  Dataset data;
  data.label_names = {"a"};
  for (int i = 0; i < 10; ++i) data.add({7.0, static_cast<double>(i)}, 0);
  Standardizer st;
  st.fit(data);
  const auto out = st.transform({7.0, 4.5});
  EXPECT_EQ(out[0], 0.0);  // (7-7)/1
  EXPECT_TRUE(std::isfinite(out[1]));
}

TEST(Standardizer, DimMismatchThrows) {
  Dataset data;
  data.label_names = {"a"};
  data.add({1.0, 2.0}, 0);
  Standardizer st;
  st.fit(data);
  EXPECT_THROW(st.transform({1.0}), std::invalid_argument);
}

TEST(Standardizer, FitEmptyThrows) {
  Standardizer st;
  EXPECT_THROW(st.fit(Dataset{}), std::invalid_argument);
  EXPECT_FALSE(st.fitted());
}

}  // namespace
}  // namespace ltefp::features
